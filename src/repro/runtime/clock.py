"""Time as a dependency: clocks and the deadline loop.

The serving layer's latency story ("flush this batch no later than
``max_latency_ms`` after its first request") needs a notion of *now*
that tests and simulators can control.  A :class:`Clock` is just
``now() -> float`` seconds: :class:`SystemClock` reads the monotonic
wall clock for production use, :class:`ManualClock` is advanced
explicitly — the simulator steps it by the inter-arrival gap, so a
whole simulated day of deadline-driven flushing runs in microseconds
and asserts exact waiting-time bounds.

:class:`DeadlineLoop` is the scheduling primitive on top: keyed
callbacks with absolute deadlines, fired in deadline order whenever
``poll()`` observes that the clock has passed them.  It is
deliberately *pull*-based — no background timer thread — so behaviour
is deterministic under a :class:`ManualClock` and adds zero overhead
when nothing is scheduled.
"""

from __future__ import annotations

import time
from typing import Callable, Protocol, runtime_checkable

__all__ = ["Clock", "DeadlineLoop", "ManualClock", "SystemClock"]


@runtime_checkable
class Clock(Protocol):
    """Anything with ``now() -> float`` (seconds, any fixed origin)."""

    def now(self) -> float: ...


class SystemClock:
    """The monotonic wall clock (production default)."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock:
    """A clock that only moves when told to — the simulator's time source."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (never backward); returns now."""
        if seconds < 0:
            raise ValueError(f"cannot advance by a negative duration, got {seconds}")
        self._now += float(seconds)
        return self._now

    def __repr__(self) -> str:
        return f"ManualClock(t={self._now:.6f})"


class DeadlineLoop:
    """Keyed deadlines against a :class:`Clock`, fired on ``poll()``.

    ``schedule`` registers (or replaces) a callback under a key with an
    absolute deadline; ``poll`` fires every callback whose deadline has
    passed, in deadline order, and returns how many fired.  Callbacks
    may re-schedule themselves.  No threads, no signals: the owner
    decides when to look at the clock, which is what makes the loop
    exact under simulated time.

    ``epsilon`` (default one nanosecond) widens the firing comparison
    to ``at <= now + epsilon``: a :class:`ManualClock` advanced in
    repeated float increments accumulates ~1e-15 of drift, which would
    otherwise push a poll landing exactly on the deadline to the
    *next* poll.  One nanosecond is far below any meaningful latency
    bound and far above any double-precision drift.
    """

    def __init__(self, clock: Clock, epsilon: float = 1e-9) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.clock = clock
        self.epsilon = float(epsilon)
        self._deadlines: dict[object, tuple[float, Callable[[], None]]] = {}

    def __len__(self) -> int:
        return len(self._deadlines)

    def schedule(self, key: object, at: float, callback: Callable[[], None]) -> None:
        """Register ``callback`` to fire once ``clock.now() >= at``.

        A second ``schedule`` under the same key replaces the first —
        the scoring engine re-arms its single ``"flush"`` deadline this
        way.
        """
        self._deadlines[key] = (float(at), callback)

    def schedule_in(self, key: object, delay: float, callback: Callable[[], None]) -> None:
        """Relative-time convenience: fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule(key, self.clock.now() + float(delay), callback)

    def cancel(self, key: object) -> bool:
        """Drop a scheduled deadline; True when one existed."""
        return self._deadlines.pop(key, None) is not None

    def next_deadline(self) -> float | None:
        """The earliest scheduled time, or None when nothing is pending."""
        if not self._deadlines:
            return None
        return min(at for at, _cb in self._deadlines.values())

    def poll(self) -> int:
        """Fire every overdue callback (deadline order); return the count."""
        fired = 0
        while self._deadlines:
            now = self.clock.now() + self.epsilon
            due = [(at, key) for key, (at, _cb) in self._deadlines.items() if at <= now]
            if not due:
                break
            # keys are arbitrary objects (possibly non-comparable): order
            # by deadline only, ties in insertion order
            due.sort(key=lambda pair: pair[0])
            for _at, key in due:
                entry = self._deadlines.pop(key, None)
                if entry is None:  # an earlier callback cancelled it
                    continue
                entry[1]()
                fired += 1
        return fired

"""Execution backends: one pool abstraction for every fan-out in the library.

Before this layer existed, each subsystem owned a private execution
mechanism — chunked cohort generation spun up a fresh
``ProcessPoolExecutor`` per :meth:`Platform.daily_cohort` call, the
scoring engine only ever ran synchronously in-process, and nothing
could share workers across a multi-day run.  An
:class:`ExecutionBackend` is the common currency instead: a lazily
started, reusable, context-managed pool with the two operations the
library actually needs (``submit`` a callable, ``shutdown`` the
workers), implemented three ways:

* :class:`SerialBackend` — runs everything inline and returns
  already-resolved futures.  Zero concurrency, zero overhead, and
  bit-identical to the historical single-process behaviour; the
  default everywhere.
* :class:`ThreadBackend` — a shared ``ThreadPoolExecutor``.  Dodges
  pickling entirely (useful for chunk generation of non-picklable
  consumers and for truly asynchronous scoring-engine flushes, where
  the GIL is released inside the vectorised numpy calls).
* :class:`ProcessBackend` — a shared ``ProcessPoolExecutor`` for
  CPU-bound fan-out (cohort generation).  Submitted callables must be
  module-level picklables, as usual.

Pools start on the first ``submit`` (constructing a backend costs
nothing), survive across calls — *one* pool serves all days of an
:class:`~repro.ab.experiment.ABTest` run — and count their startups in
``start_count`` so tests can pin the no-churn guarantee.

Every backend optionally takes a :class:`~repro.obs.MetricsRegistry`
and counts ``backend.tasks_submitted`` / ``backend.tasks_completed`` /
``backend.pool_starts`` into it.  With the default ``None`` the
counters are the shared no-op singletons and pool futures get no
done-callbacks attached, so un-instrumented execution is byte-for-byte
the historical path.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Protocol, runtime_checkable

from repro.obs import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "resolve_n_workers",
]


def resolve_n_workers(n_workers: int | None) -> int:
    """Normalise an ``n_workers`` argument (``None`` → all visible CPUs)."""
    if n_workers is None:
        return os.cpu_count() or 1
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return int(n_workers)


@runtime_checkable
class ExecutionBackend(Protocol):
    """The execution contract shared by serving, data, and A/B layers.

    Implementations promise: ``submit`` returns a
    :class:`concurrent.futures.Future`; ``n_workers`` reports the
    fan-out width (``1`` means "don't bother fanning out");
    ``start_count`` counts how many times a worker pool was actually
    created (the pool-churn metric); ``shutdown`` releases workers and
    is idempotent; the backend is reusable after ``shutdown`` (a new
    pool starts on the next ``submit``) and usable as a context
    manager.
    """

    start_count: int

    @property
    def n_workers(self) -> int: ...

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future: ...

    def shutdown(self, wait: bool = True) -> None: ...


class SerialBackend:
    """Inline execution behind the backend interface.

    ``submit`` runs the callable immediately on the calling thread and
    returns a future that is already resolved (result or exception).
    Code written against the backend interface therefore keeps exactly
    the synchronous semantics — same call order, same exception
    propagation points — it had before the runtime layer existed.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.start_count = 0  # no pool ever starts
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_submitted = self.metrics.counter("backend.tasks_submitted")
        self._c_completed = self.metrics.counter("backend.tasks_completed")

    @property
    def n_workers(self) -> int:
        return 1

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        self._c_submitted.inc()
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # the future carries it, as a pool's would
            future.set_exception(exc)
        self._c_completed.inc()  # inline execution: done by the time we return
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Nothing to release; kept for interface symmetry."""

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _PoolBackend:
    """Shared machinery of the thread/process backends: a lazily
    created, reusable ``concurrent.futures`` pool."""

    def __init__(self, n_workers: int | None = None, metrics: MetricsRegistry | None = None) -> None:
        self._n_workers = resolve_n_workers(n_workers)
        self._pool: Executor | None = None
        self.start_count = 0
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._instrumented = metrics is not None
        self._c_submitted = self.metrics.counter("backend.tasks_submitted")
        self._c_completed = self.metrics.counter("backend.tasks_completed")
        self._c_pool_starts = self.metrics.counter("backend.pool_starts")

    def _make_pool(self) -> Executor:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def running(self) -> bool:
        """True while a worker pool is alive."""
        return self._pool is not None

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        if self._pool is None:
            self._pool = self._make_pool()
            self.start_count += 1
            self._c_pool_starts.inc()
        self._c_submitted.inc()
        future = self._pool.submit(fn, *args, **kwargs)
        if self._instrumented:  # no callback churn on the un-instrumented path
            future.add_done_callback(lambda _f: self._c_completed.inc())
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Release the workers; the next ``submit`` starts a fresh pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "_PoolBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "running" if self.running else "idle"
        return f"{type(self).__name__}(n_workers={self._n_workers}, {state})"


class ThreadBackend(_PoolBackend):
    """A reusable ``ThreadPoolExecutor`` behind the backend interface.

    Threads share the interpreter: submitted callables need no
    pickling, and numpy releases the GIL inside its vectorised kernels,
    so scoring-engine flushes genuinely overlap with the caller.
    """

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self._n_workers)


class ProcessBackend(_PoolBackend):
    """A reusable ``ProcessPoolExecutor`` behind the backend interface.

    The CPU-bound fan-out workhorse (chunked cohort generation).
    Submitted callables and their arguments must be picklable
    module-level objects.  Starting worker processes is the expensive
    part — which is exactly why the pool is created once and reused
    across every day of a run instead of per call.
    """

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self._n_workers)

"""Execution backends: one pool abstraction for every fan-out in the library.

Before this layer existed, each subsystem owned a private execution
mechanism — chunked cohort generation spun up a fresh
``ProcessPoolExecutor`` per :meth:`Platform.daily_cohort` call, the
scoring engine only ever ran synchronously in-process, and nothing
could share workers across a multi-day run.  An
:class:`ExecutionBackend` is the common currency instead: a lazily
started, reusable, context-managed pool with the two operations the
library actually needs (``submit`` a callable, ``shutdown`` the
workers), implemented three ways:

* :class:`SerialBackend` — runs everything inline and returns
  already-resolved futures.  Zero concurrency, zero overhead, and
  bit-identical to the historical single-process behaviour; the
  default everywhere.
* :class:`ThreadBackend` — a shared ``ThreadPoolExecutor``.  Dodges
  pickling entirely (useful for chunk generation of non-picklable
  consumers and for truly asynchronous scoring-engine flushes, where
  the GIL is released inside the vectorised numpy calls).
* :class:`ProcessBackend` — a shared ``ProcessPoolExecutor`` for
  CPU-bound fan-out (cohort generation).  Submitted callables must be
  module-level picklables, as usual.

Pools start on the first ``submit`` (constructing a backend costs
nothing), survive across calls — *one* pool serves all days of an
:class:`~repro.ab.experiment.ABTest` run — and count their startups in
``start_count`` so tests can pin the no-churn guarantee.

Every backend optionally takes a :class:`~repro.obs.MetricsRegistry`
and counts ``backend.tasks_submitted`` / ``backend.tasks_completed`` /
``backend.pool_starts`` into it.  With the default ``None`` the
counters are the shared no-op singletons and pool futures get no
done-callbacks attached, so un-instrumented execution is byte-for-byte
the historical path.

Worker affinity (``submit_to``)
-------------------------------
Plain ``submit`` hands work to *any* idle worker, which is right for
stateless fan-out but useless for a sharded serving fleet where shard
``i``'s cache, pacer slice, and model registry must live in one
long-lived process.  ``submit_to(lane, fn, *args)`` pins work to a
numbered **lane**: a lazily created single-worker executor that
processes its tasks FIFO, so state a task installs in its process (or
thread) is still there for every later task on the same lane.  Lanes
accept an optional ``initializer(lane_index, *initargs)`` run once per
lane start — the hook a sharded engine uses to build its per-process
shard before the first request lands.  ``submit`` and ``submit_to``
coexist on one backend: the shared pool and the lanes are separate
executors, and ``shutdown`` releases both.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Protocol, runtime_checkable

from repro.obs import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "resolve_n_workers",
]


def resolve_n_workers(n_workers: int | None) -> int:
    """Normalise an ``n_workers`` argument (``None`` → all visible CPUs)."""
    if n_workers is None:
        return os.cpu_count() or 1
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return int(n_workers)


@runtime_checkable
class ExecutionBackend(Protocol):
    """The execution contract shared by serving, data, and A/B layers.

    Implementations promise: ``submit`` returns a
    :class:`concurrent.futures.Future`; ``n_workers`` reports the
    fan-out width (``1`` means "don't bother fanning out");
    ``start_count`` counts how many times a worker pool was actually
    created (the pool-churn metric); ``shutdown`` releases workers and
    is idempotent; the backend is reusable after ``shutdown`` (a new
    pool starts on the next ``submit``) and usable as a context
    manager.
    """

    start_count: int

    @property
    def n_workers(self) -> int: ...

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future: ...

    def shutdown(self, wait: bool = True) -> None: ...


class SerialBackend:
    """Inline execution behind the backend interface.

    ``submit`` runs the callable immediately on the calling thread and
    returns a future that is already resolved (result or exception).
    Code written against the backend interface therefore keeps exactly
    the synchronous semantics — same call order, same exception
    propagation points — it had before the runtime layer existed.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        self.start_count = 0  # no pool ever starts
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._initialized_lanes: set[int] = set()
        self._c_submitted = self.metrics.counter("backend.tasks_submitted")
        self._c_completed = self.metrics.counter("backend.tasks_completed")

    @property
    def n_workers(self) -> int:
        return 1

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        self._c_submitted.inc()
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # the future carries it, as a pool's would
            future.set_exception(exc)
        self._c_completed.inc()  # inline execution: done by the time we return
        return future

    def submit_to(
        self, lane: int, fn: Callable[..., Any], /, *args: Any, **kwargs: Any
    ) -> Future:
        """Lane-pinned submit; inline, every lane is this thread.

        Lanes are purely logical here (any non-negative index), but the
        per-lane initializer contract still holds: ``initializer(lane,
        *initargs)`` runs once before the lane's first task, so code
        written against lane affinity behaves identically on the serial
        backend — same process, same FIFO order, same init hook.
        """
        if lane < 0:
            raise ValueError(f"lane must be >= 0, got {lane}")
        if self._initializer is not None and lane not in self._initialized_lanes:
            self._initialized_lanes.add(lane)
            self._initializer(lane, *self._initargs)
        return self.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True) -> None:
        """Nothing to release; lanes re-initialize on next use."""
        self._initialized_lanes.clear()

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _PoolBackend:
    """Shared machinery of the thread/process backends: a lazily
    created, reusable ``concurrent.futures`` pool."""

    def __init__(
        self,
        n_workers: int | None = None,
        metrics: MetricsRegistry | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        self._n_workers = resolve_n_workers(n_workers)
        self._pool: Executor | None = None
        self._lanes: dict[int, Executor] = {}
        self.start_count = 0
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._instrumented = metrics is not None
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._c_submitted = self.metrics.counter("backend.tasks_submitted")
        self._c_completed = self.metrics.counter("backend.tasks_completed")
        self._c_pool_starts = self.metrics.counter("backend.pool_starts")

    def _make_pool(self) -> Executor:  # pragma: no cover - overridden
        raise NotImplementedError

    def _make_lane(self, lane: int) -> Executor:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def running(self) -> bool:
        """True while a worker pool (shared or lane) is alive."""
        return self._pool is not None or bool(self._lanes)

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        if self._pool is None:
            self._pool = self._make_pool()
            self.start_count += 1
            self._c_pool_starts.inc()
        self._c_submitted.inc()
        future = self._pool.submit(fn, *args, **kwargs)
        if self._instrumented:  # no callback churn on the un-instrumented path
            future.add_done_callback(lambda _f: self._c_completed.inc())
        return future

    def submit_to(
        self, lane: int, fn: Callable[..., Any], /, *args: Any, **kwargs: Any
    ) -> Future:
        """Pin work to lane ``lane``: one long-lived single worker.

        The lane executor starts lazily on its first task (counted in
        ``start_count`` / ``backend.pool_starts`` like any pool start)
        and runs ``initializer(lane, *initargs)`` in its worker first,
        so per-lane state — a scoring shard, a warmed cache — exists
        before the task does.  Tasks on one lane execute FIFO; distinct
        lanes run concurrently.
        """
        if not 0 <= lane < self._n_workers:
            raise ValueError(
                f"lane must be in [0, {self._n_workers}), got {lane}"
            )
        pool = self._lanes.get(lane)
        if pool is None:
            pool = self._lanes[lane] = self._make_lane(lane)
            self.start_count += 1
            self._c_pool_starts.inc()
        self._c_submitted.inc()
        future = pool.submit(fn, *args, **kwargs)
        if self._instrumented:
            future.add_done_callback(lambda _f: self._c_completed.inc())
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Release the workers; the next ``submit`` starts a fresh pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None
        for pool in self._lanes.values():
            pool.shutdown(wait=wait, cancel_futures=True)
        self._lanes.clear()

    def __enter__(self) -> "_PoolBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "running" if self.running else "idle"
        return f"{type(self).__name__}(n_workers={self._n_workers}, {state})"


class ThreadBackend(_PoolBackend):
    """A reusable ``ThreadPoolExecutor`` behind the backend interface.

    Threads share the interpreter: submitted callables need no
    pickling, and numpy releases the GIL inside its vectorised kernels,
    so scoring-engine flushes genuinely overlap with the caller.
    """

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self._n_workers)

    def _make_lane(self, lane: int) -> Executor:
        return ThreadPoolExecutor(
            max_workers=1,
            initializer=self._initializer,
            initargs=(lane, *self._initargs) if self._initializer else (),
        )


class ProcessBackend(_PoolBackend):
    """A reusable ``ProcessPoolExecutor`` behind the backend interface.

    The CPU-bound fan-out workhorse (chunked cohort generation).
    Submitted callables and their arguments must be picklable
    module-level objects.  Starting worker processes is the expensive
    part — which is exactly why the pool is created once and reused
    across every day of a run instead of per call.
    """

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self._n_workers)

    def _make_lane(self, lane: int) -> Executor:
        return ProcessPoolExecutor(
            max_workers=1,
            initializer=self._initializer,
            initargs=(lane, *self._initargs) if self._initializer else (),
        )

"""Shared-memory tensors: the zero-copy transport under the serving fleet.

A :class:`~repro.serving.sharding.ShardedScoringEngine` on a
:class:`~repro.runtime.ProcessBackend` used to pickle every feature
block onto its shard's lane and pickle every score list back — at
production batch sizes the fleet's wall clock was serialization, not
model math.  This module is the transport that removes it:

* :class:`SharedTensorPool` — named, ref-counted numpy segments over
  :mod:`multiprocessing.shared_memory` with an explicit lifecycle:
  ``create`` (owner side), ``attach`` (any process that knows the
  name), ``release`` (close; the *creator's* final release unlinks).
  The lifecycle rule mirrors the backend rule the runtime layer
  already enforces: **whoever creates a segment releases it** —
  attachers only ever close their own mapping.  ``shutdown()`` (and a
  registered ``atexit`` hook, counting into ``shm.segments_leaked``)
  sweep anything still open, so a crashed fleet cannot strand kernel
  objects in ``/dev/shm``.
* :class:`SharedTensor` — one segment viewed as a numpy array.  The
  array *is* the segment: a parent writing rows into it and a worker
  reading them shares physical pages, no copies in between.
* :class:`SharedScoreCache` — a fixed-capacity open-addressing score
  table in one segment, keyed by a 64-bit ``blake2b`` tag of
  ``(version, row bytes)``.  Every shard of a process fleet attaches
  the same table, so a score cached by any shard is a hit on all of
  them without a byte of pickling.  Writes are torn-write safe
  (tag is cleared before the score is written and re-checked after
  reading); eviction is probe-window replacement, not strict LRU —
  the cache is a performance object, never a correctness one, because
  a scored ``(version, row)`` pair always maps to the same float.

Observability: every pool owns real counters/gauges (``shm.*``) and a
:class:`~repro.obs.MetricsRegistry` passed in only *collects* them —
the same adopt-don't-create contract the rest of the stack uses.
Tests pin the hygiene half: after a fleet shuts down (cleanly, after a
mid-flight exception, or with a dead worker) ``live_segment_count()``
is 0 and the leak counter never moved.
"""

from __future__ import annotations

import atexit
import os
import secrets
import sys
import threading
from hashlib import blake2b
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.obs import NULL_REGISTRY, Counter, Gauge, MetricsRegistry

__all__ = [
    "SharedScoreCache",
    "SharedTensor",
    "SharedTensorPool",
    "live_segment_count",
]

# every live pool in this process, for the atexit sweep and the
# process-wide live_segment_count() the hygiene tests read
_LIVE_POOLS: "set[SharedTensorPool]" = set()
_LIVE_POOLS_LOCK = threading.Lock()

_TRACK_KWARG = sys.version_info >= (3, 13)
_ATTACH_LOCK = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without adopting ownership of it.

    Python's ``resource_tracker`` assumes whoever opens a segment owns
    it and unlinks anything still registered when the process exits —
    which would let a short-lived worker destroy the parent's live
    transport.  Attachers must therefore opt out of tracking: 3.13+
    has ``track=False``.  Earlier interpreters need a subtler idiom
    than the well-known attach-then-``unregister``: forked workers
    share the *parent's* tracker process, so a worker's unregister
    would delete the registration the creating parent depends on for
    crash cleanup.  Instead, suppress the registration itself for the
    duration of the attach (guarded by a lock — the patch is
    process-global state).
    """
    if _TRACK_KWARG:
        return shared_memory.SharedMemory(name=name, track=False)
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def live_segment_count() -> int:
    """Open segments across every pool in this process (the leak probe)."""
    with _LIVE_POOLS_LOCK:
        return sum(pool.live_segments for pool in _LIVE_POOLS)


@atexit.register
def _sweep_at_exit() -> None:
    """Last-resort cleanup: release whatever explicit shutdown missed."""
    with _LIVE_POOLS_LOCK:
        pools = list(_LIVE_POOLS)
    for pool in pools:
        pool._sweep_leaked()


class SharedTensor:
    """One shared-memory segment viewed as a numpy array.

    Handles are pool-issued (:meth:`SharedTensorPool.create` /
    :meth:`~SharedTensorPool.attach`) and released through the pool;
    the object itself is a name + a typed view, cheap to hold.  The
    buffer outlives nothing: touching :attr:`array` after the segment
    was released is a use-after-free, exactly like any mmap.
    """

    __slots__ = ("name", "shape", "dtype", "owner", "_segment", "_array")

    def __init__(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype,
        segment: shared_memory.SharedMemory,
        owner: bool,
    ) -> None:
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.owner = owner
        self._segment = segment
        self._array = np.ndarray(self.shape, dtype=self.dtype, buffer=segment.buf)

    @property
    def array(self) -> np.ndarray:
        """The live numpy view over the segment's pages."""
        return self._array

    @property
    def nbytes(self) -> int:
        return int(self._array.nbytes)

    def descriptor(self) -> tuple[str, tuple[int, ...], str]:
        """``(name, shape, dtype_str)`` — everything an attacher needs."""
        return (self.name, self.shape, self.dtype.str)

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        return f"SharedTensor({self.name!r}, shape={self.shape}, {role})"


class SharedTensorPool:
    """Create, attach, and release named shared-memory numpy segments.

    Parameters
    ----------
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to export the pool's
        ``shm.*`` metrics into (``None`` keeps them pool-local, the
        usual no-op-registry contract).
    prefix:
        Segment-name prefix; names are ``<prefix>-<pid>-<nonce>`` so
        concurrent pools (and test re-runs) never collide.

    Lifecycle
    ---------
    ``create`` allocates and owns; ``attach`` opens by name and only
    ever closes its own mapping; ``release`` drops one reference and,
    on the owner's final release, unlinks the kernel object.
    ``shutdown()`` releases everything still open (idempotent, also
    the context-manager exit), and an ``atexit`` sweep catches pools
    that never got one — counting each swept segment into
    ``shm.segments_leaked`` so hygiene regressions are visible, not
    silent.
    """

    def __init__(self, metrics: MetricsRegistry | None = None, prefix: str = "repro") -> None:
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._prefix = prefix
        # name -> [SharedTensor, refcount]
        self._segments: dict[str, list] = {}
        self._lock = threading.Lock()
        self._c_created = self.metrics.adopt(Counter("shm.segments_created"))
        self._c_attached = self.metrics.adopt(Counter("shm.segments_attached"))
        self._c_released = self.metrics.adopt(Counter("shm.segments_released"))
        self._c_leaked = self.metrics.adopt(Counter("shm.segments_leaked"))
        self._g_live = self.metrics.adopt(Gauge("shm.live_segments"))
        self._g_bytes = self.metrics.adopt(Gauge("shm.live_bytes"))
        with _LIVE_POOLS_LOCK:
            _LIVE_POOLS.add(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def create(self, shape: tuple[int, ...], dtype=np.float64) -> SharedTensor:
        """Allocate a fresh zero-filled segment this pool owns."""
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        name = f"{self._prefix}-{os.getpid()}-{secrets.token_hex(4)}"
        segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        tensor = SharedTensor(segment.name, tuple(shape), dtype, segment, owner=True)
        with self._lock:
            self._segments[tensor.name] = [tensor, 1]
        self._c_created.inc()
        self._update_gauges()
        return tensor

    def attach(self, name: str, shape: tuple[int, ...], dtype=np.float64) -> SharedTensor:
        """Open an existing segment by descriptor (ref-counted per name)."""
        with self._lock:
            entry = self._segments.get(name)
            if entry is not None:
                entry[1] += 1
                self._c_attached.inc()
                return entry[0]
        segment = _attach_segment(name)
        tensor = SharedTensor(name, tuple(shape), np.dtype(dtype), segment, owner=False)
        with self._lock:
            self._segments[name] = [tensor, 1]
        self._c_attached.inc()
        self._update_gauges()
        return tensor

    def release(self, name: str) -> bool:
        """Drop one reference; the last reference closes (and, for the
        owner, unlinks) the segment.  Unknown names are a no-op —
        release is idempotent so error paths can sweep freely."""
        with self._lock:
            entry = self._segments.get(name)
            if entry is None:
                return False
            entry[1] -= 1
            if entry[1] > 0:
                return True
            del self._segments[name]
        self._close_tensor(entry[0])
        self._c_released.inc()
        self._update_gauges()
        return True

    def shutdown(self) -> int:
        """Release every segment still open; returns how many were."""
        with self._lock:
            entries = list(self._segments.values())
            self._segments.clear()
        for tensor, _refs in entries:
            self._close_tensor(tensor)
            self._c_released.inc()
        self._update_gauges()
        return len(entries)

    def close(self) -> None:
        """Alias for :meth:`shutdown` + deregistration from the atexit sweep."""
        self.shutdown()
        with _LIVE_POOLS_LOCK:
            _LIVE_POOLS.discard(self)

    def _sweep_leaked(self) -> None:
        """atexit path: anything still open here was leaked by its owner."""
        with self._lock:
            entries = list(self._segments.values())
            self._segments.clear()
        for tensor, _refs in entries:
            self._close_tensor(tensor)
            self._c_released.inc()
            self._c_leaked.inc()
        self._update_gauges()

    @staticmethod
    def _close_tensor(tensor: SharedTensor) -> None:
        # drop the numpy view first: SharedMemory.close() refuses while
        # exported buffers are alive
        tensor._array = None
        try:
            tensor._segment.close()
        except BufferError:  # pragma: no cover - view still referenced elsewhere
            return
        if tensor.owner:
            try:
                tensor._segment.unlink()
            # idempotent teardown: a racing owner may have unlinked first;
            # the segment is gone either way, which is the goal state
            except FileNotFoundError:  # pragma: no cover - already unlinked  # repro: allow[RPR007]
                pass

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def live_segments(self) -> int:
        """Segments this pool currently holds open (the leak counter's
        complement: a clean shutdown drives this to 0)."""
        with self._lock:
            return len(self._segments)

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return sum(entry[0].nbytes for entry in self._segments.values())

    @property
    def leaked_segments(self) -> int:
        """Segments the atexit sweep had to clean up (0 in healthy runs)."""
        return int(self._c_leaked.value)

    def _update_gauges(self) -> None:
        self._g_live.set(self.live_segments)
        self._g_bytes.set(self.live_bytes)

    def __enter__(self) -> "SharedTensorPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SharedTensorPool(live={self.live_segments}, prefix={self._prefix!r})"


# ---------------------------------------------------------------------------
# the fleet-wide score cache
# ---------------------------------------------------------------------------
_EMPTY_TAG = np.uint64(0)
_PROBE_WINDOW = 8


class SharedScoreCache:
    """A fixed-capacity score table every shard of a fleet shares.

    One segment of ``(slots, 2)`` float64: column 0 reinterpreted as a
    ``uint64`` tag (``blake2b(version || row bytes)``, never 0 — 0
    means *empty*), column 1 the cached score.  ``get``/``put`` probe a
    short linear window from ``tag % slots``:

    * lock-free reads: a reader accepts a score only when the tag read
      *before* and *after* the score load agree — a torn concurrent
      overwrite is detected and treated as a miss;
    * writes clear the tag first, store the score, then publish the
      tag, so no reader can pair a new tag with an old score;
    * a full probe window evicts a tag-derived slot (probe-window
      replacement).  Not strict LRU — but a cache entry here is a pure
      function of its key, so replacement policy affects hit rate
      only, never results.

    Use :meth:`create` on the fleet parent and :meth:`attach` (with the
    parent's descriptor) inside each shard process; both sides go
    through a :class:`SharedTensorPool`, so hygiene accounting covers
    the cache like any other segment.
    """

    def __init__(self, tensor: SharedTensor, slots: int) -> None:
        if slots < _PROBE_WINDOW:
            raise ValueError(f"slots must be >= {_PROBE_WINDOW}, got {slots}")
        self.tensor = tensor
        self.slots = int(slots)
        table = tensor.array
        self._tags = table[:, 0].view(np.uint64)
        self._scores = table[:, 1]

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, pool: SharedTensorPool, slots: int) -> "SharedScoreCache":
        tensor = pool.create((int(slots), 2), dtype=np.float64)
        return cls(tensor, slots)  # freshly created segments are zeroed

    @classmethod
    def attach(cls, pool: SharedTensorPool, name: str, slots: int) -> "SharedScoreCache":
        return cls(pool.attach(name, (int(slots), 2), dtype=np.float64), slots)

    def descriptor(self) -> tuple[str, int]:
        return (self.tensor.name, self.slots)

    # -- the table ------------------------------------------------------
    @staticmethod
    def tag_of(version: int, row_bytes: bytes) -> int:
        digest = blake2b(row_bytes, digest_size=8, salt=version.to_bytes(8, "little"))
        tag = int.from_bytes(digest.digest(), "little")
        return tag or 1  # 0 is the empty marker

    def get(self, version: int, row_bytes: bytes) -> float | None:
        tag = np.uint64(self.tag_of(version, row_bytes))
        tags, scores = self._tags, self._scores
        base = int(tag) % self.slots
        for probe in range(_PROBE_WINDOW):
            i = (base + probe) % self.slots
            seen = tags[i]
            if seen == _EMPTY_TAG:
                return None  # slots fill front-to-back; an empty slot ends the chain
            if seen == tag:
                score = float(scores[i])
                if tags[i] == tag:  # no concurrent overwrite mid-read
                    return score
                return None
        return None

    def put(self, version: int, row_bytes: bytes, score: float) -> None:
        tag = np.uint64(self.tag_of(version, row_bytes))
        tags, scores = self._tags, self._scores
        base = int(tag) % self.slots
        victim = None
        for probe in range(_PROBE_WINDOW):
            i = (base + probe) % self.slots
            seen = tags[i]
            if seen == tag:
                return  # same key ⇒ same score; nothing to update
            if seen == _EMPTY_TAG:
                victim = i
                break
        if victim is None:
            # window full: evict a tag-derived slot (deterministic, spread)
            victim = (base + (int(tag) >> 56) % _PROBE_WINDOW) % self.slots
        tags[victim] = _EMPTY_TAG  # unpublish before the score store
        scores[victim] = score
        tags[victim] = tag

    def __repr__(self) -> str:
        return f"SharedScoreCache(slots={self.slots}, segment={self.tensor.name!r})"

"""One execution layer for scoring, generation, and pacing.

``repro.runtime`` owns the two cross-cutting concerns that every
scaling feature kept reinventing privately:

* **Where work runs** — :class:`ExecutionBackend` and its three
  implementations (:class:`SerialBackend`, :class:`ThreadBackend`,
  :class:`ProcessBackend`): lazily started, reusable, context-managed
  pools.  Chunked cohort generation, multi-day A/B runs, and the
  scoring engine's flushes all submit to the same abstraction, so one
  process pool serves a whole experiment instead of being rebuilt per
  day.
* **When work runs** — :class:`Clock` (:class:`SystemClock` /
  :class:`ManualClock`) and :class:`DeadlineLoop`: pull-based keyed
  deadlines that make latency guarantees (flush at ``max_latency_ms``)
  testable under simulated time.

A third concern joined in the zero-copy pass: **how bytes move** —
:class:`SharedTensorPool` / :class:`SharedTensor` /
:class:`SharedScoreCache` (``repro.runtime.shm``), named ref-counted
shared-memory numpy segments with an explicit create/attach/release
lifecycle, the transport under the process-backed serving fleet.

Everything here depends only on ``repro.obs`` (itself stdlib-only),
so any layer may build on it.
"""

from repro.runtime.backend import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_n_workers,
)
from repro.runtime.clock import Clock, DeadlineLoop, ManualClock, SystemClock
from repro.runtime.shm import SharedScoreCache, SharedTensor, SharedTensorPool, live_segment_count

__all__ = [
    "Clock",
    "DeadlineLoop",
    "ExecutionBackend",
    "ManualClock",
    "ProcessBackend",
    "SerialBackend",
    "SharedScoreCache",
    "SharedTensor",
    "SharedTensorPool",
    "SystemClock",
    "ThreadBackend",
    "live_segment_count",
    "resolve_n_workers",
]

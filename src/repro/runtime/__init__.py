"""One execution layer for scoring, generation, and pacing.

``repro.runtime`` owns the two cross-cutting concerns that every
scaling feature kept reinventing privately:

* **Where work runs** — :class:`ExecutionBackend` and its three
  implementations (:class:`SerialBackend`, :class:`ThreadBackend`,
  :class:`ProcessBackend`): lazily started, reusable, context-managed
  pools.  Chunked cohort generation, multi-day A/B runs, and the
  scoring engine's flushes all submit to the same abstraction, so one
  process pool serves a whole experiment instead of being rebuilt per
  day.
* **When work runs** — :class:`Clock` (:class:`SystemClock` /
  :class:`ManualClock`) and :class:`DeadlineLoop`: pull-based keyed
  deadlines that make latency guarantees (flush at ``max_latency_ms``)
  testable under simulated time.

Everything here is dependency-free within the library (it imports
nothing from other ``repro`` subpackages) so any layer may build on it.
"""

from repro.runtime.backend import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_n_workers,
)
from repro.runtime.clock import Clock, DeadlineLoop, ManualClock, SystemClock

__all__ = [
    "Clock",
    "DeadlineLoop",
    "ExecutionBackend",
    "ManualClock",
    "ProcessBackend",
    "SerialBackend",
    "SystemClock",
    "ThreadBackend",
    "resolve_n_workers",
]

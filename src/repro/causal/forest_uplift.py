"""Causal-forest uplift model (the paper's TPM-CF phase-1 estimator)."""

from __future__ import annotations

import numpy as np

from repro.causal.base import UpliftModel, validate_uplift_inputs
from repro.trees.causal_forest import CausalForest

__all__ = ["CausalForestUplift"]


class CausalForestUplift(UpliftModel):
    """Thin :class:`UpliftModel` adapter around :class:`CausalForest`.

    Parameters mirror :class:`~repro.trees.causal_forest.CausalForest`.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        subsample: float = 0.7,
        max_depth: int | None = 5,
        min_treated_leaf: int = 10,
        min_control_leaf: int = 10,
        max_features: int | str | None = "sqrt",
        honest: bool = True,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.forest = CausalForest(
            n_estimators=n_estimators,
            subsample=subsample,
            max_depth=max_depth,
            min_treated_leaf=min_treated_leaf,
            min_control_leaf=min_control_leaf,
            max_features=max_features,
            honest=honest,
            random_state=random_state,
        )

    def _init_params(self) -> dict:
        # constructor parameters live on the wrapped forest (same names)
        return self.forest._init_params()

    def fit(self, x, y, t) -> "CausalForestUplift":
        x, y, t = validate_uplift_inputs(x, y, t)
        self.forest.fit(x, y, t)
        return self

    def predict_uplift(self, x) -> np.ndarray:
        return self.forest.predict(x)

    def predict_uplift_var(self, x) -> np.ndarray:
        """Across-tree CATE variance (the forest's UQ signal, §II-B)."""
        return self.forest.predict_var(x)

"""Two-Phase Method (TPM): ROI = revenue uplift / cost uplift.

Phase 1 fits two independent uplift models — one for the revenue
outcome, one for the cost outcome.  Phase 2 divides the predictions.
This is the classical C-BTAP pipeline the paper benchmarks against; the
division is exactly where its error amplification comes from (§I), and
why the paper's direct methods exist.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.causal.base import TrainableModel, UpliftModel
from repro.causal.forest_uplift import CausalForestUplift
from repro.causal.meta.s_learner import SLearner
from repro.causal.meta.x_learner import XLearner
from repro.causal.neural.dragonnet import DragonNet
from repro.causal.neural.offsetnet import OffsetNet
from repro.causal.neural.snet import SNet
from repro.causal.neural.tarnet import TARNet
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_binary,
    check_consistent_length,
)

__all__ = ["TwoPhaseMethod", "make_tpm", "TPM_VARIANTS"]


class TwoPhaseMethod(TrainableModel):
    """Compose a revenue uplift model and a cost uplift model into ROI.

    Parameters
    ----------
    revenue_model, cost_model:
        Unfitted :class:`~repro.causal.base.UpliftModel` instances.
    cost_floor:
        Denominator floor: predicted cost uplifts below this value are
        clipped before the division.  Assumption 4 of the paper says
        the *true* ``τ_c`` is positive, but phase-1 estimates need not
        be — this floor is the practical guard every production TPM
        carries (and one source of its error amplification).
    """

    def __init__(
        self,
        revenue_model: UpliftModel,
        cost_model: UpliftModel,
        cost_floor: float = 1e-4,
    ) -> None:
        if cost_floor <= 0:
            raise ValueError(f"cost_floor must be > 0, got {cost_floor}")
        self.revenue_model = revenue_model
        self.cost_model = cost_model
        self.cost_floor = float(cost_floor)
        self._fitted = False

    def _init_params(self) -> dict:
        # both phase-1 models are themselves cloned unfitted, so a
        # TPM clone learns only from the data it is refit on
        return {
            "revenue_model": self.revenue_model.clone_unfit(),
            "cost_model": self.cost_model.clone_unfit(),
            "cost_floor": self.cost_floor,
        }

    def fit(self, x, y_revenue, y_cost, t) -> "TwoPhaseMethod":
        """Fit both phase-1 models on the same RCT sample."""
        x = check_2d(x)
        y_revenue = check_1d(y_revenue, "y_revenue")
        y_cost = check_1d(y_cost, "y_cost")
        t = check_binary(t)
        check_consistent_length(
            x, y_revenue, y_cost, t, names=("X", "y_revenue", "y_cost", "treatment")
        )
        self.revenue_model.fit(x, y_revenue, t)
        self.cost_model.fit(x, y_cost, t)
        self._fitted = True
        return self

    def predict_uplifts(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Phase-1 predictions ``(τ̂_r(x), τ̂_c(x))``."""
        if not self._fitted:
            raise RuntimeError("TwoPhaseMethod is not fitted; call fit() first")
        return self.revenue_model.predict_uplift(x), self.cost_model.predict_uplift(x)

    def predict_roi(self, x) -> np.ndarray:
        """Phase-2 division: ``τ̂_r / max(τ̂_c, cost_floor)``."""
        tau_r, tau_c = self.predict_uplifts(x)
        return tau_r / np.maximum(tau_c, self.cost_floor)


def _variant_factories(
    random_state: int | np.random.Generator | None,
    fast: bool,
) -> dict[str, Callable[[np.random.Generator], UpliftModel]]:
    """Per-variant factories; ``fast=True`` shrinks capacity for benches."""
    forest_trees = 20 if fast else 50
    nn_epochs = 30 if fast else 60
    return {
        "SL": lambda rng: SLearner(random_state=rng),
        "XL": lambda rng: XLearner(random_state=rng),
        "CF": lambda rng: CausalForestUplift(
            n_estimators=forest_trees, random_state=rng
        ),
        "DragonNet": lambda rng: DragonNet(epochs=nn_epochs, random_state=rng),
        "TARNet": lambda rng: TARNet(epochs=nn_epochs, random_state=rng),
        "OffsetNet": lambda rng: OffsetNet(epochs=nn_epochs, random_state=rng),
        "SNet": lambda rng: SNet(epochs=nn_epochs, random_state=rng),
    }


TPM_VARIANTS = ("SL", "XL", "CF", "DragonNet", "TARNet", "OffsetNet", "SNet")


def make_tpm(
    variant: str,
    random_state: int | np.random.Generator | None = None,
    fast: bool = False,
) -> TwoPhaseMethod:
    """Build the paper's ``TPM-<variant>`` baseline by name.

    Parameters
    ----------
    variant:
        One of :data:`TPM_VARIANTS` (``"SL"``, ``"XL"``, ``"CF"``,
        ``"DragonNet"``, ``"TARNet"``, ``"OffsetNet"``, ``"SNet"``).
    random_state:
        Seed/generator; the revenue and cost sub-models get independent
        child streams.
    fast:
        Reduced-capacity configuration for benchmarks and tests.
    """
    factories = _variant_factories(random_state, fast)
    if variant not in factories:
        raise ValueError(f"Unknown TPM variant {variant!r}; choose from {TPM_VARIANTS}")
    parent = as_generator(random_state)
    rng_revenue, rng_cost = spawn_generators(parent, 2)
    factory = factories[variant]
    return TwoPhaseMethod(factory(rng_revenue), factory(rng_cost))

"""Shared machinery for neural uplift models.

TARNet, DragonNet, OffsetNet and SNet are all "representation +
heads" architectures.  They differ in how the heads are wired, but
share the same training skeleton: shuffled mini-batches, a joint Adam
step over every sub-network's parameters, and masked per-arm losses
(each sample only supervises the head of the arm it was actually
assigned — the factual outcome).
"""

from __future__ import annotations

import numpy as np

from repro.causal.base import UpliftModel, validate_uplift_inputs
from repro.nn.layers import Activation, Dense, Dropout
from repro.nn.network import Network
from repro.nn.optimizers import Adam
from repro.utils.rng import as_generator
from repro.utils.validation import check_2d

__all__ = ["NeuralUpliftBase", "representation_block", "head_block"]


def representation_block(
    input_dim: int,
    hidden: int,
    depth: int = 1,
    dropout: float = 0.1,
    rng: int | np.random.Generator | None = None,
) -> Network:
    """Build a shared representation ``φ(x)``: stacked Dense+ELU+Dropout."""
    gen = as_generator(rng)
    net = Network()
    prev = input_dim
    for _ in range(max(1, depth)):
        net.add(Dense(prev, hidden, init="he", rng=gen))
        net.add(Activation("elu"))
        if dropout > 0:
            net.add(Dropout(dropout, rng=gen))
        prev = hidden
    return net


def head_block(
    input_dim: int,
    hidden: int,
    rng: int | np.random.Generator | None = None,
    output_dim: int = 1,
) -> Network:
    """Build an outcome head: Dense+ELU -> Dense(linear)."""
    gen = as_generator(rng)
    net = Network()
    net.add(Dense(input_dim, hidden, init="he", rng=gen))
    net.add(Activation("elu"))
    net.add(Dense(hidden, output_dim, init="glorot", rng=gen))
    return net


class NeuralUpliftBase(UpliftModel):
    """Training skeleton shared by the neural uplift models.

    Sub-classes implement

    * ``_build(input_dim)`` — create sub-networks and register them in
      ``self._networks``;
    * ``_train_batch(xb, yb, tb)`` — one forward/backward pass,
      returning the batch loss (gradients left in the layers);
    * ``predict_outcomes(x)`` — per-arm predictions.

    Parameters
    ----------
    hidden:
        Width of the representation and head layers.
    epochs, batch_size, learning_rate, weight_decay:
        Optimisation controls (shared Adam across all sub-networks).
    dropout:
        Dropout rate inside the representation block.
    random_state:
        Seed/generator for weights, dropout and batch shuffling.
    """

    def __init__(
        self,
        hidden: int = 32,
        epochs: int = 60,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
        dropout: float = 0.1,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.hidden = int(hidden)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.dropout = float(dropout)
        self.random_state = random_state
        self._networks: list[Network] = []
        self._n_features: int | None = None
        self.loss_history_: list[float] = []

    # -- sub-class hooks -------------------------------------------------
    def _build(self, input_dim: int, rng: np.random.Generator) -> None:
        raise NotImplementedError

    def _train_batch(self, xb: np.ndarray, yb: np.ndarray, tb: np.ndarray) -> float:
        raise NotImplementedError

    # -- shared plumbing ---------------------------------------------------
    def _all_parameters(self) -> list[np.ndarray]:
        return [p for net in self._networks for p in net.parameters()]

    def _all_gradients(self) -> list[np.ndarray]:
        return [g for net in self._networks for g in net.gradients()]

    def _zero_grads(self) -> None:
        for net in self._networks:
            net.zero_grad()

    def _check_fitted_input(self, x) -> np.ndarray:
        if self._n_features is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit() first")
        x = check_2d(x)
        if x.shape[1] != self._n_features:
            raise ValueError(
                f"X has {x.shape[1]} features but the model was fitted with {self._n_features}"
            )
        return x

    def fit(self, x, y, t) -> "NeuralUpliftBase":
        x, y, t = validate_uplift_inputs(x, y, t)
        self._n_features = x.shape[1]
        rng = as_generator(self.random_state)
        self._build(x.shape[1], rng)
        optimizer = Adam(self.learning_rate, weight_decay=self.weight_decay)
        n = x.shape[0]
        self.loss_history_ = []
        for _ in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                self._zero_grads()
                loss = self._train_batch(x[idx], y[idx], t[idx])
                optimizer.step(self._all_parameters(), self._all_gradients())
                epoch_loss += loss
                n_batches += 1
            self.loss_history_.append(epoch_loss / max(n_batches, 1))
        return self

    def predict_uplift(self, x) -> np.ndarray:
        mu0, mu1 = self.predict_outcomes(x)
        return mu1 - mu0

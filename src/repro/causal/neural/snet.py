"""SNet (Curth & van der Schaar, AISTATS 2021), three-factor variant.

The full SNet factors the input into five representations; this variant
keeps the three that matter for binary-treatment CATE under RCT data:

* ``φ_s(x)`` — shared information used by both outcome heads,
* ``φ_0(x)`` — control-specific information,
* ``φ_1(x)`` — treated-specific information,

with heads ``μ₀ = h₀([φ_s, φ_0])``, ``μ₁ = h₁([φ_s, φ_1])`` and a
propensity logit on ``φ_s`` (under RCT it converges to the constant
treated fraction and acts as a representation regulariser).
"""

from __future__ import annotations

import numpy as np

from repro.causal.neural.base import NeuralUpliftBase, head_block, representation_block
from repro.nn.activations import sigmoid
from repro.nn.layers import Dense
from repro.nn.network import Network

__all__ = ["SNet"]


class SNet(NeuralUpliftBase):
    """Factored-representation uplift network.

    Parameters
    ----------
    propensity_weight:
        Weight on the propensity cross-entropy regulariser.
    Remaining parameters as in :class:`NeuralUpliftBase`; ``hidden``
    sets the width of each of the three representation blocks.
    """

    def __init__(
        self,
        hidden: int = 24,
        epochs: int = 60,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
        dropout: float = 0.1,
        propensity_weight: float = 0.5,
        random_state=None,
    ) -> None:
        super().__init__(
            hidden=hidden,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            weight_decay=weight_decay,
            dropout=dropout,
            random_state=random_state,
        )
        if propensity_weight < 0:
            raise ValueError(f"propensity_weight must be >= 0, got {propensity_weight}")
        self.propensity_weight = float(propensity_weight)

    def _build(self, input_dim: int, rng: np.random.Generator) -> None:
        h = self.hidden
        self.repr_shared_ = representation_block(input_dim, h, dropout=self.dropout, rng=rng)
        self.repr0_ = representation_block(input_dim, h, dropout=self.dropout, rng=rng)
        self.repr1_ = representation_block(input_dim, h, dropout=self.dropout, rng=rng)
        self.head0_ = head_block(2 * h, h, rng=rng)
        self.head1_ = head_block(2 * h, h, rng=rng)
        self.prop_head_ = Network([Dense(h, 1, init="glorot", rng=rng)])
        self._networks = [
            self.repr_shared_,
            self.repr0_,
            self.repr1_,
            self.head0_,
            self.head1_,
            self.prop_head_,
        ]

    def _train_batch(self, xb: np.ndarray, yb: np.ndarray, tb: np.ndarray) -> float:
        h = self.hidden
        n = xb.shape[0]
        phi_s = self.repr_shared_.forward(xb, training=True)
        phi_0 = self.repr0_.forward(xb, training=True)
        phi_1 = self.repr1_.forward(xb, training=True)
        in0 = np.hstack([phi_s, phi_0])
        in1 = np.hstack([phi_s, phi_1])
        pred0 = self.head0_.forward(in0, training=True)[:, 0]
        pred1 = self.head1_.forward(in1, training=True)[:, 0]
        logit_g = self.prop_head_.forward(phi_s, training=True)[:, 0]

        treated = tb == 1
        n1 = max(int(treated.sum()), 1)
        n0 = max(int((~treated).sum()), 1)
        err0 = np.where(~treated, pred0 - yb, 0.0)
        err1 = np.where(treated, pred1 - yb, 0.0)
        outcome_loss = float(np.sum(err0**2) / n0 + np.sum(err1**2) / n1)

        tb_f = tb.astype(float)
        prop_loss = float(
            np.mean(np.maximum(logit_g, 0) - logit_g * tb_f + np.log1p(np.exp(-np.abs(logit_g))))
        )

        grad_in0 = self.head0_.backward((2.0 * err0 / n0).reshape(-1, 1))
        grad_in1 = self.head1_.backward((2.0 * err1 / n1).reshape(-1, 1))
        grad_logit = ((sigmoid(logit_g) - tb_f) / n * self.propensity_weight).reshape(-1, 1)
        grad_phi_s = grad_in0[:, :h] + grad_in1[:, :h] + self.prop_head_.backward(grad_logit)
        self.repr_shared_.backward(grad_phi_s)
        self.repr0_.backward(grad_in0[:, h:])
        self.repr1_.backward(grad_in1[:, h:])
        return outcome_loss + self.propensity_weight * prop_loss

    def predict_outcomes(self, x) -> tuple[np.ndarray, np.ndarray]:
        x = self._check_fitted_input(x)
        phi_s = self.repr_shared_.forward(x, training=False)
        phi_0 = self.repr0_.forward(x, training=False)
        phi_1 = self.repr1_.forward(x, training=False)
        mu0 = self.head0_.forward(np.hstack([phi_s, phi_0]), training=False)[:, 0]
        mu1 = self.head1_.forward(np.hstack([phi_s, phi_1]), training=False)[:, 0]
        return mu0, mu1

"""TARNet (Shalit, Johansson & Sontag, 2017).

Shared representation ``φ(x)`` feeding two outcome heads ``h₀(φ)`` and
``h₁(φ)``.  Each sample supervises only its factual head, with per-arm
normalisation so a 50/50 RCT trains both heads at the same rate.
"""

from __future__ import annotations

import numpy as np

from repro.causal.neural.base import NeuralUpliftBase, head_block, representation_block
from repro.nn.network import Network

__all__ = ["TARNet"]


class TARNet(NeuralUpliftBase):
    """Treatment-Agnostic Representation Network."""

    def _build(self, input_dim: int, rng: np.random.Generator) -> None:
        self.repr_: Network = representation_block(
            input_dim, self.hidden, depth=1, dropout=self.dropout, rng=rng
        )
        self.head0_: Network = head_block(self.hidden, self.hidden, rng=rng)
        self.head1_: Network = head_block(self.hidden, self.hidden, rng=rng)
        self._networks = [self.repr_, self.head0_, self.head1_]

    def _train_batch(self, xb: np.ndarray, yb: np.ndarray, tb: np.ndarray) -> float:
        phi = self.repr_.forward(xb, training=True)
        pred0 = self.head0_.forward(phi, training=True)[:, 0]
        pred1 = self.head1_.forward(phi, training=True)[:, 0]

        treated = tb == 1
        n1 = max(int(treated.sum()), 1)
        n0 = max(int((~treated).sum()), 1)
        err0 = np.where(~treated, pred0 - yb, 0.0)
        err1 = np.where(treated, pred1 - yb, 0.0)
        loss = float(np.sum(err0**2) / n0 + np.sum(err1**2) / n1)

        grad0 = (2.0 * err0 / n0).reshape(-1, 1)
        grad1 = (2.0 * err1 / n1).reshape(-1, 1)
        grad_phi = self.head0_.backward(grad0) + self.head1_.backward(grad1)
        self.repr_.backward(grad_phi)
        return loss

    def predict_outcomes(self, x) -> tuple[np.ndarray, np.ndarray]:
        x = self._check_fitted_input(x)
        phi = self.repr_.forward(x, training=False)
        mu0 = self.head0_.forward(phi, training=False)[:, 0]
        mu1 = self.head1_.forward(phi, training=False)[:, 0]
        return mu0, mu1

"""Representation-learning uplift models built on :mod:`repro.nn`."""

from repro.causal.neural.dragonnet import DragonNet
from repro.causal.neural.offsetnet import OffsetNet
from repro.causal.neural.snet import SNet
from repro.causal.neural.tarnet import TARNet

__all__ = ["DragonNet", "OffsetNet", "SNet", "TARNet"]

"""OffsetNet (Curth & van der Schaar, 2021 — "offset" inductive bias).

A base network predicts the control outcome ``μ₀(x)``; a second network
predicts the *offset* ``δ(x)`` so that ``μ₁(x) = μ₀(x) + δ(x)``.  The
offset parameterisation regularises the effect directly — small
networks bias δ toward smooth, small effects, which is the right
inductive bias when effects are weak relative to outcome variance.
"""

from __future__ import annotations

import numpy as np

from repro.causal.neural.base import NeuralUpliftBase, head_block, representation_block
from repro.nn.network import Network

__all__ = ["OffsetNet"]


class OffsetNet(NeuralUpliftBase):
    """Base + offset uplift network: ``μ₁ = μ₀ + δ``."""

    def _build(self, input_dim: int, rng: np.random.Generator) -> None:
        self.repr_ = representation_block(
            input_dim, self.hidden, depth=1, dropout=self.dropout, rng=rng
        )
        self.base_head_: Network = head_block(self.hidden, self.hidden, rng=rng)
        self.offset_head_: Network = head_block(self.hidden, max(4, self.hidden // 2), rng=rng)
        self._networks = [self.repr_, self.base_head_, self.offset_head_]

    def _train_batch(self, xb: np.ndarray, yb: np.ndarray, tb: np.ndarray) -> float:
        phi = self.repr_.forward(xb, training=True)
        mu0 = self.base_head_.forward(phi, training=True)[:, 0]
        delta = self.offset_head_.forward(phi, training=True)[:, 0]

        tb_f = tb.astype(float)
        pred = mu0 + tb_f * delta  # factual prediction for each sample
        err = pred - yb
        n = xb.shape[0]
        loss = float(np.mean(err**2))

        grad_pred = 2.0 * err / n
        grad_mu0 = grad_pred  # d pred / d mu0 = 1 for every sample
        grad_delta = grad_pred * tb_f  # offset only active on treated
        grad_phi = self.base_head_.backward(grad_mu0.reshape(-1, 1)) + self.offset_head_.backward(
            grad_delta.reshape(-1, 1)
        )
        self.repr_.backward(grad_phi)
        return loss

    def predict_outcomes(self, x) -> tuple[np.ndarray, np.ndarray]:
        x = self._check_fitted_input(x)
        phi = self.repr_.forward(x, training=False)
        mu0 = self.base_head_.forward(phi, training=False)[:, 0]
        delta = self.offset_head_.forward(phi, training=False)[:, 0]
        return mu0, mu0 + delta

    def predict_uplift(self, x) -> np.ndarray:
        """The offset head *is* the effect estimate: ``τ̂(x) = δ(x)``."""
        x = self._check_fitted_input(x)
        phi = self.repr_.forward(x, training=False)
        return self.offset_head_.forward(phi, training=False)[:, 0]

"""DragonNet (Shi, Blei & Veitch, 2019).

TARNet plus a propensity head ``g(φ)`` trained with cross-entropy, and
an optional *targeted regularisation* term with a trainable scalar
perturbation ``ε``:

    ỹ = ŷ_t + ε · (t/g − (1−t)/(1−g)),   L += β · mean((y − ỹ)²)

Under RCT data the propensity head converges to the treated fraction;
its gradient pressure on ``φ`` acts as a regulariser that preserves
treatment-relevant information in the representation.
"""

from __future__ import annotations

import numpy as np

from repro.causal.neural.base import NeuralUpliftBase, head_block, representation_block
from repro.nn.activations import sigmoid
from repro.nn.layers import Dense
from repro.nn.network import Network

__all__ = ["DragonNet"]


class DragonNet(NeuralUpliftBase):
    """DragonNet with propensity head and targeted regularisation.

    Parameters
    ----------
    propensity_weight:
        Weight ``α`` on the propensity cross-entropy term.
    targeted_weight:
        Weight ``β`` on the targeted-regularisation term; 0 disables
        it (and freezes ``ε`` at 0).
    Remaining parameters as in :class:`NeuralUpliftBase`.
    """

    def __init__(
        self,
        hidden: int = 32,
        epochs: int = 60,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
        dropout: float = 0.1,
        propensity_weight: float = 1.0,
        targeted_weight: float = 0.1,
        random_state=None,
    ) -> None:
        super().__init__(
            hidden=hidden,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            weight_decay=weight_decay,
            dropout=dropout,
            random_state=random_state,
        )
        if propensity_weight < 0 or targeted_weight < 0:
            raise ValueError("propensity_weight and targeted_weight must be >= 0")
        self.propensity_weight = float(propensity_weight)
        self.targeted_weight = float(targeted_weight)

    def _build(self, input_dim: int, rng: np.random.Generator) -> None:
        self.repr_ = representation_block(
            input_dim, self.hidden, depth=1, dropout=self.dropout, rng=rng
        )
        self.head0_ = head_block(self.hidden, self.hidden, rng=rng)
        self.head1_ = head_block(self.hidden, self.hidden, rng=rng)
        # propensity head: single linear logit on top of φ
        self.prop_head_ = Network([Dense(self.hidden, 1, init="glorot", rng=rng)])
        self._epsilon = np.zeros(1)
        self._epsilon_grad = np.zeros(1)
        self._networks = [self.repr_, self.head0_, self.head1_, self.prop_head_]

    def _all_parameters(self) -> list[np.ndarray]:
        params = super()._all_parameters()
        if self.targeted_weight > 0:
            params.append(self._epsilon)
        return params

    def _all_gradients(self) -> list[np.ndarray]:
        grads = super()._all_gradients()
        if self.targeted_weight > 0:
            grads.append(self._epsilon_grad)
        return grads

    def _zero_grads(self) -> None:
        super()._zero_grads()
        self._epsilon_grad[...] = 0.0

    def _train_batch(self, xb: np.ndarray, yb: np.ndarray, tb: np.ndarray) -> float:
        n = xb.shape[0]
        phi = self.repr_.forward(xb, training=True)
        pred0 = self.head0_.forward(phi, training=True)[:, 0]
        pred1 = self.head1_.forward(phi, training=True)[:, 0]
        logit_g = self.prop_head_.forward(phi, training=True)[:, 0]
        g = np.clip(sigmoid(logit_g), 0.01, 0.99)

        treated = tb == 1
        n1 = max(int(treated.sum()), 1)
        n0 = max(int((~treated).sum()), 1)
        err0 = np.where(~treated, pred0 - yb, 0.0)
        err1 = np.where(treated, pred1 - yb, 0.0)
        outcome_loss = float(np.sum(err0**2) / n0 + np.sum(err1**2) / n1)

        # propensity cross-entropy on the logits
        tb_f = tb.astype(float)
        prop_loss = float(
            np.mean(np.maximum(logit_g, 0) - logit_g * tb_f + np.log1p(np.exp(-np.abs(logit_g))))
        )
        grad_logit = (sigmoid(logit_g) - tb_f) / n * self.propensity_weight

        grad0 = 2.0 * err0 / n0
        grad1 = 2.0 * err1 / n1

        targeted_loss = 0.0
        if self.targeted_weight > 0:
            eps = float(self._epsilon[0])
            pred_factual = np.where(treated, pred1, pred0)
            h = tb_f / g - (1.0 - tb_f) / (1.0 - g)
            resid = yb - (pred_factual + eps * h)
            targeted_loss = float(np.mean(resid**2)) * self.targeted_weight
            common = -2.0 * self.targeted_weight * resid / n
            # d/d eps
            self._epsilon_grad[0] += float(np.sum(common * h))
            # d/d pred_factual routes to the factual head only
            grad1 = grad1 + np.where(treated, common, 0.0)
            grad0 = grad0 + np.where(~treated, common, 0.0)
            # d/d g: h depends on g; treated: dh/dg = -t/g^2 ; control: +(1-t)/(1-g)^2
            dh_dg = np.where(treated, -1.0 / g**2, 1.0 / (1.0 - g) ** 2)
            dg_dlogit = g * (1.0 - g)
            grad_logit = grad_logit + common * eps * dh_dg * dg_dlogit

        grad_phi = (
            self.head0_.backward(grad0.reshape(-1, 1))
            + self.head1_.backward(grad1.reshape(-1, 1))
            + self.prop_head_.backward(grad_logit.reshape(-1, 1))
        )
        self.repr_.backward(grad_phi)
        return outcome_loss + self.propensity_weight * prop_loss + targeted_loss

    def predict_outcomes(self, x) -> tuple[np.ndarray, np.ndarray]:
        x = self._check_fitted_input(x)
        phi = self.repr_.forward(x, training=False)
        mu0 = self.head0_.forward(phi, training=False)[:, 0]
        mu1 = self.head1_.forward(phi, training=False)[:, 0]
        return mu0, mu1

    def predict_propensity(self, x) -> np.ndarray:
        """Estimated treatment probability ``ĝ(x)``."""
        x = self._check_fitted_input(x)
        phi = self.repr_.forward(x, training=False)
        return sigmoid(self.prop_head_.forward(phi, training=False)[:, 0])

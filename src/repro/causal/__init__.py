"""Uplift-model zoo: the paper's TPM (Two-Phase Method) baselines.

Phase 1 of TPM estimates incremental revenue and incremental cost with
an uplift model; phase 2 divides the two.  The paper benchmarks seven
phase-1 estimators — S-Learner, X-Learner, Causal Forest, DragonNet,
TARNet, OffsetNet, SNet — all implemented here from scratch on top of
:mod:`repro.nn`, :mod:`repro.trees` and :mod:`repro.linear`.
"""

from repro.causal.base import TrainableModel, UpliftModel, refit_model
from repro.causal.forest_uplift import CausalForestUplift
from repro.causal.meta.s_learner import SLearner
from repro.causal.meta.t_learner import TLearner
from repro.causal.meta.x_learner import XLearner
from repro.causal.neural.dragonnet import DragonNet
from repro.causal.neural.offsetnet import OffsetNet
from repro.causal.neural.snet import SNet
from repro.causal.neural.tarnet import TARNet
from repro.causal.tpm import TwoPhaseMethod, make_tpm

__all__ = [
    "CausalForestUplift",
    "DragonNet",
    "OffsetNet",
    "SLearner",
    "SNet",
    "TARNet",
    "TLearner",
    "TwoPhaseMethod",
    "TrainableModel",
    "UpliftModel",
    "refit_model",
    "XLearner",
    "make_tpm",
]

"""Common interfaces for trainable and uplift (CATE) models."""

from __future__ import annotations

import inspect

import numpy as np

from repro.utils.validation import check_1d, check_2d, check_binary, check_consistent_length

__all__ = ["TrainableModel", "UpliftModel", "refit_model", "validate_uplift_inputs"]


def validate_uplift_inputs(x, y, t) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate and coerce the ``(X, y, t)`` triple shared by all models."""
    x = check_2d(x)
    y = check_1d(y)
    t = check_binary(t)
    check_consistent_length(x, y, t, names=("X", "y", "treatment"))
    if np.all(t == 1) or np.all(t == 0):
        raise ValueError("Both treated and control samples are required to fit an uplift model")
    return x, y, t


class TrainableModel:
    """The uniform train/retrain surface every model in the zoo shares.

    The model zoo grew three fit-signature families — supervised
    ``fit(x, y)``, uplift ``fit(x, y, t)``, and ROI ``fit(x, t, y_r,
    y_c)`` / ``fit(x, y_revenue, y_cost, t)`` — which is fine for a
    notebook but fatal for a generic retrainer: nothing could build a
    *fresh, unfitted* copy of a serving champion and drive its refit
    without hard-coding every class.  ``TrainableModel`` closes that
    gap with two guarantees:

    * :meth:`clone_unfit` — a new, unfitted instance carrying exactly
      this model's constructor hyperparameters (fitted state is *not*
      copied, so the clone learns only from the data it is refit on);
    * :func:`refit_model` — a module-level dispatcher that feeds the
      realised ``(x, t, y_r, y_c)`` outcome stream to any family's
      native ``fit``.

    The default :meth:`clone_unfit` is introspective: every constructor
    parameter must be readable back from a same-named instance
    attribute (the convention the whole zoo already follows).  Classes
    that aggregate their parameters into sub-objects override
    :meth:`_init_params` instead.

    A uniform uplift-prediction entry point rides along:
    :meth:`uplift_scores` resolves, in order, ``predict_roi`` →
    ``predict_uplift`` → ``predict``, so rankers and dashboards can
    score any zoo member without knowing its family.
    """

    def _init_params(self) -> dict:
        """Constructor kwargs reconstructing an equivalent unfitted model.

        Read introspectively from same-named instance attributes; a
        constructor parameter with no matching attribute raises rather
        than silently dropping a hyperparameter from the clone.
        """
        params: dict = {}
        sig = inspect.signature(type(self).__init__)
        for name, param in sig.parameters.items():
            if name == "self" or param.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            if not hasattr(self, name):
                raise AttributeError(
                    f"{type(self).__name__} stores no attribute {name!r} for its "
                    f"constructor parameter — override _init_params() to clone it"
                )
            params[name] = getattr(self, name)
        return params

    def clone_unfit(self) -> "TrainableModel":
        """A fresh, unfitted instance with this model's hyperparameters.

        Shared-by-reference hyperparameters (a ``base_factory``, an
        ``np.random.Generator`` seed object) are carried over as-is;
        fitted state never is.
        """
        return type(self)(**self._init_params())

    def fit(self, *args, **kwargs) -> "TrainableModel":
        raise NotImplementedError

    def uplift_scores(self, x) -> np.ndarray:
        """Uniform per-user uplift ranking scores, whatever the family.

        Resolves ``predict_roi`` (ROI models), then ``predict_uplift``
        (CATE models), then ``predict`` (supervised effect regressors).
        """
        for name in ("predict_roi", "predict_uplift", "predict"):
            method = getattr(self, name, None)
            if callable(method):
                return np.asarray(method(x), dtype=float)
        raise NotImplementedError(
            f"{type(self).__name__} exposes none of predict_roi/predict_uplift/predict"
        )


def refit_model(model: TrainableModel, x, t, y_r, y_c) -> TrainableModel:
    """Fit ``model`` on a realised-outcome stream, whatever its family.

    The retraining loop buffers one ``(x_row, treated, y_r, y_c)``
    record per decided request; this dispatcher translates that uniform
    stream into each family's native ``fit`` signature, resolved by
    parameter names:

    * ``fit(x, y_revenue, y_cost, t)`` — two-phase ROI models;
    * ``fit(x, t, y_r, y_c)`` — direct ROI models (DRP family);
    * ``fit(x, y, t)`` — uplift models, fit on the net outcome
      ``y_r - y_c``;
    * ``fit(x, y, ...)`` — supervised regressors, fit on the net
      outcome (no treatment indicator).

    Returns the fitted model (``fit``'s own return).
    """
    x = np.asarray(x, dtype=float)
    t = np.asarray(t)
    y_r = np.asarray(y_r, dtype=float)
    y_c = np.asarray(y_c, dtype=float)
    params = inspect.signature(model.fit).parameters
    if "y_revenue" in params and "y_cost" in params:
        return model.fit(x, y_r, y_c, t)
    if "y_r" in params and "y_c" in params:
        return model.fit(x, t, y_r, y_c)
    if "t" in params:
        return model.fit(x, y_r - y_c, t)
    return model.fit(x, y_r - y_c)


class UpliftModel(TrainableModel):
    """Abstract CATE estimator: ``fit(X, y, t)`` then ``predict_uplift(X)``.

    Sub-classes estimate ``τ(x) = E[Y(1) − Y(0) | X = x]`` from RCT data
    (Assumption 1 of the paper).  Models that also expose per-arm
    outcome predictions override :meth:`predict_outcomes`.
    """

    def fit(self, x, y, t) -> "UpliftModel":
        raise NotImplementedError

    def predict_uplift(self, x) -> np.ndarray:
        raise NotImplementedError

    def predict_outcomes(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Per-arm predictions ``(μ̂₀(x), μ̂₁(x))`` when available."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose per-arm outcome predictions"
        )

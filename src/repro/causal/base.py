"""Common interface for uplift (CATE) models."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_2d, check_binary, check_consistent_length

__all__ = ["UpliftModel", "validate_uplift_inputs"]


def validate_uplift_inputs(x, y, t) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate and coerce the ``(X, y, t)`` triple shared by all models."""
    x = check_2d(x)
    y = check_1d(y)
    t = check_binary(t)
    check_consistent_length(x, y, t, names=("X", "y", "treatment"))
    if np.all(t == 1) or np.all(t == 0):
        raise ValueError("Both treated and control samples are required to fit an uplift model")
    return x, y, t


class UpliftModel:
    """Abstract CATE estimator: ``fit(X, y, t)`` then ``predict_uplift(X)``.

    Sub-classes estimate ``τ(x) = E[Y(1) − Y(0) | X = x]`` from RCT data
    (Assumption 1 of the paper).  Models that also expose per-arm
    outcome predictions override :meth:`predict_outcomes`.
    """

    def fit(self, x, y, t) -> "UpliftModel":
        raise NotImplementedError

    def predict_uplift(self, x) -> np.ndarray:
        raise NotImplementedError

    def predict_outcomes(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Per-arm predictions ``(μ̂₀(x), μ̂₁(x))`` when available."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose per-arm outcome predictions"
        )

"""X-Learner (Künzel et al., 2019): imputed-effect cross learner."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.causal.base import UpliftModel, validate_uplift_inputs
from repro.causal.meta._factories import ForestFactory
from repro.causal.meta.t_learner import TLearner
from repro.utils.validation import check_2d

__all__ = ["XLearner"]


class XLearner(UpliftModel):
    """Three-stage cross learner.

    1. Fit per-arm outcome models ``μ̂₀``, ``μ̂₁`` (a T-learner).
    2. Impute individual effects — ``D¹ = y − μ̂₀(x)`` on the treated,
       ``D⁰ = μ̂₁(x) − y`` on the controls — and regress each on ``x``.
    3. Blend: ``τ̂(x) = g(x)·τ̂₀(x) + (1 − g(x))·τ̂₁(x)`` with the
       propensity ``g``.  Under RCT data (Assumption 1) the propensity
       is the constant treated fraction, which we estimate from ``t``.

    Parameters
    ----------
    base_factory:
        Factory for all four regressors (two outcome, two effect).
    propensity:
        Optional fixed propensity; estimated from the data when
        ``None``.
    """

    def __init__(
        self,
        base_factory: Callable[[], object] | None = None,
        propensity: float | None = None,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.random_state = random_state
        if base_factory is None:
            base_factory = ForestFactory(random_state=self.random_state)
        self.base_factory = base_factory
        if propensity is not None and not 0.0 < propensity < 1.0:
            raise ValueError(f"propensity must be in (0, 1), got {propensity}")
        self.propensity = propensity
        self.stage1_: TLearner | None = None
        self.effect0_ = None
        self.effect1_ = None
        self.propensity_: float | None = None
        self._n_features: int | None = None

    def fit(self, x, y, t) -> "XLearner":
        x, y, t = validate_uplift_inputs(x, y, t)
        self._n_features = x.shape[1]
        self.stage1_ = TLearner(self.base_factory, random_state=self.random_state)
        self.stage1_.fit(x, y, t)
        mu0, mu1 = self.stage1_.predict_outcomes(x)

        treated = t == 1
        d_treated = y[treated] - mu0[treated]
        d_control = mu1[~treated] - y[~treated]

        self.effect1_ = self.base_factory()
        self.effect1_.fit(x[treated], d_treated)
        self.effect0_ = self.base_factory()
        self.effect0_.fit(x[~treated], d_control)

        self.propensity_ = self.propensity if self.propensity is not None else float(t.mean())
        return self

    def predict_uplift(self, x) -> np.ndarray:
        if self.effect0_ is None or self.effect1_ is None or self.propensity_ is None:
            raise RuntimeError("XLearner is not fitted; call fit() first")
        x = check_2d(x)
        if x.shape[1] != self._n_features:
            raise ValueError(
                f"X has {x.shape[1]} features but the model was fitted with {self._n_features}"
            )
        tau0 = self.effect0_.predict(x)
        tau1 = self.effect1_.predict(x)
        g = self.propensity_
        return g * tau0 + (1.0 - g) * tau1

    def predict_outcomes(self, x) -> tuple[np.ndarray, np.ndarray]:
        if self.stage1_ is None:
            raise RuntimeError("XLearner is not fitted; call fit() first")
        return self.stage1_.predict_outcomes(x)

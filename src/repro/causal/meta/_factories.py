"""Picklable default base-model factories for the meta-learners.

The S/T/X learners historically defaulted ``base_factory`` to a lambda
closing over ``self.random_state``.  A lambda cannot be pickled, which
made every fitted meta-learner unshippable to a scoring-shard worker
process even though the fitted forests inside it are plain arrays.
:class:`ForestFactory` is the same default spelled as a module-level
callable class: instances pickle by attribute, and calling one builds
the identical forest the lambda did (including passing a shared
``np.random.Generator`` through by reference, so successive calls — the
T-learner's two arms, say — keep drawing from one stream).
"""

from __future__ import annotations

import numpy as np

from repro.trees.forest import RandomForestRegressor

__all__ = ["ForestFactory"]


class ForestFactory:
    """Zero-argument callable returning a fresh default random forest.

    Parameters mirror the historical inline default:
    ``RandomForestRegressor(n_estimators=30, max_depth=8,
    random_state=<the learner's random_state>)``.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 8,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.random_state = random_state

    def __call__(self) -> RandomForestRegressor:
        return RandomForestRegressor(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            random_state=self.random_state,
        )

    def __repr__(self) -> str:
        return (
            f"ForestFactory(n_estimators={self.n_estimators}, "
            f"max_depth={self.max_depth}, random_state={self.random_state!r})"
        )

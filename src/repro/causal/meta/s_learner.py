"""S-Learner: a single model over the augmented feature ``[X, t]``."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.causal.base import UpliftModel, validate_uplift_inputs
from repro.causal.meta._factories import ForestFactory
from repro.utils.validation import check_2d

__all__ = ["SLearner"]


class SLearner(UpliftModel):
    """Single-model meta-learner (Künzel et al., 2019).

    Fits one regressor ``f(x, t)`` on the stacked feature matrix
    ``[X | t]`` and estimates the CATE as ``f(x, 1) − f(x, 0)``.  The
    treatment indicator competes with every other feature for splits,
    which is why S-learners shrink effects toward zero on weak signals
    — visible in the paper's Table I where TPM-SL trails the direct
    methods.

    Parameters
    ----------
    base_factory:
        Zero-argument callable returning an unfitted regressor with a
        ``fit(X, y)`` / ``predict(X)`` interface.  Defaults to a
        random forest.
    """

    def __init__(
        self,
        base_factory: Callable[[], object] | None = None,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.random_state = random_state
        if base_factory is None:
            base_factory = ForestFactory(random_state=self.random_state)
        self.base_factory = base_factory
        self.model_ = None
        self._n_features: int | None = None

    def fit(self, x, y, t) -> "SLearner":
        x, y, t = validate_uplift_inputs(x, y, t)
        self._n_features = x.shape[1]
        augmented = np.hstack([x, t.reshape(-1, 1).astype(float)])
        self.model_ = self.base_factory()
        self.model_.fit(augmented, y)
        return self

    def predict_outcomes(self, x) -> tuple[np.ndarray, np.ndarray]:
        if self.model_ is None:
            raise RuntimeError("SLearner is not fitted; call fit() first")
        x = check_2d(x)
        if x.shape[1] != self._n_features:
            raise ValueError(
                f"X has {x.shape[1]} features but the model was fitted with {self._n_features}"
            )
        with_zero = np.hstack([x, np.zeros((x.shape[0], 1))])
        with_one = np.hstack([x, np.ones((x.shape[0], 1))])
        return self.model_.predict(with_zero), self.model_.predict(with_one)

    def predict_uplift(self, x) -> np.ndarray:
        mu0, mu1 = self.predict_outcomes(x)
        return mu1 - mu0

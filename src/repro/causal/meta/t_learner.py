"""T-Learner: independent per-arm outcome models."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.causal.base import UpliftModel, validate_uplift_inputs
from repro.causal.meta._factories import ForestFactory
from repro.utils.validation import check_2d

__all__ = ["TLearner"]


class TLearner(UpliftModel):
    """Two-model meta-learner: ``τ̂(x) = μ̂₁(x) − μ̂₀(x)``.

    Fits one regressor on the treated arm and one on the control arm.
    Serves both as a baseline in its own right and as stage 1 of the
    :class:`~repro.causal.meta.x_learner.XLearner`.

    Parameters
    ----------
    base_factory:
        Zero-argument callable producing an unfitted regressor for each
        arm.  Defaults to a random forest.
    """

    def __init__(
        self,
        base_factory: Callable[[], object] | None = None,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.random_state = random_state
        if base_factory is None:
            base_factory = ForestFactory(random_state=self.random_state)
        self.base_factory = base_factory
        self.model0_ = None
        self.model1_ = None
        self._n_features: int | None = None

    def fit(self, x, y, t) -> "TLearner":
        x, y, t = validate_uplift_inputs(x, y, t)
        self._n_features = x.shape[1]
        self.model0_ = self.base_factory()
        self.model1_ = self.base_factory()
        self.model0_.fit(x[t == 0], y[t == 0])
        self.model1_.fit(x[t == 1], y[t == 1])
        return self

    def predict_outcomes(self, x) -> tuple[np.ndarray, np.ndarray]:
        if self.model0_ is None or self.model1_ is None:
            raise RuntimeError("TLearner is not fitted; call fit() first")
        x = check_2d(x)
        if x.shape[1] != self._n_features:
            raise ValueError(
                f"X has {x.shape[1]} features but the model was fitted with {self._n_features}"
            )
        return self.model0_.predict(x), self.model1_.predict(x)

    def predict_uplift(self, x) -> np.ndarray:
        mu0, mu1 = self.predict_outcomes(x)
        return mu1 - mu0

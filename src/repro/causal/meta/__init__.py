"""Meta-learner uplift estimators (Künzel et al., 2019)."""

from repro.causal.meta._factories import ForestFactory
from repro.causal.meta.s_learner import SLearner
from repro.causal.meta.t_learner import TLearner
from repro.causal.meta.x_learner import XLearner

__all__ = ["ForestFactory", "SLearner", "TLearner", "XLearner"]

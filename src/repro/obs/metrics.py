"""Process-local metrics: counters, gauges, and log-bucket histograms.

Every serving-layer component already keeps private tallies (the
engine's ``stats`` dict, the pacer's ``history`` list, the promoter's
``events``), but none of them share a vocabulary, none can be merged
across processes, and the one latency record that matters — the
engine's submit→score log — was an unbounded ``list[float]``.  This
module is the common currency instead:

* :class:`Counter` — a monotone total.  ``inc`` is one locked add.
* :class:`Gauge` — a point-in-time level (queue depth, spend vs.
  curve).  Merging gauges *sums* them: across shards, queue depths and
  spends add, which is the semantics sharded serving needs.
* :class:`Histogram` — fixed log-scale buckets (a DDSketch-style
  gamma grid): ``record`` is O(1) (one ``log`` and one dict add), the
  memory is bounded by the number of *occupied* buckets regardless of
  how many values stream through, and :meth:`Histogram.quantile`
  returns a value within ``relative_error`` of the exact order
  statistic — the guarantee the latency-quantile claims are made on.

All three are thread-safe (one small lock per metric; the engine's
asynchronous backends complete futures on worker threads) and all
three produce immutable **snapshots** that support ``merge`` (counters
and histograms add, gauges sum, min/max combine — commutative and
associative, so N shards' snapshots fold in any order) and ``delta``
(new minus old: the per-day accounting the traffic replay reports).

A :class:`MetricsRegistry` is just a named collection of metrics with
a one-call :meth:`MetricsRegistry.snapshot`; the
:class:`~repro.obs.NullRegistry` twin hands out shared no-op metrics
so un-instrumented paths cost one no-op method call and allocate
nothing.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "CounterSnapshot",
    "Gauge",
    "GaugeSnapshot",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Snapshot",
]

_KINDS = ("counter", "gauge", "histogram")


def _check_name(name: str) -> str:
    if not name or not isinstance(name, str):
        raise ValueError(f"metric name must be a non-empty string, got {name!r}")
    return name


# ---------------------------------------------------------------------------
# snapshots: immutable, mergeable, diffable
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CounterSnapshot:
    """Frozen counter state."""

    name: str
    value: float

    kind = "counter"

    def merge(self, other: "CounterSnapshot") -> "CounterSnapshot":
        """Combine two shards' totals (commutative: values add)."""
        return CounterSnapshot(self.name, self.value + other.value)

    def delta(self, older: "CounterSnapshot") -> "CounterSnapshot":
        """What happened between ``older`` and now (monotone: >= 0)."""
        if older.value > self.value:
            raise ValueError(
                f"counter {self.name!r} went backwards "
                f"({older.value} -> {self.value}); not a prior snapshot"
            )
        return CounterSnapshot(self.name, self.value - older.value)

    def to_dict(self) -> dict:
        return {"kind": "counter", "value": self.value}


@dataclass(frozen=True)
class GaugeSnapshot:
    """Frozen gauge level."""

    name: str
    value: float

    kind = "gauge"

    def merge(self, other: "GaugeSnapshot") -> "GaugeSnapshot":
        """Across shards levels add (queue depths, spend): sum."""
        return GaugeSnapshot(self.name, self.value + other.value)

    def delta(self, older: "GaugeSnapshot") -> "GaugeSnapshot":
        """Signed level change between the two snapshots."""
        return GaugeSnapshot(self.name, self.value - older.value)

    def to_dict(self) -> dict:
        return {"kind": "gauge", "value": self.value}


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen histogram state: gamma grid + occupied bucket counts.

    ``buckets[i]`` counts values in ``(gamma**(i-1), gamma**i]``;
    ``zero_count`` holds values below the trackable floor.  ``count``,
    ``sum``, ``min`` and ``max`` are exact (not bucket-derived).
    """

    name: str
    gamma: float
    count: int
    sum: float
    min: float
    max: float
    zero_count: int
    buckets: Mapping[int, int] = field(default_factory=dict)

    kind = "histogram"

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Fold two shards' distributions (bucket-wise add)."""
        if not math.isclose(self.gamma, other.gamma):
            raise ValueError(
                f"cannot merge histograms {self.name!r} with different "
                f"gamma grids ({self.gamma} vs {other.gamma})"
            )
        merged = dict(self.buckets)
        for idx, c in other.buckets.items():
            merged[idx] = merged.get(idx, 0) + c
        return HistogramSnapshot(
            name=self.name,
            gamma=self.gamma,
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
            zero_count=self.zero_count + other.zero_count,
            buckets=merged,
        )

    def delta(self, older: "HistogramSnapshot") -> "HistogramSnapshot":
        """Distribution of the values recorded *since* ``older``.

        Bucket counts subtract exactly.  ``min``/``max`` are not
        recoverable for the window alone, so the delta carries the
        current extremes (exact whenever the window saw them).
        """
        if not math.isclose(self.gamma, older.gamma):
            raise ValueError(
                f"cannot diff histograms {self.name!r} with different "
                f"gamma grids ({self.gamma} vs {older.gamma})"
            )
        if older.count > self.count:
            raise ValueError(
                f"histogram {self.name!r} count went backwards "
                f"({older.count} -> {self.count}); not a prior snapshot"
            )
        buckets = {}
        for idx, c in self.buckets.items():
            d = c - older.buckets.get(idx, 0)
            if d < 0:
                raise ValueError(
                    f"histogram {self.name!r} bucket {idx} went backwards"
                )
            if d:
                buckets[idx] = d
        return HistogramSnapshot(
            name=self.name,
            gamma=self.gamma,
            count=self.count - older.count,
            sum=self.sum - older.sum,
            min=self.min,
            max=self.max,
            zero_count=self.zero_count - older.zero_count,
            buckets=buckets,
        )

    def quantile(self, q: float) -> float:
        """Value within the sketch's relative error of the exact
        q-quantile of everything recorded (see
        :meth:`Histogram.quantile`)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        # rank of the exact order statistic being approximated
        rank = int(math.ceil(q * self.count))
        rank = max(1, min(rank, self.count))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                # geometric bucket midpoint: relative error <= (gamma-1)/(gamma+1)
                return 2.0 * self.gamma ** idx / (self.gamma + 1.0)
        return self.max  # numerical safety: rank beyond the last bucket

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def relative_error(self) -> float:
        """Worst-case relative error of :meth:`quantile`."""
        return (self.gamma - 1.0) / (self.gamma + 1.0)

    def to_dict(self) -> dict:
        return {
            "kind": "histogram",
            "gamma": self.gamma,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zero_count": self.zero_count,
            # JSON objects key on strings; sorted for stable output
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }


MetricSnapshot = CounterSnapshot | GaugeSnapshot | HistogramSnapshot


def _snapshot_from_dict(name: str, d: Mapping) -> MetricSnapshot:
    kind = d.get("kind")
    if kind == "counter":
        return CounterSnapshot(name, float(d["value"]))
    if kind == "gauge":
        return GaugeSnapshot(name, float(d["value"]))
    if kind == "histogram":
        count = int(d["count"])
        return HistogramSnapshot(
            name=name,
            gamma=float(d["gamma"]),
            count=count,
            sum=float(d["sum"]),
            min=float(d["min"]) if count else math.inf,
            max=float(d["max"]) if count else -math.inf,
            zero_count=int(d["zero_count"]),
            buckets={int(i): int(c) for i, c in d["buckets"].items()},
        )
    raise ValueError(f"unknown metric kind {kind!r} for {name!r}")


class Snapshot(Mapping):
    """One frozen view of a registry: ``{name: metric snapshot}``.

    Behaves as a read-only mapping, and lifts the per-metric ``merge``
    / ``delta`` to whole registries: ``merge`` unions the name sets
    (shared names fold metric-wise — commutative, the sharded-serving
    contract), ``delta`` reports what changed since an older snapshot
    (names absent from the older side pass through whole).
    """

    def __init__(self, metrics: Mapping[str, MetricSnapshot] | None = None) -> None:
        self._metrics: dict[str, MetricSnapshot] = dict(metrics or {})

    def __getitem__(self, name: str) -> MetricSnapshot:
        return self._metrics[name]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"Snapshot({len(self._metrics)} metrics)"

    def merge(self, other: "Snapshot") -> "Snapshot":
        """Union the two snapshots, folding shared names metric-wise."""
        merged = dict(self._metrics)
        for name, metric in other._metrics.items():
            mine = merged.get(name)
            if mine is None:
                merged[name] = metric
            else:
                if mine.kind != metric.kind:
                    raise ValueError(
                        f"metric {name!r} is a {mine.kind} on one side and "
                        f"a {metric.kind} on the other"
                    )
                merged[name] = mine.merge(metric)
        return Snapshot(merged)

    def delta(self, older: "Snapshot") -> "Snapshot":
        """What each metric did between ``older`` and this snapshot."""
        out: dict[str, MetricSnapshot] = {}
        for name, metric in self._metrics.items():
            old = older._metrics.get(name)
            out[name] = metric if old is None else metric.delta(old)
        return Snapshot(out)

    def to_dict(self) -> dict:
        """JSON-ready nested dict (see ``Snapshot.from_dict``)."""
        return {name: self._metrics[name].to_dict() for name in self}

    @classmethod
    def from_dict(cls, d: Mapping) -> "Snapshot":
        return cls({name: _snapshot_from_dict(name, md) for name, md in d.items()})


# ---------------------------------------------------------------------------
# live metrics
# ---------------------------------------------------------------------------
class Counter:
    """A monotone total.  ``inc`` only; never decremented."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> CounterSnapshot:
        return CounterSnapshot(self.name, self._value)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A settable level (may move both ways)."""

    __slots__ = ("name", "help", "_value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> GaugeSnapshot:
        return GaugeSnapshot(self.name, self._value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value})"


class Histogram:
    """Streaming distribution sketch on a fixed log-scale bucket grid.

    Bucket ``i`` covers ``(gamma**(i-1), gamma**i]`` with ``gamma =
    (1 + relative_error) / (1 - relative_error)``; reporting the
    geometric bucket midpoint makes every quantile exact to within
    ``relative_error`` (default 1%), with O(1) record cost and memory
    proportional to the value *range* (occupied buckets), not the
    value *count* — this is what replaces the engine's unbounded
    ``latencies`` list as the quantile source.

    Values at or below ``min_trackable`` (default 1ns for
    seconds-denominated metrics) land in a dedicated zero bucket and
    report as 0.0; negative values are rejected.
    """

    __slots__ = (
        "name", "help", "gamma", "_log_gamma", "min_trackable",
        "_count", "_sum", "_min", "_max", "_zero", "_buckets", "_lock",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        relative_error: float = 0.01,
        min_trackable: float = 1e-9,
    ) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError(f"relative_error must be in (0, 1), got {relative_error}")
        if not min_trackable > 0:
            raise ValueError(f"min_trackable must be > 0, got {min_trackable}")
        self.name = _check_name(name)
        self.help = help
        self.gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self.gamma)
        self.min_trackable = float(min_trackable)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._zero = 0
        self._buckets: dict[int, int] = {}
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        """O(1): one log, one dict add."""
        value = float(value)
        if value < 0.0 or math.isnan(value):
            raise ValueError(
                f"histogram {self.name!r} takes non-negative values, got {value}"
            )
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value <= self.min_trackable:
                self._zero += 1
            else:
                idx = math.ceil(math.log(value) / self._log_gamma)
                self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Approximate q-quantile, exact to within ``relative_error``."""
        return self.snapshot().quantile(q)

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                name=self.name,
                gamma=self.gamma,
                count=self._count,
                sum=self._sum,
                min=self._min,
                max=self._max,
                zero_count=self._zero,
                buckets=dict(self._buckets),
            )

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self._count})"


Metric = Counter | Gauge | Histogram


# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------
class MetricsRegistry:
    """A named collection of live metrics with one-call snapshots.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create by name (the
    lazy path for rare events like promoter verdicts); :meth:`adopt`
    registers a metric the component built itself (the hot path: the
    engine owns its counters and hands them over for export, so
    registration costs nothing at record time).  One registry per
    serving shard; merge their :meth:`snapshot`\\ s for the fleet view.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, *args, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        relative_error: float = 0.01,
        min_trackable: float = 1e-9,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, relative_error, min_trackable)

    def adopt(self, metric: Metric) -> Metric:
        """Register a component-built metric under its own name.

        Replaces any previous holder of the name: a component
        re-constructed against the same registry re-registers its
        metrics, and the freshest instance is the live one.  Returns
        the metric, so ``self._c = metrics.adopt(Counter(...))`` reads
        naturally at construction sites.
        """
        with self._lock:
            self._metrics[metric.name] = metric
        return metric

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Snapshot:
        """Freeze every registered metric (one consistent-ish view;
        each metric is internally consistent, cross-metric skew is one
        in-flight operation at most)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return Snapshot({m.name: m.snapshot() for m in metrics})

    def span(self, name: str, clock=None):
        """Clock-aware tracing span; see :func:`repro.obs.tracing.span`."""
        from repro.obs.tracing import span as _span

        return _span(self, name, clock=clock)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


class _NullCounter:
    __slots__ = ()
    kind = "counter"
    name = "null"
    value = 0.0

    def inc(self, n: float = 1.0) -> None:
        pass

    def snapshot(self) -> CounterSnapshot:
        return CounterSnapshot("null", 0.0)


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass

    def snapshot(self) -> GaugeSnapshot:
        return GaugeSnapshot("null", 0.0)


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = "null"
    count = 0
    sum = 0.0

    def record(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        raise ValueError("null histogram records nothing")

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot("null", 1.0, 0, 0.0, math.inf, -math.inf, 0, {})


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SPAN = _NullSpan()


class NullRegistry:
    """The disabled twin of :class:`MetricsRegistry`.

    Hands out shared no-op metrics and no-op spans: an un-instrumented
    component pays one no-op method call per would-be record and
    allocates nothing, which is what keeps the serial hot paths
    bit-identical with observability off.  ``adopt`` returns the
    metric untouched (components that own real metrics — the engine's
    stats counters — keep them; they are simply not collected).
    """

    def counter(self, name: str, help: str = "") -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "") -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, help: str = "", **kwargs) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def adopt(self, metric: Metric) -> Metric:
        return metric

    def names(self) -> list[str]:
        return []

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Snapshot:
        return Snapshot()

    def span(self, name: str, clock=None) -> _NullSpan:
        return _NULL_SPAN

    def __repr__(self) -> str:
        return "NullRegistry()"


#: the shared disabled registry — the default ``metrics=`` everywhere
NULL_REGISTRY = NullRegistry()

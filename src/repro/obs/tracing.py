"""Clock-aware tracing spans.

A span times one named operation and records the duration into a
histogram on the owning registry — ``span("engine.flush")`` produces
the metric ``span.engine.flush.seconds``, whose quantiles are the
flush-time distribution.  The crucial property is *which clock* a span
reads: it takes any :class:`~repro.runtime.Clock`, so a component
running under a :class:`~repro.runtime.ManualClock` (the traffic
simulator, the deadline tests) produces **exact simulated durations**
— a span around a flush that the simulator advanced 5 ms through
records exactly 0.005, deterministically.  Without a clock it falls
back to ``time.perf_counter`` wall time.

Spans are deliberately minimal: no ids, no parents, no context
propagation — just named duration histograms.  That is the part of
tracing this codebase can consume today (quantiles per operation,
mergeable across shards); a full propagated trace tree can grow on top
without changing call sites.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Span", "span"]


class _PerfClock:
    """Wall-time fallback when the caller has no injected clock."""

    def now(self) -> float:
        # the documented design: tracing degrades to real perf_counter
        # spans when no Clock is injected, rather than refusing to trace
        return time.perf_counter()  # repro: allow[RPR001]


_PERF_CLOCK = _PerfClock()


class Span:
    """Context manager timing one operation into a histogram.

    Re-usable (each ``with`` records one duration) and exception-safe:
    a raising body still records the time spent, so failure latencies
    are not silently censored out of the distribution.
    """

    __slots__ = ("_hist", "_now", "_t0")

    def __init__(self, hist, now: Callable[[], float]) -> None:
        self._hist = hist
        self._now = now
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = self._now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._hist.record(max(0.0, self._now() - self._t0))


def span(registry, name: str, clock=None) -> Span:
    """Build a span recording into ``span.<name>.seconds`` on ``registry``.

    ``clock`` is any :class:`~repro.runtime.Clock`; under a
    :class:`~repro.runtime.ManualClock` the recorded duration is exact
    simulated time.  ``None`` uses ``time.perf_counter``.  Normally
    reached as :meth:`MetricsRegistry.span
    <repro.obs.metrics.MetricsRegistry.span>` (the null registry
    returns a shared no-op span instead).
    """
    hist = registry.histogram(f"span.{name}.seconds")
    now = (clock or _PERF_CLOCK).now
    return Span(hist, now)

"""Committed benchmark trajectory: ``BENCH_<area>.json`` files and their diff.

ROADMAP item 4's complaint: seven ``bench_*`` scripts print numbers
and throw them away, so a perf regression lands silently.  This module
is the recording half of the fix — one JSON file per bench area at the
repo root, appended to per recorded run, diffed in CI against the last
committed numbers.

File schema (``repro.bench/1``)::

    {
      "schema": "repro.bench/1",
      "area": "serving",
      "runs": [
        {
          "recorded_at": "2026-08-08T12:00:00Z",
          "mode": "smoke" | "full",
          "commit": "<sha or null>",
          "metrics": {
            "<name>": {"value": 123.4, "unit": "req/s",
                        "direction": "higher" | "lower",
                        "gated": true, "tolerance": 0.2},
            ...
          },
          "snapshot": { ... repro.obs JSON snapshot metrics ... }
        },
        ...
      ]
    }

``direction`` says which way is better; ``gated`` marks the metrics
the trajectory diff enforces (un-gated metrics are recorded context —
absolute rates vary across machines, so CI gates only metrics that are
machine-portable: deterministic counter values and dimensionless
ratios).  ``tolerance`` overrides the diff's default 20% band per
metric.  Runs are diffed **same-mode only**: smoke runs (tiny sizes,
every CI push) against the last committed smoke run, full runs (real
sizes, recorded locally per PR) against the last committed full run.

CLI::

    python -m repro.obs.trajectory validate BENCH_*.json
    python -m repro.obs.trajectory diff --baseline . --new bench_out [--tolerance 0.2]
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "BENCH_SCHEMA",
    "Regression",
    "append_run",
    "bench_path",
    "diff_runs",
    "latest_run",
    "load",
    "validate",
]

BENCH_SCHEMA = "repro.bench/1"
MODES = ("smoke", "full")
DIRECTIONS = ("higher", "lower")
DEFAULT_TOLERANCE = 0.2


def bench_path(root: str | Path, area: str) -> Path:
    """Repo-root path of one area's trajectory file."""
    return Path(root) / f"BENCH_{area}.json"


def _utcnow() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _git_commit() -> str | None:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------
def validate(doc: dict, where: str = "<doc>") -> None:
    """Raise :class:`ValueError` on the first schema violation."""
    if not isinstance(doc, dict):
        raise ValueError(f"{where}: document must be an object")
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{where}: schema must be {BENCH_SCHEMA!r}, got {doc.get('schema')!r}")
    area = doc.get("area")
    if not isinstance(area, str) or not area:
        raise ValueError(f"{where}: area must be a non-empty string")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError(f"{where}: runs must be a non-empty list")
    for i, run in enumerate(runs):
        tag = f"{where}: runs[{i}]"
        if not isinstance(run, dict):
            raise ValueError(f"{tag} must be an object")
        if run.get("mode") not in MODES:
            raise ValueError(f"{tag}: mode must be one of {MODES}, got {run.get('mode')!r}")
        if not isinstance(run.get("recorded_at"), str):
            raise ValueError(f"{tag}: recorded_at must be a string timestamp")
        if run.get("commit") is not None and not isinstance(run["commit"], str):
            raise ValueError(f"{tag}: commit must be a string or null")
        metrics = run.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            raise ValueError(f"{tag}: metrics must be a non-empty object")
        for name, m in metrics.items():
            mtag = f"{tag}: metrics[{name!r}]"
            if not isinstance(m, dict):
                raise ValueError(f"{mtag} must be an object")
            value = m.get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{mtag}: value must be a number, got {value!r}")
            if not isinstance(m.get("unit"), str):
                raise ValueError(f"{mtag}: unit must be a string")
            if m.get("direction") not in DIRECTIONS:
                raise ValueError(
                    f"{mtag}: direction must be one of {DIRECTIONS}, got {m.get('direction')!r}"
                )
            if not isinstance(m.get("gated"), bool):
                raise ValueError(f"{mtag}: gated must be a boolean")
            tol = m.get("tolerance", DEFAULT_TOLERANCE)
            if not isinstance(tol, (int, float)) or isinstance(tol, bool) or not 0 < tol:
                raise ValueError(f"{mtag}: tolerance must be a positive number, got {tol!r}")
        if run.get("snapshot") is not None and not isinstance(run["snapshot"], dict):
            raise ValueError(f"{tag}: snapshot must be an object or null")


def load(path: str | Path) -> dict:
    """Read and validate one trajectory file."""
    path = Path(path)
    doc = json.loads(path.read_text())
    validate(doc, where=str(path))
    return doc


# ---------------------------------------------------------------------------
# recording
# ---------------------------------------------------------------------------
def append_run(
    path: str | Path,
    area: str,
    metrics: dict[str, dict],
    mode: str,
    snapshot: dict | None = None,
    commit: str | None = None,
    recorded_at: str | None = None,
) -> dict:
    """Append one run to ``path`` (creating the file if absent).

    ``metrics`` maps metric name to a dict with at least ``value``;
    ``unit`` (default ``""``), ``direction`` (default ``"higher"``),
    ``gated`` (default False) and ``tolerance`` are filled in.  The
    written document is validated before it hits disk, so a malformed
    bench can never corrupt the committed trajectory.  Returns the
    appended run.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    path = Path(path)
    if path.exists():
        doc = load(path)
        if doc["area"] != area:
            raise ValueError(f"{path} records area {doc['area']!r}, not {area!r}")
    else:
        doc = {"schema": BENCH_SCHEMA, "area": area, "runs": []}
    run = {
        "recorded_at": recorded_at or _utcnow(),
        "mode": mode,
        "commit": commit if commit is not None else _git_commit(),
        "metrics": {
            name: {
                "value": float(m["value"]),
                "unit": str(m.get("unit", "")),
                "direction": m.get("direction", "higher"),
                "gated": bool(m.get("gated", False)),
                **(
                    {"tolerance": float(m["tolerance"])}
                    if "tolerance" in m
                    else {}
                ),
            }
            for name, m in metrics.items()
        },
        "snapshot": snapshot,
    }
    doc["runs"].append(run)
    validate(doc, where=str(path))
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return run


def latest_run(doc: dict, mode: str) -> dict | None:
    """Most recent run of the given mode, or None."""
    for run in reversed(doc["runs"]):
        if run["mode"] == mode:
            return run
    return None


# ---------------------------------------------------------------------------
# diffing
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One gated metric that moved the wrong way past its tolerance."""

    area: str
    metric: str
    baseline: float
    new: float
    direction: str
    tolerance: float

    def __str__(self) -> str:
        change = (self.new - self.baseline) / abs(self.baseline) if self.baseline else float("inf")
        return (
            f"[{self.area}] {self.metric}: {self.baseline:g} -> {self.new:g} "
            f"({change:+.1%}, want {self.direction}, tolerance {self.tolerance:.0%})"
        )


def diff_runs(
    baseline: dict,
    new: dict,
    area: str = "?",
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> list[Regression]:
    """Gated-metric regressions of ``new`` relative to ``baseline``.

    A gated metric regresses when it moves against its ``direction``
    by more than its tolerance (default 20%): ``higher`` fails below
    ``baseline * (1 - tol)``, ``lower`` fails above ``baseline *
    (1 + tol)``.  A gated baseline metric missing from the new run is
    itself a regression — dropping a number must be explicit, not
    silent.
    """
    regressions: list[Regression] = []
    for name, m in baseline["metrics"].items():
        if not m.get("gated"):
            continue
        tol = float(m.get("tolerance", default_tolerance))
        new_m = new["metrics"].get(name)
        if new_m is None:
            regressions.append(
                Regression(area, name, float(m["value"]), float("nan"), m["direction"], tol)
            )
            continue
        old_v, new_v = float(m["value"]), float(new_m["value"])
        if m["direction"] == "higher":
            bad = new_v < old_v * (1.0 - tol) - 1e-12
        else:
            bad = new_v > old_v * (1.0 + tol) + 1e-12
        if bad:
            regressions.append(Regression(area, name, old_v, new_v, m["direction"], tol))
    return regressions


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trajectory",
        description="Validate and diff committed BENCH_<area>.json trajectories.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_val = sub.add_parser("validate", help="schema-check trajectory files")
    p_val.add_argument("files", nargs="+")
    p_diff = sub.add_parser(
        "diff", help="fail on gated-metric regressions vs the committed baseline"
    )
    p_diff.add_argument("--baseline", default=".", help="dir with committed BENCH_*.json")
    p_diff.add_argument("--new", required=True, help="dir with freshly recorded BENCH_*.json")
    p_diff.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    args = parser.parse_args(argv)

    if args.cmd == "validate":
        for f in args.files:
            load(f)
            print(f"ok      {f}")
        return 0

    new_files = sorted(Path(args.new).glob("BENCH_*.json"))
    if not new_files:
        print(f"no BENCH_*.json under {args.new} — nothing to diff")
        return 1
    failures: list[Regression] = []
    for new_file in new_files:
        new_doc = load(new_file)
        area = new_doc["area"]
        base_file = bench_path(args.baseline, area)
        if not base_file.exists():
            print(f"new     {area}: no committed baseline ({base_file}) — trajectory starts here")
            continue
        base_doc = load(base_file)
        for mode in MODES:
            new_run = latest_run(new_doc, mode)
            if new_run is None:
                continue
            base_run = latest_run(base_doc, mode)
            if base_run is None:
                print(f"new     {area}/{mode}: no committed {mode} baseline yet")
                continue
            regs = diff_runs(base_run, new_run, area=area, default_tolerance=args.tolerance)
            n_gated = sum(1 for m in base_run["metrics"].values() if m.get("gated"))
            status = "FAIL" if regs else "ok"
            print(f"{status:7s} {area}/{mode}: {n_gated} gated metrics, {len(regs)} regressions")
            failures.extend(regs)
    for reg in failures:
        print(f"  REGRESSION {reg}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

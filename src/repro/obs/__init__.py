"""One observability layer: metrics, tracing spans, and exporters.

``repro.obs`` gives the serving/runtime stack self-knowledge:

* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` (O(1) log-bucket sketch with exact quantile
  error bounds), collected by a :class:`MetricsRegistry` whose
  :class:`Snapshot`\\ s **merge** (commutatively — N serving shards
  fold into one fleet view) and **delta** (per-day accounting).  The
  :data:`NULL_REGISTRY` twin makes un-instrumented paths cost one
  no-op call, so observability off means bit-identical behaviour.
* :mod:`repro.obs.tracing` — clock-aware :func:`~repro.obs.tracing
  .span`\\ s: under a :class:`~repro.runtime.ManualClock` span
  durations are exact simulated time.
* :mod:`repro.obs.export` — JSON snapshot/delta serialisation and the
  Prometheus text exposition format (plus a parser for conformance
  round-trips).
* :mod:`repro.obs.trajectory` — the committed ``BENCH_<area>.json``
  benchmark trajectory: schema, recording, and the >20%-regression
  diff CI runs.

Like :mod:`repro.runtime`, this package only depends on the standard
library (the ``Clock`` protocol is structural), so every layer may
instrument itself onto it.
"""

from repro.obs.export import from_json, parse_prometheus, prometheus_name, to_json, to_prometheus
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    CounterSnapshot,
    Gauge,
    GaugeSnapshot,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    NullRegistry,
    Snapshot,
)
from repro.obs.tracing import Span, span

__all__ = [
    "Counter",
    "CounterSnapshot",
    "Gauge",
    "GaugeSnapshot",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Snapshot",
    "Span",
    "from_json",
    "parse_prometheus",
    "prometheus_name",
    "span",
    "to_json",
    "to_prometheus",
]

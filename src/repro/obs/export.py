"""Exporters: JSON snapshots/deltas and Prometheus text format.

Two consumers, two formats:

* **JSON** — the machine-readable trajectory format.  A snapshot (or a
  snapshot delta) serialises losslessly through
  :func:`to_json` / :func:`from_json`, which is what the benchmark
  harness commits into ``BENCH_<area>.json`` and what the traffic
  replay attaches to per-day results.
* **Prometheus text exposition** — :func:`to_prometheus` renders a
  snapshot in the v0.0.4 text format (counters as ``_total`` samples,
  histograms as cumulative ``le``-labelled buckets with ``_sum`` and
  ``_count``), so a scrape endpoint is one ``HTTPServer`` handler away
  and the numbers graph in any off-the-shelf stack.
  :func:`parse_prometheus` reads that format back — the conformance
  test round-trips every metric kind through it.

Metric names here are dotted (``engine.flush.batch_full``); Prometheus
names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``, so dots (and any other
illegal character) export as underscores.
"""

from __future__ import annotations

import json
import math
import re

from repro.obs.metrics import Snapshot

__all__ = [
    "from_json",
    "parse_prometheus",
    "prometheus_name",
    "to_json",
    "to_prometheus",
]

JSON_SCHEMA = "repro.obs.snapshot/1"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
# one exposition sample: name, optional {labels}, value
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------
def to_json(snapshot: Snapshot, indent: int | None = None) -> str:
    """Serialise a snapshot (or delta — any :class:`Snapshot`) to JSON."""
    return json.dumps(
        {"schema": JSON_SCHEMA, "metrics": snapshot.to_dict()},
        indent=indent,
        sort_keys=True,
    )

def from_json(text: str) -> Snapshot:
    """Inverse of :func:`to_json` (lossless round-trip)."""
    doc = json.loads(text)
    if doc.get("schema") != JSON_SCHEMA:
        raise ValueError(f"not a {JSON_SCHEMA} document: {doc.get('schema')!r}")
    return Snapshot.from_dict(doc["metrics"])


# ---------------------------------------------------------------------------
# Prometheus text exposition (v0.0.4)
# ---------------------------------------------------------------------------
def prometheus_name(name: str) -> str:
    """Dotted metric name → legal Prometheus name (dots become ``_``)."""
    fixed = _NAME_FIX.sub("_", name)
    if not _NAME_OK.match(fixed):
        fixed = "_" + fixed
    return fixed


def _fmt(value: float) -> str:
    """Shortest exact float representation (round-trips via float())."""
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def to_prometheus(snapshot: Snapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in snapshot:  # Snapshot iterates sorted
        metric = snapshot[name]
        pname = prometheus_name(name)
        if metric.kind == "counter":
            sample = pname if pname.endswith("_total") else pname + "_total"
            lines.append(f"# TYPE {sample} counter")
            lines.append(f"{sample} {_fmt(metric.value)}")
        elif metric.kind == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(metric.value)}")
        elif metric.kind == "histogram":
            lines.append(f"# TYPE {pname} histogram")
            # cumulative buckets: the zero bucket (values at/below the
            # trackable floor), each occupied gamma bucket's upper
            # bound, then the mandatory +Inf bucket equal to count
            cum = metric.zero_count
            lines.append(f'{pname}_bucket{{le="0.0"}} {cum}')
            for idx in sorted(metric.buckets):
                cum += metric.buckets[idx]
                upper = metric.gamma ** idx
                lines.append(f'{pname}_bucket{{le="{_fmt(upper)}"}} {cum}')
            lines.append(f'{pname}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{pname}_sum {_fmt(metric.sum)}")
            lines.append(f"{pname}_count {metric.count}")
        else:  # pragma: no cover - snapshot kinds are closed
            raise ValueError(f"cannot export metric kind {metric.kind!r}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse text exposition back into ``{name: parsed metric}``.

    Returns, per declared metric family: ``{"type": ..., "value": ...}``
    for counters (name without the ``_total`` suffix is *not* restored
    — the exporter's output name is the key) and gauges, and
    ``{"type": "histogram", "buckets": [(le, cum), ...], "sum": ...,
    "count": ...}`` for histograms.  Raises :class:`ValueError` on any
    line that is not a comment, a blank, or a well-formed sample — the
    format-conformance test feeds the exporter's output through here.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                raise ValueError(f"malformed TYPE line: {raw!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"malformed sample line: {raw!r}")
        name, labels, value_s = m.group("name", "labels", "value")
        value = float(value_s)
        # attach the sample to its family
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        declared = types.get(base)
        if declared is None:
            raise ValueError(f"sample {name!r} has no preceding TYPE declaration")
        fam = families.setdefault(base, {"type": declared})
        if declared == "histogram":
            if name.endswith("_bucket"):
                le_m = re.search(r'le="([^"]*)"', labels or "")
                if le_m is None:
                    raise ValueError(f"histogram bucket without le label: {raw!r}")
                fam.setdefault("buckets", []).append((le_m.group(1), value))
            elif name.endswith("_sum"):
                fam["sum"] = value
            elif name.endswith("_count"):
                fam["count"] = value
            else:
                raise ValueError(f"unexpected histogram sample {name!r}")
        else:
            fam["value"] = value
    return families

"""Conformal-interval quality statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.conformal import empirical_coverage
from repro.utils.validation import check_1d, check_consistent_length

__all__ = ["IntervalStats", "interval_statistics"]


@dataclass
class IntervalStats:
    """Summary of a batch of prediction intervals.

    Attributes
    ----------
    coverage:
        Fraction of targets inside their interval (Eq. 4 LHS).
    mean_width, median_width:
        Interval-width statistics — conformal validity is only useful
        if the intervals are also reasonably tight.
    """

    coverage: float
    mean_width: float
    median_width: float


def interval_statistics(
    target: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> IntervalStats:
    """Coverage plus width statistics for intervals ``[lower, upper]``."""
    target = check_1d(target, "target")
    lower = check_1d(lower, "lower")
    upper = check_1d(upper, "upper")
    check_consistent_length(target, lower, upper, names=("target", "lower", "upper"))
    if np.any(upper < lower):
        raise ValueError("Found intervals with upper < lower")
    width = upper - lower
    return IntervalStats(
        coverage=empirical_coverage(target, lower, upper),
        mean_width=float(np.mean(width)),
        median_width=float(np.median(width)),
    )

"""Evaluation metrics.

* :func:`aucc` / :func:`cost_curve` — Area Under Cost Curve, the
  paper's headline metric for ROI ranking quality (§V-A);
* qini/uplift curves for per-outcome uplift diagnostics;
* conformal interval coverage/width statistics.
"""

from repro.metrics.aucc import CostCurve, aucc, cost_curve
from repro.metrics.coverage import interval_statistics
from repro.metrics.uplift_curves import qini_coefficient, qini_curve, uplift_at_k

__all__ = [
    "CostCurve",
    "aucc",
    "cost_curve",
    "interval_statistics",
    "qini_coefficient",
    "qini_curve",
    "uplift_at_k",
]

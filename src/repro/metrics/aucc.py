"""Area Under Cost Curve (AUCC).

The paper's evaluation metric (§V-A): sort individuals by predicted
ROI descending; at each prefix compute the *incremental* reward and
cost of treating exactly that prefix, estimated by the
difference-in-group-means formula on the RCT sample

    Δreward(k) = ( ȳ_r,treated(S_k) − ȳ_r,control(S_k) ) · |S_k|

(and identically for cost); normalise both axes by their full-
population values and take the trapezoidal area under the curve of
normalised reward against normalised cost.  A random ranking gives the
diagonal (AUCC ≈ 0.5); a perfect ROI ranking bends the curve upward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import (
    check_1d,
    check_binary,
    check_consistent_length,
)

__all__ = ["CostCurve", "cost_curve", "aucc"]


@dataclass
class CostCurve:
    """A computed cost curve.

    Attributes
    ----------
    cost:
        Normalised cumulative incremental cost per prefix (x-axis,
        monotone by construction after the final normalisation).
    reward:
        Normalised cumulative incremental reward per prefix (y-axis).
    area:
        Trapezoidal area under ``reward`` as a function of ``cost``.
    """

    cost: np.ndarray
    reward: np.ndarray
    area: float


def _cumulative_increment(
    sorted_y: np.ndarray, sorted_t: np.ndarray, prefix_sizes: np.ndarray
) -> np.ndarray:
    """Vectorised ``Δ(k) = (ȳ₁(S_k) − ȳ₀(S_k))·k`` for every prefix.

    Uses cumulative sums so the whole curve costs ``O(n)``.  Prefixes
    missing one arm contribute 0 (no estimate is possible yet).
    """
    treated = sorted_t == 1
    cum_n1 = np.cumsum(treated)
    cum_n0 = np.cumsum(~treated)
    cum_y1 = np.cumsum(sorted_y * treated)
    cum_y0 = np.cumsum(sorted_y * (~treated))
    k = prefix_sizes
    n1 = cum_n1[k - 1]
    n0 = cum_n0[k - 1]
    y1 = cum_y1[k - 1]
    y0 = cum_y0[k - 1]
    with np.errstate(divide="ignore", invalid="ignore"):
        delta = (y1 / np.maximum(n1, 1) - y0 / np.maximum(n0, 1)) * k
    delta = np.where((n1 == 0) | (n0 == 0), 0.0, delta)
    return delta


def cost_curve(
    roi_pred: np.ndarray,
    t: np.ndarray,
    y_r: np.ndarray,
    y_c: np.ndarray,
    n_points: int = 100,
) -> CostCurve:
    """Compute the incremental cost-vs-reward curve for a ranking.

    Parameters
    ----------
    roi_pred:
        Predicted ROI (only its *ordering* matters).
    t, y_r, y_c:
        RCT sample: treatment, revenue outcome, cost outcome.
    n_points:
        Number of evenly spaced prefix percentiles evaluated.

    Returns
    -------
    CostCurve
        With both axes normalised by the full-population increments
        and a prepended origin point.
    """
    roi_pred = check_1d(roi_pred, "roi_pred")
    t = check_binary(t)
    y_r = check_1d(y_r, "y_r")
    y_c = check_1d(y_c, "y_c")
    check_consistent_length(roi_pred, t, y_r, y_c, names=("roi_pred", "t", "y_r", "y_c"))
    n = roi_pred.shape[0]
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    if np.all(t == 1) or np.all(t == 0):
        raise ValueError("Both treated and control samples are required for a cost curve")

    order = np.argsort(-roi_pred, kind="stable")
    sorted_t = t[order]
    sorted_yr = y_r[order]
    sorted_yc = y_c[order]

    prefix_sizes = np.unique(
        np.clip(np.round(np.linspace(1, n, n_points)).astype(np.int64), 1, n)
    )
    inc_reward = _cumulative_increment(sorted_yr, sorted_t, prefix_sizes)
    inc_cost = _cumulative_increment(sorted_yc, sorted_t, prefix_sizes)

    total_reward = inc_reward[-1]
    total_cost = inc_cost[-1]
    if abs(total_reward) < 1e-12 or abs(total_cost) < 1e-12:
        # Degenerate population (no average effect): flat curve, area 0.5
        xs = np.concatenate([[0.0], np.linspace(0, 1, prefix_sizes.shape[0])])
        return CostCurve(cost=xs, reward=xs.copy(), area=0.5)

    norm_reward = np.concatenate([[0.0], inc_reward / total_reward])
    norm_cost = np.concatenate([[0.0], inc_cost / total_cost])

    # Small prefixes of a noisy RCT estimate can fall outside the unit
    # square (negative or >1 increments); the curve is the *normalised*
    # trade-off, so clip to [0, 1] — the endpoints (0,0) and (1,1) are
    # exact by construction.
    norm_reward = np.clip(norm_reward, 0.0, 1.0)
    norm_cost = np.clip(norm_cost, 0.0, 1.0)

    # Enforce a monotone x-axis for integration: sampling noise can make
    # small prefixes non-monotone in cost; sort by cost keeps the curve
    # a function.
    order_x = np.argsort(norm_cost, kind="stable")
    xs = norm_cost[order_x]
    ys = norm_reward[order_x]
    area = float(np.trapezoid(ys, xs))
    return CostCurve(cost=xs, reward=ys, area=area)


def aucc(
    roi_pred: np.ndarray,
    t: np.ndarray,
    y_r: np.ndarray,
    y_c: np.ndarray,
    n_points: int = 100,
) -> float:
    """Area under the cost curve (larger = more cost-effective ranking)."""
    return cost_curve(roi_pred, t, y_r, y_c, n_points=n_points).area

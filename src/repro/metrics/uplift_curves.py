"""Qini and uplift-at-k diagnostics for single-outcome uplift models.

These complement AUCC: AUCC scores the *ROI* ranking, while the qini
coefficient scores the revenue-uplift (or cost-uplift) ranking of each
phase-1 model in isolation — useful when debugging why a TPM variant
underperforms.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_binary, check_consistent_length

__all__ = ["qini_curve", "qini_coefficient", "uplift_at_k"]


def qini_curve(
    uplift_pred: np.ndarray,
    t: np.ndarray,
    y: np.ndarray,
    n_points: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """Qini curve: cumulative incremental responses by ranked prefix.

    Returns ``(fractions, qini_values)`` where ``qini(k) = Y₁(k) −
    Y₀(k)·N₁(k)/N₀(k)`` for the top-``k`` prefix of the ranking.
    """
    uplift_pred = check_1d(uplift_pred, "uplift_pred")
    t = check_binary(t)
    y = check_1d(y, "y")
    check_consistent_length(uplift_pred, t, y, names=("uplift_pred", "t", "y"))
    n = uplift_pred.shape[0]
    order = np.argsort(-uplift_pred, kind="stable")
    ts = t[order]
    ys = y[order]
    treated = ts == 1
    cum_y1 = np.cumsum(ys * treated)
    cum_y0 = np.cumsum(ys * (~treated))
    cum_n1 = np.cumsum(treated)
    cum_n0 = np.cumsum(~treated)
    ks = np.unique(np.clip(np.round(np.linspace(1, n, n_points)).astype(np.int64), 1, n))
    with np.errstate(divide="ignore", invalid="ignore"):
        qini = cum_y1[ks - 1] - cum_y0[ks - 1] * cum_n1[ks - 1] / np.maximum(cum_n0[ks - 1], 1)
    qini = np.where(cum_n0[ks - 1] == 0, 0.0, qini)
    return ks / n, qini


def qini_coefficient(
    uplift_pred: np.ndarray, t: np.ndarray, y: np.ndarray, n_points: int = 100
) -> float:
    """Area between the qini curve and the random-ranking diagonal."""
    fractions, qini = qini_curve(uplift_pred, t, y, n_points=n_points)
    random_line = fractions * qini[-1]
    return float(np.trapezoid(qini - random_line, fractions))


def uplift_at_k(
    uplift_pred: np.ndarray, t: np.ndarray, y: np.ndarray, k: float = 0.3
) -> float:
    """Difference-in-means treatment effect inside the top-``k`` fraction."""
    if not 0.0 < k <= 1.0:
        raise ValueError(f"k must be in (0, 1], got {k}")
    uplift_pred = check_1d(uplift_pred, "uplift_pred")
    t = check_binary(t)
    y = check_1d(y, "y")
    check_consistent_length(uplift_pred, t, y, names=("uplift_pred", "t", "y"))
    n = uplift_pred.shape[0]
    top = np.argsort(-uplift_pred, kind="stable")[: max(1, int(round(k * n)))]
    tt = t[top]
    yy = y[top]
    if np.all(tt == 1) or np.all(tt == 0):
        return 0.0
    return float(yy[tt == 1].mean() - yy[tt == 0].mean())

"""First-order optimizers operating on ``(parameters, gradients)`` pairs.

Parameters are updated **in place** so layers keep owning their arrays.
Weight decay is decoupled (applied directly to the parameter), matching
the L2-regularised training the uplift-modelling literature uses for
small RCT datasets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer interface."""

    def __init__(self, learning_rate: float = 1e-3, weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state (momentum/moment buffers)."""


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        for p, g in zip(params, grads):
            update = g + self.weight_decay * p
            if self.momentum > 0:
                v = self._velocity.setdefault(id(p), np.zeros_like(p))
                v *= self.momentum
                v += update
                update = v
            p -= self.learning_rate * update

    def reset(self) -> None:
        self._velocity.clear()


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moment estimates."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got ({beta1}, {beta2})")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._t += 1
        lr_t = self.learning_rate * (
            np.sqrt(1.0 - self.beta2**self._t) / (1.0 - self.beta1**self._t)
        )
        for p, g in zip(params, grads):
            g = g + self.weight_decay * p
            m = self._m.setdefault(id(p), np.zeros_like(p))
            v = self._v.setdefault(id(p), np.zeros_like(p))
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= lr_t * m / (np.sqrt(v) + self.eps)

    def reset(self) -> None:
        self._m.clear()
        self._v.clear()
        self._t = 0

"""Numerically stable activation functions and their derivatives.

The DRP loss (Eq. 2 of the paper) expands into ``y_r * s - y_c *
softplus(s)`` terms, so :func:`sigmoid`, :func:`softplus` and
:func:`log_sigmoid` are written in the branch-free stable forms that
never overflow for large ``|s|``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sigmoid",
    "sigmoid_grad",
    "softplus",
    "log_sigmoid",
    "relu",
    "relu_grad",
    "elu",
    "elu_grad",
    "tanh",
    "tanh_grad",
    "identity",
    "softmax",
]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Stable logistic function ``1 / (1 + exp(-x))``.

    Uses the two-branch formulation so ``exp`` is only ever evaluated on
    non-positive arguments.
    """
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`sigmoid` with respect to its input."""
    s = sigmoid(x)
    return s * (1.0 - s)


def softplus(x: np.ndarray) -> np.ndarray:
    """Stable ``log(1 + exp(x)) = max(x, 0) + log1p(exp(-|x|))``."""
    x = np.asarray(x, dtype=float)
    return np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))


def log_sigmoid(x: np.ndarray) -> np.ndarray:
    """Stable ``log(sigmoid(x)) = -softplus(-x)``."""
    return -softplus(-np.asarray(x, dtype=float))


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit ``max(x, 0)``."""
    return np.maximum(np.asarray(x, dtype=float), 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Sub-gradient of :func:`relu` (0 at the kink)."""
    return (np.asarray(x, dtype=float) > 0).astype(float)


def elu(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """Exponential linear unit: ``x`` if positive else ``alpha*(e^x-1)``."""
    x = np.asarray(x, dtype=float)
    return np.where(x > 0, x, alpha * np.expm1(np.minimum(x, 0.0)))


def elu_grad(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """Derivative of :func:`elu`."""
    x = np.asarray(x, dtype=float)
    return np.where(x > 0, 1.0, alpha * np.exp(np.minimum(x, 0.0)))


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(np.asarray(x, dtype=float))


def tanh_grad(x: np.ndarray) -> np.ndarray:
    """Derivative ``1 - tanh(x)^2``."""
    t = np.tanh(np.asarray(x, dtype=float))
    return 1.0 - t * t


def identity(x: np.ndarray) -> np.ndarray:
    """Pass-through activation (linear output head)."""
    return np.asarray(x, dtype=float)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    x = np.asarray(x, dtype=float)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / np.sum(ex, axis=axis, keepdims=True)

"""Weight initialisation schemes.

Shallow uplift networks are sensitive to initial scale (the paper lists
"initial weights" among the hard-to-tune knobs under insufficient
data), so initialisers are explicit and seedable rather than implicit
numpy defaults.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["glorot_uniform", "he_normal", "zeros_init"]


def glorot_uniform(
    fan_in: int, fan_out: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation ``U(-a, a)``, ``a = sqrt(6/(fan_in+fan_out))``.

    Appropriate for sigmoid/tanh hidden layers — the configuration DRP
    uses (a single sigmoid-adjacent hidden layer of 10–100 units).
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in/fan_out must be positive, got ({fan_in}, {fan_out})")
    gen = as_generator(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return gen.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(
    fan_in: int, fan_out: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """He normal initialisation ``N(0, 2/fan_in)`` for ReLU-family layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in/fan_out must be positive, got ({fan_in}, {fan_out})")
    gen = as_generator(rng)
    return gen.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))


def zeros_init(fan_in: int, fan_out: int, rng=None) -> np.ndarray:
    """All-zero initialisation (bias vectors)."""
    return np.zeros((fan_in, fan_out))

"""Finite-difference gradient verification.

Used by the test suite to certify every layer's analytic backward pass;
exported publicly because downstream users extending the substrate with
new layers will want the same harness.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.network import Network

__all__ = ["numeric_gradient", "check_network_gradients"]


def numeric_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function ``f`` at ``x``."""
    x = np.asarray(x, dtype=float)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f(x)
        x[idx] = orig - eps
        f_minus = f(x)
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_network_gradients(
    network: Network,
    x: np.ndarray,
    loss: Callable[[np.ndarray], tuple[float, np.ndarray]],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> float:
    """Compare analytic parameter gradients against finite differences.

    Parameters
    ----------
    network:
        Network to check (must not contain active dropout for the check
        to be deterministic).
    x:
        Small input batch.
    loss:
        ``pred -> (value, grad_wrt_pred)``.

    Returns
    -------
    float
        Maximum absolute deviation over all parameters.

    Raises
    ------
    AssertionError
        If any analytic gradient entry disagrees with the numeric one
        beyond ``atol + rtol * |numeric|``.
    """
    network.zero_grad()
    pred = network.forward(x, training=True)
    _, grad = loss(pred)
    network.backward(grad)
    analytic = [g.copy() for g in network.gradients()]

    def scalar_loss() -> float:
        value, _ = loss(network.forward(x, training=True))
        return value

    max_dev = 0.0
    for param, ana in zip(network.parameters(), analytic):
        def f(p, _param=param):
            return scalar_loss()

        num = numeric_gradient(lambda _p: scalar_loss(), param, eps=eps)
        dev = np.max(np.abs(num - ana))
        max_dev = max(max_dev, float(dev))
        if not np.allclose(num, ana, atol=atol, rtol=rtol):
            raise AssertionError(
                f"Gradient mismatch: max|numeric - analytic| = {dev:.3e} "
                f"for parameter of shape {param.shape}"
            )
    return max_dev

"""Sequential network container and training loop.

:class:`Network` chains :class:`~repro.nn.layers.Layer` objects and
exposes ``forward``/``backward``/``parameters`` so composite
architectures (TARNet's shared representation + per-arm heads,
DragonNet's propensity head, SNet's factored representations) can be
built by wiring several ``Network`` instances together and chaining
their backward passes manually.

``fit`` implements the standard mini-batch loop used by every model in
the paper: shuffled batches, an arbitrary ``(pred, target) -> (value,
grad)`` loss, optional validation-based early stopping with
best-weights restoration, and gradient-norm clipping (small RCT
datasets make uplift losses noisy, cf. §IV-B2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.nn.layers import Activation, Dense, Dropout, Layer
from repro.nn.optimizers import Adam, Optimizer
from repro.utils.rng import as_generator

__all__ = ["Network", "TrainingHistory", "mlp"]

# A loss consumes (predictions, batch_target) and returns (value, grad).
LossFn = Callable[[np.ndarray, object], tuple[float, np.ndarray]]


@dataclass
class TrainingHistory:
    """Per-epoch record of a :meth:`Network.fit` run."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    stopped_epoch: int | None = None
    best_epoch: int | None = None

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)


def _slice_target(target, idx: np.ndarray):
    """Slice a target that may be an array or a mapping of arrays."""
    if isinstance(target, Mapping):
        return {k: np.asarray(v)[idx] for k, v in target.items()}
    return np.asarray(target)[idx]


class Network:
    """A sequential stack of layers with manual backprop.

    Parameters
    ----------
    layers:
        Ordered layer list.  May be empty and extended with :meth:`add`.
    """

    def __init__(self, layers: Sequence[Layer] | None = None) -> None:
        self.layers: list[Layer] = list(layers) if layers is not None else []

    def add(self, layer: Layer) -> "Network":
        self.layers.append(layer)
        return self

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full stack.  ``training=True`` enables caching + dropout."""
        out = np.asarray(x, dtype=float)
        if out.ndim == 1:
            out = out.reshape(-1, 1)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def forward_stochastic(self, x: np.ndarray) -> np.ndarray:
        """Inference pass with dropout *active* (MC dropout).

        Only :class:`Dropout` layers run in training mode; nothing is
        cached, so this pass cannot be backpropagated — it exists purely
        to sample from the approximate posterior predictive.
        """
        out = np.asarray(x, dtype=float)
        if out.ndim == 1:
            out = out.reshape(-1, 1)
        for layer in self.layers:
            if isinstance(layer, Dropout):
                out = layer.forward(out, training=True)
            else:
                out = layer.forward(out, training=False)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate dL/d(output); returns dL/d(input)."""
        grad = np.asarray(grad_out, dtype=float)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Deterministic inference pass (dropout disabled)."""
        return self.forward(x, training=False)

    # ------------------------------------------------------------------
    # parameter bookkeeping
    # ------------------------------------------------------------------
    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients()]

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    def get_weights(self) -> list[np.ndarray]:
        """Deep copies of all parameters (for best-epoch restoration)."""
        return [p.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(f"Expected {len(params)} weight arrays, got {len(weights)}")
        for p, w in zip(params, weights):
            if p.shape != w.shape:
                raise ValueError(f"Shape mismatch: {p.shape} vs {w.shape}")
            p[...] = w

    # ------------------------------------------------------------------
    # training loop
    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        target,
        loss: LossFn,
        optimizer: Optimizer | None = None,
        epochs: int = 100,
        batch_size: int = 256,
        shuffle: bool = True,
        rng: int | np.random.Generator | None = None,
        validation_data: tuple | None = None,
        patience: int | None = None,
        min_delta: float = 1e-6,
        clip_norm: float | None = 5.0,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Mini-batch training.

        Parameters
        ----------
        x:
            Training inputs, shape ``(n, d)``.
        target:
            Loss target: an array or a mapping of arrays (all sliced
            per-batch along axis 0), e.g. ``{"t": ..., "yr": ..., "yc": ...}``
            for causal losses.
        loss:
            Callable ``(pred, batch_target) -> (value, grad_wrt_pred)``.
        optimizer:
            Defaults to :class:`~repro.nn.optimizers.Adam` at 1e-3.
        validation_data:
            Optional ``(x_val, target_val)`` monitored every epoch.
        patience:
            If set, stop after this many epochs without ``min_delta``
            improvement on the monitored loss (validation if provided,
            else training) and restore the best weights.
        clip_norm:
            Global gradient-norm clip; ``None`` disables.

        Returns
        -------
        TrainingHistory
        """
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        n = x.shape[0]
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        gen = as_generator(rng)
        opt = optimizer if optimizer is not None else Adam()
        history = TrainingHistory()
        best_loss = np.inf
        best_weights: list[np.ndarray] | None = None
        epochs_without_improvement = 0

        for epoch in range(epochs):
            order = gen.permutation(n) if shuffle else np.arange(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                batch_x = x[idx]
                batch_target = _slice_target(target, idx)
                self.zero_grad()
                pred = self.forward(batch_x, training=True)
                value, grad = loss(pred, batch_target)
                self.backward(grad)
                if clip_norm is not None:
                    self._clip_gradients(clip_norm)
                opt.step(self.parameters(), self.gradients())
                epoch_loss += value
                n_batches += 1
            mean_loss = epoch_loss / max(n_batches, 1)
            history.train_loss.append(mean_loss)

            monitored = mean_loss
            if validation_data is not None:
                val_x, val_target = validation_data
                val_pred = self.forward(np.asarray(val_x, dtype=float), training=False)
                val_value, _ = loss(val_pred, val_target)
                history.val_loss.append(val_value)
                monitored = val_value

            if verbose:
                msg = f"epoch {epoch + 1}/{epochs} loss={mean_loss:.6f}"
                if validation_data is not None:
                    msg += f" val={history.val_loss[-1]:.6f}"
                print(msg)

            if patience is not None:
                if monitored < best_loss - min_delta:
                    best_loss = monitored
                    best_weights = self.get_weights()
                    history.best_epoch = epoch
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= patience:
                        history.stopped_epoch = epoch
                        break

        if patience is not None and best_weights is not None:
            self.set_weights(best_weights)
        return history

    def _clip_gradients(self, max_norm: float) -> None:
        grads = self.gradients()
        total = np.sqrt(sum(float(np.sum(g * g)) for g in grads))
        if total > max_norm and total > 0:
            scale = max_norm / total
            for g in grads:
                g *= scale


def mlp(
    input_dim: int,
    hidden: Sequence[int],
    output_dim: int = 1,
    activation: str = "elu",
    dropout: float = 0.0,
    rng: int | np.random.Generator | None = None,
    output_activation: str | None = None,
) -> Network:
    """Build a standard MLP: ``Dense -> act -> [Dropout] -> ... -> Dense``.

    The paper's DRP network is ``mlp(d, [h], 1)`` with ``h`` in 10–100
    and a dropout layer used only at inference (MC dropout); we place
    the dropout after each hidden activation, which reduces to the
    paper's configuration for a single hidden layer.
    """
    if input_dim <= 0:
        raise ValueError(f"input_dim must be positive, got {input_dim}")
    gen = as_generator(rng)
    init = "he" if activation in ("relu", "elu") else "glorot"
    net = Network()
    prev = input_dim
    for width in hidden:
        net.add(Dense(prev, width, init=init, rng=gen))
        net.add(Activation(activation))
        if dropout > 0:
            net.add(Dropout(dropout, rng=gen))
        prev = width
    net.add(Dense(prev, output_dim, init="glorot", rng=gen))
    if output_activation is not None:
        net.add(Activation(output_activation))
    return net

"""Monte Carlo dropout inference (Gal & Ghahramani, 2016).

rDRP needs a per-sample standard deviation ``r(x)`` of the DRP point
estimate without retraining or ensembling (§IV-C2 of the paper).  MC
dropout provides it: run ``T`` stochastic forward passes with dropout
masks *active at inference* and take the empirical mean/std of the
transformed outputs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.network import Network

__all__ = ["mc_dropout_statistics", "MCDropoutPredictor"]


def mc_dropout_statistics(
    stochastic_forward: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    n_samples: int = 30,
    transform: Callable[[np.ndarray], np.ndarray] | None = None,
    std_floor: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Mean and std over ``n_samples`` stochastic forward passes.

    Parameters
    ----------
    stochastic_forward:
        Callable running one dropout-active pass, e.g.
        ``network.forward_stochastic``.
    x:
        Input batch, shape ``(n, d)``.
    n_samples:
        Number of MC passes ``T`` (the paper uses 10–100).
    transform:
        Optional output transform applied per pass *before* the
        statistics (DRP applies ``sigmoid`` so the std is of the ROI,
        not the logit).
    std_floor:
        Lower bound on the returned std — Eq. 3 divides by ``r(x)``, so
        a hard floor keeps the conformal score finite even for inputs
        the dropout mask never perturbs.

    Returns
    -------
    (mean, std):
        Arrays of shape ``(n,)`` (single-output networks are squeezed).
    """
    if n_samples < 2:
        raise ValueError(f"n_samples must be >= 2 to estimate a std, got {n_samples}")
    if std_floor <= 0:
        raise ValueError(f"std_floor must be > 0, got {std_floor}")
    draws = []
    for _ in range(n_samples):
        out = stochastic_forward(x)
        if transform is not None:
            out = transform(out)
        draws.append(np.asarray(out, dtype=float).reshape(out.shape[0], -1))
    stacked = np.stack(draws, axis=0)  # (T, n, k)
    mean = stacked.mean(axis=0)
    std = np.maximum(stacked.std(axis=0, ddof=1), std_floor)
    if mean.shape[1] == 1:
        return mean[:, 0], std[:, 0]
    return mean, std


class MCDropoutPredictor:
    """Bind a network + output transform into an ``r(x)`` estimator.

    Example
    -------
    >>> predictor = MCDropoutPredictor(net, transform=sigmoid, n_samples=50)
    >>> mean, std = predictor(x_test)
    """

    def __init__(
        self,
        network: Network,
        transform: Callable[[np.ndarray], np.ndarray] | None = None,
        n_samples: int = 30,
        std_floor: float = 1e-6,
    ) -> None:
        self.network = network
        self.transform = transform
        self.n_samples = int(n_samples)
        self.std_floor = float(std_floor)

    def __call__(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return mc_dropout_statistics(
            self.network.forward_stochastic,
            x,
            n_samples=self.n_samples,
            transform=self.transform,
            std_floor=self.std_floor,
        )

"""Generic supervised losses.

Each loss returns ``(value, grad)`` where ``grad`` has the same shape
as the prediction array, so networks can backpropagate any loss without
knowing its form.  The paper-specific causal losses (DRP's Eq. 2, the
Direct Rank ratio loss, DragonNet's composite) live next to their
models in :mod:`repro.core` / :mod:`repro.causal` because they consume
``(t, y_r, y_c)`` tuples rather than a plain target vector.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import log_sigmoid, sigmoid

__all__ = ["Loss", "MeanSquaredError", "BinaryCrossEntropy"]


class Loss:
    """Base loss interface: ``__call__(pred, target) -> (value, grad)``."""

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        raise NotImplementedError


class MeanSquaredError(Loss):
    """Mean squared error ``mean((pred - target)^2)``, optionally weighted."""

    def __call__(
        self,
        pred: np.ndarray,
        target: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> tuple[float, np.ndarray]:
        pred = np.asarray(pred, dtype=float)
        target = np.asarray(target, dtype=float).reshape(pred.shape)
        diff = pred - target
        if sample_weight is None:
            value = float(np.mean(diff**2))
            grad = 2.0 * diff / diff.size
        else:
            w = np.asarray(sample_weight, dtype=float).reshape(-1, *([1] * (pred.ndim - 1)))
            total = float(np.sum(w)) * (diff.size / diff.shape[0])
            if total <= 0:
                raise ValueError("sample_weight must have positive sum")
            value = float(np.sum(w * diff**2) / total)
            grad = 2.0 * w * diff / total
        return value, grad


class BinaryCrossEntropy(Loss):
    """Binary cross-entropy on *logits* (numerically stable).

    ``loss = mean(softplus(z) - target * z)`` where ``z`` is the logit;
    gradient is ``(sigmoid(z) - target) / n``.
    """

    def __call__(self, logits: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        logits = np.asarray(logits, dtype=float)
        target = np.asarray(target, dtype=float).reshape(logits.shape)
        if np.any((target < 0) | (target > 1)):
            raise ValueError("BinaryCrossEntropy targets must lie in [0, 1]")
        # softplus(z) - t*z == -(t*log_sigmoid(z) + (1-t)*log_sigmoid(-z))
        per_sample = -(target * log_sigmoid(logits) + (1.0 - target) * log_sigmoid(-logits))
        value = float(np.mean(per_sample))
        grad = (sigmoid(logits) - target) / logits.size
        return value, grad

"""Layer primitives with manual backpropagation.

Each layer implements

* ``forward(x, training)`` — compute the output, caching whatever the
  backward pass needs;
* ``backward(grad_out)`` — given dL/d(output), accumulate parameter
  gradients and return dL/d(input);
* ``parameters()`` / ``gradients()`` — flat lists consumed by the
  optimizers in :mod:`repro.nn.optimizers`.

Gradient correctness for every layer is verified by finite differences
in ``tests/test_nn_gradcheck.py``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import activations as act
from repro.nn.initializers import glorot_uniform, he_normal
from repro.utils.rng import as_generator

__all__ = ["Layer", "Dense", "Dropout", "Activation"]

def _identity_grad(x: np.ndarray) -> np.ndarray:
    return np.ones_like(np.asarray(x, dtype=float))


# every entry must hold module-level callables: Activation layers pickle
# by name (fitted networks ship to scoring-shard worker processes)
_ACTIVATIONS = {
    "relu": (act.relu, act.relu_grad),
    "elu": (act.elu, act.elu_grad),
    "tanh": (act.tanh, act.tanh_grad),
    "sigmoid": (act.sigmoid, act.sigmoid_grad),
    "linear": (act.identity, _identity_grad),
}


class Layer:
    """Abstract layer interface."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[np.ndarray]:
        """Trainable parameter arrays (updated in place by optimizers)."""
        return []

    def gradients(self) -> list[np.ndarray]:
        """Gradient arrays aligned with :meth:`parameters`."""
        return []

    def zero_grad(self) -> None:
        for g in self.gradients():
            g[...] = 0.0


class Dense(Layer):
    """Fully connected affine layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Layer dimensions.
    init:
        ``"glorot"`` (default, for tanh/sigmoid nets) or ``"he"`` (for
        ReLU-family nets).
    rng:
        Seed or generator for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        init: str = "glorot",
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if init == "glorot":
            self.weight = glorot_uniform(in_features, out_features, rng)
        elif init == "he":
            self.weight = he_normal(in_features, out_features, rng)
        else:
            raise ValueError(f"Unknown init {init!r}; expected 'glorot' or 'he'")
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected input with {self.in_features} features, got {x.shape[1]}"
            )
        self._x = x if training else None
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() called before a training-mode forward()")
        self.grad_weight += self._x.T @ grad_out
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class Dropout(Layer):
    """Inverted dropout.

    During training, each unit is kept with probability ``1 - rate`` and
    scaled by ``1/(1-rate)``.  During plain inference the layer is the
    identity, but :class:`repro.nn.mc_dropout.MCDropoutPredictor` forces
    ``training=True`` paths to realise Gal & Ghahramani's Bayesian
    approximation — the mechanism rDRP uses for ``r(x)``.
    """

    def __init__(self, rate: float, rng: int | np.random.Generator | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = as_generator(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Activation(Layer):
    """Element-wise activation layer.

    Parameters
    ----------
    name:
        One of ``"relu"``, ``"elu"``, ``"tanh"``, ``"sigmoid"``,
        ``"linear"``.
    """

    def __init__(self, name: str) -> None:
        if name not in _ACTIVATIONS:
            raise ValueError(f"Unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}")
        self.name = name
        self._fn, self._grad_fn = _ACTIVATIONS[name]
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._x = x if training else None
        return self._fn(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() called before a training-mode forward()")
        return grad_out * self._grad_fn(self._x)

    def __getstate__(self) -> dict:
        # the function pair is looked up from the name on load, and the
        # training cache has no business crossing a process boundary
        state = self.__dict__.copy()
        state.pop("_fn", None)
        state.pop("_grad_fn", None)
        state["_x"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._fn, self._grad_fn = _ACTIVATIONS[self.name]

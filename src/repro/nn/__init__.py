"""Neural-network substrate.

A small, from-scratch feed-forward framework built on numpy with manual
backpropagation.  The paper's models (DRP, DR, TARNet, DragonNet,
OffsetNet, SNet) are all shallow MLPs — DRP itself is a single hidden
layer of 10–100 units — so this substrate reproduces exactly the
function class and training dynamics the paper relies on, including
inference-time (Monte Carlo) dropout.

Design notes
------------
* Layers expose ``forward(x, training)`` / ``backward(grad)`` and
  accumulate parameter gradients; optimizers consume
  ``(parameters, gradients)`` pairs.
* Losses return ``(value, grad_wrt_predictions)`` so composite causal
  losses (Eq. 2 of the paper, DragonNet's targeted regularisation, the
  Direct Rank ratio loss) plug in uniformly.
* ``MCDropoutPredictor`` keeps dropout active at inference to produce
  the per-sample std ``r(x)`` used by the rDRP conformal score.
"""

from repro.nn.activations import (
    elu,
    elu_grad,
    identity,
    log_sigmoid,
    relu,
    relu_grad,
    sigmoid,
    sigmoid_grad,
    softmax,
    softplus,
    tanh,
    tanh_grad,
)
from repro.nn.initializers import glorot_uniform, he_normal, zeros_init
from repro.nn.layers import Activation, Dense, Dropout, Layer
from repro.nn.losses import (
    BinaryCrossEntropy,
    Loss,
    MeanSquaredError,
)
from repro.nn.gradcheck import check_network_gradients, numeric_gradient
from repro.nn.mc_dropout import MCDropoutPredictor, mc_dropout_statistics
from repro.nn.network import Network, TrainingHistory, mlp
from repro.nn.optimizers import SGD, Adam, Optimizer

__all__ = [
    "Activation",
    "Adam",
    "BinaryCrossEntropy",
    "Dense",
    "Dropout",
    "Layer",
    "Loss",
    "MCDropoutPredictor",
    "MeanSquaredError",
    "Network",
    "Optimizer",
    "SGD",
    "TrainingHistory",
    "check_network_gradients",
    "mlp",
    "numeric_gradient",
    "elu",
    "elu_grad",
    "glorot_uniform",
    "he_normal",
    "identity",
    "log_sigmoid",
    "mc_dropout_statistics",
    "relu",
    "relu_grad",
    "sigmoid",
    "sigmoid_grad",
    "softmax",
    "softplus",
    "tanh",
    "tanh_grad",
    "zeros_init",
]

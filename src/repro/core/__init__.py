"""The paper's primary contribution: DRP, its baselines, and rDRP.

* :class:`DRPModel` — Direct ROI Prediction (Zhou et al., AAAI 2023),
  the convex-loss neural model rDRP builds on (Eq. 2);
* :class:`DirectRank` — the DR ranking baseline (Du et al., 2019);
* :class:`RoiStarEstimator` / :func:`binary_search_roi_star` —
  Algorithm 2, locating the loss convergence point ``roi*``;
* :class:`ConformalCalibrator` — Eq. 3 scores + Algorithm 3 intervals;
* :mod:`~repro.core.calibration` — the M4-inspired heuristic forms
  5a–5c and their AUCC-based selection;
* :class:`RobustDRP` — Algorithm 4, the full rDRP pipeline;
* :func:`greedy_allocation` — Algorithm 1, solving C-BTAP from a
  predicted-ROI ranking.
"""

from repro.core.allocation import (
    AllocationResult,
    greedy_allocation,
    greedy_allocation_by_roi,
    spend_down_prefix,
)
from repro.core.calibration import (
    CALIBRATION_FORMS,
    HeuristicCalibration,
    apply_form,
    combine_point_and_std,
)
from repro.core.conformal import (
    ConformalCalibrator,
    conformal_quantile,
    conformal_score,
    empirical_coverage,
    prediction_interval,
)
from repro.core.direct_rank import DirectRank, dr_loss
from repro.core.drp import DRPModel, drp_loss, drp_loss_gradient, drp_pooled_derivative
from repro.core.extensions import IsotonicRoiRecalibration, pav_isotonic
from repro.core.multi_treatment import DivideAndConquerRDRP, MultiAllocationResult
from repro.core.rdrp import RobustDRP
from repro.core.roi_star import RoiStarEstimator, binary_search_roi_star, bisect_monotone

__all__ = [
    "AllocationResult",
    "bisect_monotone",
    "CALIBRATION_FORMS",
    "ConformalCalibrator",
    "DRPModel",
    "DirectRank",
    "DivideAndConquerRDRP",
    "MultiAllocationResult",
    "HeuristicCalibration",
    "IsotonicRoiRecalibration",
    "pav_isotonic",
    "RobustDRP",
    "RoiStarEstimator",
    "apply_form",
    "binary_search_roi_star",
    "combine_point_and_std",
    "conformal_quantile",
    "conformal_score",
    "dr_loss",
    "drp_loss",
    "drp_loss_gradient",
    "drp_pooled_derivative",
    "empirical_coverage",
    "greedy_allocation",
    "greedy_allocation_by_roi",
    "prediction_interval",
    "spend_down_prefix",
]

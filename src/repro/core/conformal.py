"""Conformal prediction for ROI intervals (Eq. 3, Algorithm 3, Eq. 4).

Split conformal prediction with the "Conformalizing Scalar Uncertainty
Estimates" score of Angelopoulos & Bates (2021):

    score(x, roi*) = |roi* − roî| / r(x)

where ``roî`` is the DRP point estimate and ``r(x)`` the MC-dropout
std.  The ``⌈(1−α)(n+1)⌉/n`` empirical quantile ``q̂`` of the
calibration scores yields the interval

    C(x) = [roî − r(x)·q̂,  roî + r(x)·q̂]

with the finite-sample marginal coverage guarantee (Eq. 4)

    P(roi* ∈ C(x_test)) ≥ 1 − α

whenever calibration and test points are exchangeable (Assumption 6 —
arranged in practice by running a 1–2 day RCT right before deployment).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_consistent_length

__all__ = [
    "conformal_score",
    "conformal_quantile",
    "prediction_interval",
    "empirical_coverage",
    "ConformalCalibrator",
]


def conformal_score(
    roi_star: np.ndarray, roi_hat: np.ndarray, r: np.ndarray
) -> np.ndarray:
    """Eq. 3: ``|roi* − roî| / r(x)`` elementwise.

    ``r`` must be strictly positive (MC-dropout stds are floored
    upstream for exactly this reason).
    """
    roi_star = check_1d(roi_star, "roi_star")
    roi_hat = check_1d(roi_hat, "roi_hat")
    r = check_1d(r, "r")
    check_consistent_length(roi_star, roi_hat, r, names=("roi_star", "roi_hat", "r"))
    if np.any(r <= 0):
        raise ValueError("r(x) must be strictly positive; floor the MC-dropout std")
    return np.abs(roi_star - roi_hat) / r


def conformal_quantile(scores: np.ndarray, alpha: float) -> float:
    """Algorithm 3 line 5: the ``⌈(1−α)(n+1)⌉/n`` empirical quantile.

    The finite-sample correction ``(n+1)`` is what buys the Eq. 4
    guarantee.  When ``⌈(1−α)(n+1)⌉ > n`` (calibration set too small
    for the requested confidence) the quantile is the max score.
    """
    scores = check_1d(scores, "scores")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    n = scores.shape[0]
    rank = int(np.ceil((1.0 - alpha) * (n + 1)))
    if rank > n:
        return float(np.max(scores))
    ordered = np.sort(scores)
    return float(ordered[rank - 1])


def prediction_interval(
    roi_hat: np.ndarray,
    r: np.ndarray,
    q_hat: float,
    clip: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 3 line 6: ``C(x) = [roî − r·q̂, roî + r·q̂]``.

    ``clip`` intersects the interval with ROI's scope (Assumption 3
    bounds ROI to (0, 1)); since the target ``roi*`` always lies inside
    that scope, clipping never loses coverage.  Pass ``None`` for the
    raw unbounded interval.
    """
    roi_hat = check_1d(roi_hat, "roi_hat")
    r = check_1d(r, "r")
    check_consistent_length(roi_hat, r, names=("roi_hat", "r"))
    if q_hat < 0:
        raise ValueError(f"q_hat must be >= 0, got {q_hat}")
    half = r * q_hat
    lower = roi_hat - half
    upper = roi_hat + half
    if clip is not None:
        low, high = clip
        if not low < high:
            raise ValueError(f"clip bounds must satisfy low < high, got {clip}")
        lower = np.clip(lower, low, high)
        upper = np.clip(upper, low, high)
    return lower, upper


def empirical_coverage(
    target: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> float:
    """Fraction of ``target`` values inside ``[lower, upper]`` (Eq. 4 LHS)."""
    target = check_1d(target, "target")
    lower = check_1d(lower, "lower")
    upper = check_1d(upper, "upper")
    check_consistent_length(target, lower, upper, names=("target", "lower", "upper"))
    return float(np.mean((target >= lower) & (target <= upper)))


class ConformalCalibrator:
    """Stateful wrapper: calibrate once, produce intervals anywhere.

    Parameters
    ----------
    alpha:
        User-chosen error rate (Algorithm 3 line 4); the interval
        covers ``roi*`` with probability at least ``1 − α``.
    """

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = float(alpha)
        self.q_hat_: float | None = None
        self.scores_: np.ndarray | None = None

    def calibrate(
        self, roi_star: np.ndarray, roi_hat: np.ndarray, r: np.ndarray
    ) -> "ConformalCalibrator":
        """Compute calibration scores and the conformal quantile ``q̂``."""
        self.scores_ = conformal_score(roi_star, roi_hat, r)
        self.q_hat_ = conformal_quantile(self.scores_, self.alpha)
        return self

    def interval(
        self,
        roi_hat: np.ndarray,
        r: np.ndarray,
        clip: tuple[float, float] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Prediction interval ``C(x)`` for new points.

        ``clip`` optionally intersects intervals with a known target
        scope (rDRP uses (0, 1), ROI's Assumption-3 range).
        """
        if self.q_hat_ is None:
            raise RuntimeError("ConformalCalibrator is not calibrated; call calibrate() first")
        return prediction_interval(roi_hat, r, self.q_hat_, clip=clip)

    @property
    def q_hat(self) -> float:
        if self.q_hat_ is None:
            raise RuntimeError("ConformalCalibrator is not calibrated; call calibrate() first")
        return self.q_hat_

"""Algorithm 1: greedy solver for C-BTAP (Definition 3 / Eq. 1).

The Cost-aware Binary Treatment Assignment Problem is a 0/1 knapsack:
maximise total incremental revenue subject to total incremental cost
≤ B.  Sorting by ROI = τ_r/τ_c and allocating greedily until the
budget is exhausted achieves the classical approximation ratio
``ρ ≥ 1 − max_i τ_r(x_i)/OPT``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_1d, check_consistent_length

__all__ = [
    "AllocationResult",
    "greedy_allocation",
    "greedy_allocation_by_roi",
    "spend_down_prefix",
]


def spend_down_prefix(
    costs_in_order: np.ndarray,
    budget: float,
    *,
    stop_before_crossing: bool = False,
) -> tuple[int, np.ndarray]:
    """Length of the affordable prefix of a cost sequence, via one cumsum.

    The single spend-down primitive shared by the planning solver
    (:func:`greedy_allocation`) and the realisation path
    (:meth:`repro.ab.platform.Platform.realize_arm`), replacing their
    per-call scans with ``cumsum`` + ``searchsorted``.

    Parameters
    ----------
    costs_in_order:
        Non-negative costs in the order they would be incurred.
    budget:
        Budget limit B (>= 0).
    stop_before_crossing:
        * ``False`` (planning): the longest prefix whose cumulative
          cost is ``<= budget`` — costs are known up front, so an item
          that exactly exhausts B is still affordable.
        * ``True`` (realisation): stop *before* the item whose cost
          would make cumulative spend reach or cross B, so realised
          spend stays strictly below any positive budget and
          ``budget=0`` admits nobody.  This is the platform semantics:
          a cost is only discovered by incurring it, and the platform
          never authorises a spend it cannot cover.

    Returns
    -------
    (k, cumulative):
        ``k`` — prefix length; ``cumulative`` — the full running-cost
        array (``cumulative[k - 1]`` is the prefix spend when k > 0).
    """
    costs_in_order = np.asarray(costs_in_order).ravel()
    # dtype=float folds the bool→float conversion of Bernoulli cost
    # draws into the cumsum itself (no intermediate copy)
    cumulative = np.cumsum(costs_in_order, dtype=np.float64)
    side = "left" if stop_before_crossing else "right"
    k = int(np.searchsorted(cumulative, budget, side=side))
    return k, cumulative


@dataclass
class AllocationResult:
    """Outcome of a greedy C-BTAP allocation.

    Attributes
    ----------
    selected:
        Boolean mask over individuals (True = receives the treatment).
    total_cost:
        Sum of predicted incremental cost over the selected set.
    total_reward:
        Sum of predicted incremental reward over the selected set
        (NaN when rewards were not supplied).
    n_selected:
        Number of treated individuals.
    path:
        Which solver branch produced the result: ``"fast_path"`` (one
        vectorised cumulative sum) or ``"scan_fallback"`` (the per-item
        skip-and-continue scan was needed).
    """

    selected: np.ndarray
    total_cost: float
    total_reward: float
    n_selected: int
    path: str = "fast_path"


def greedy_allocation(
    roi_scores: np.ndarray,
    costs: np.ndarray,
    budget: float,
    rewards: np.ndarray | None = None,
) -> AllocationResult:
    """Algorithm 1: sort by score descending, allocate until budget B.

    Parameters
    ----------
    roi_scores:
        Predicted ROI (or any ranking score) per individual.
    costs:
        Predicted incremental cost ``τ̂_c(x_i)`` per individual; must
        be positive (Assumption 4).
    budget:
        Budget limit B (>= 0).
    rewards:
        Optional predicted incremental revenue ``τ̂_r(x_i)``; only used
        for the reported ``total_reward``.

    Notes
    -----
    An individual whose cost does not fit in the *remaining* budget is
    skipped and the scan continues — the standard greedy knapsack
    refinement, which never does worse than stopping outright.

    The common case — the budget-fitting prefix of the sorted order
    leaves too little for *any* later individual — is resolved with one
    vectorised cumulative sum; the per-item scan only runs when some
    cheaper individual further down could still be admitted.
    """
    roi_scores = check_1d(roi_scores, "roi_scores")
    costs = check_1d(costs, "costs")
    check_consistent_length(roi_scores, costs, names=("roi_scores", "costs"))
    if np.any(costs <= 0):
        raise ValueError("costs must be strictly positive (Assumption 4)")
    if not budget >= 0:  # rejects NaN too
        raise ValueError(f"budget must be >= 0, got {budget}")
    if rewards is not None:
        rewards = check_1d(rewards, "rewards")
        check_consistent_length(roi_scores, rewards, names=("roi_scores", "rewards"))

    n = roi_scores.shape[0]
    order = np.argsort(-roi_scores, kind="stable")
    selected = np.zeros(n, dtype=bool)
    costs_in_order = costs[order]
    # number of leading individuals whose running total stays within B
    k, cumulative = spend_down_prefix(costs_in_order, budget)
    selected[order[:k]] = True
    # accumulated-spend form (spent + c <= B), matching the cumsum's
    # sequential additions bit-for-bit — a subtractive `remaining`
    # accumulates different float rounding and can flip decisions at
    # exact-boundary budgets
    spent = float(cumulative[k - 1]) if k else 0.0
    if k == n or float(np.min(costs_in_order[k:])) > budget - spent:
        path = "fast_path"
    else:
        path = "scan_fallback"
        for i in order[k:]:
            c = float(costs[i])
            if spent + c <= budget:
                selected[i] = True
                spent += c
    total_cost = float(np.sum(costs[selected]))
    total_reward = float(np.sum(rewards[selected])) if rewards is not None else float("nan")
    return AllocationResult(
        selected=selected,
        total_cost=total_cost,
        total_reward=total_reward,
        n_selected=int(np.sum(selected)),
        path=path,
    )


def greedy_allocation_by_roi(
    tau_r: np.ndarray, tau_c: np.ndarray, budget: float
) -> AllocationResult:
    """Algorithm 1 with the ROI computed from uplift predictions.

    Convenience wrapper for the TPM pipeline: scores are
    ``τ̂_r / τ̂_c`` and costs are ``τ̂_c``.
    """
    tau_r = check_1d(tau_r, "tau_r")
    tau_c = check_1d(tau_c, "tau_c")
    check_consistent_length(tau_r, tau_c, names=("tau_r", "tau_c"))
    if np.any(tau_c <= 0):
        raise ValueError("tau_c must be strictly positive (Assumption 4)")
    return greedy_allocation(tau_r / tau_c, tau_c, budget, rewards=tau_r)

"""Divide-and-Conquer rDRP for multiple treatments (paper §VI).

The paper's rDRP handles binary treatments only, but its Discussion
section prescribes the extension: "Divide and Conquer method can be
adopted for multiple treatment, which decomposes the multiple treatment
problem into several binary treatment problems.  Then each binary
treatment problem can use the rDRP method."

:class:`DivideAndConquerRDRP` implements exactly that: one
:class:`~repro.core.rdrp.RobustDRP` per treatment level, each trained
and calibrated on the control-vs-level slice, plus a greedy allocator
over (user, level) pairs that assigns **at most one level per user**
under a global budget — the multiple-treatment generalisation of
Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rdrp import RobustDRP
from repro.data.multi import MultiTreatmentRCT
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_2d

__all__ = ["DivideAndConquerRDRP", "MultiAllocationResult"]


@dataclass
class MultiAllocationResult:
    """Outcome of a multi-treatment greedy allocation.

    Attributes
    ----------
    assignment:
        Per-user assigned level ``(n,)``; 0 = untreated.
    total_cost:
        Sum of the predicted costs of the assigned (user, level) pairs.
    n_treated:
        Number of users receiving any treatment.
    """

    assignment: np.ndarray
    total_cost: float
    n_treated: int


class DivideAndConquerRDRP:
    """One rDRP per treatment level, sharing the §VI decomposition.

    Parameters
    ----------
    n_levels:
        Number of positive treatment levels.
    random_state:
        Seed/generator; each level's model gets an independent stream.
    rdrp_params:
        Keyword arguments forwarded to every :class:`RobustDRP`.
    """

    def __init__(
        self,
        n_levels: int,
        random_state: int | np.random.Generator | None = None,
        **rdrp_params,
    ) -> None:
        if n_levels < 1:
            raise ValueError(f"n_levels must be >= 1, got {n_levels}")
        self.n_levels = int(n_levels)
        rngs = spawn_generators(as_generator(random_state), self.n_levels)
        self.models: list[RobustDRP] = [
            RobustDRP(random_state=rng, **rdrp_params) for rng in rngs
        ]
        self._fitted = False
        self._calibrated = False

    # ------------------------------------------------------------------
    def fit(self, train: MultiTreatmentRCT) -> "DivideAndConquerRDRP":
        """Train each level's DRP on its control-vs-level binary slice."""
        self._check_levels(train)
        for level, model in enumerate(self.models, start=1):
            view = train.binary_view(level)
            model.fit(view.x, view.t, view.y_r, view.y_c)
        self._fitted = True
        return self

    def calibrate(self, calibration: MultiTreatmentRCT) -> "DivideAndConquerRDRP":
        """Run Algorithm 4's calibration phase per level."""
        if not self._fitted:
            raise RuntimeError("DivideAndConquerRDRP is not fitted; call fit() first")
        self._check_levels(calibration)
        for level, model in enumerate(self.models, start=1):
            view = calibration.binary_view(level)
            model.calibrate(view.x, view.t, view.y_r, view.y_c)
        self._calibrated = True
        return self

    def predict_roi(self, x) -> np.ndarray:
        """Calibrated per-level ROI matrix, shape ``(n, n_levels)``."""
        if not self._calibrated:
            raise RuntimeError(
                "DivideAndConquerRDRP is not calibrated; call calibrate() first"
            )
        x = check_2d(x)
        return np.column_stack([model.predict_roi(x) for model in self.models])

    # ------------------------------------------------------------------
    def allocate(
        self,
        x,
        costs: np.ndarray,
        budget: float,
    ) -> MultiAllocationResult:
        """Greedy C-BTAP over (user, level) pairs, one level per user.

        Parameters
        ----------
        x:
            Deployment features ``(n, d)``.
        costs:
            Predicted/known incremental cost per (user, level), shape
            ``(n, n_levels)``, all positive (Assumption 4 per level).
        budget:
            Global incremental-cost budget B.

        Notes
        -----
        Pairs are sorted by predicted ROI descending; a pair is taken
        if its user is still unassigned and its cost fits the remaining
        budget — the natural generalisation of Algorithm 1 (and, like
        it, a greedy approximation to the underlying knapsack-with-
        assignment problem).
        """
        roi = self.predict_roi(x)
        costs = np.asarray(costs, dtype=float)
        if costs.shape != roi.shape:
            raise ValueError(
                f"costs must have shape {roi.shape} (one column per level), got {costs.shape}"
            )
        if np.any(costs <= 0):
            raise ValueError("costs must be strictly positive (Assumption 4)")
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")

        n, k = roi.shape
        order = np.argsort(-roi, axis=None, kind="stable")
        assignment = np.zeros(n, dtype=np.int64)
        remaining = float(budget)
        total = 0.0
        for flat in order:
            user, level = divmod(int(flat), k)
            if assignment[user] != 0:
                continue
            cost = float(costs[user, level])
            if cost <= remaining:
                assignment[user] = level + 1
                remaining -= cost
                total += cost
        return MultiAllocationResult(
            assignment=assignment,
            total_cost=total,
            n_treated=int(np.sum(assignment > 0)),
        )

    # ------------------------------------------------------------------
    def _check_levels(self, data: MultiTreatmentRCT) -> None:
        if data.n_levels != self.n_levels:
            raise ValueError(
                f"Dataset has {data.n_levels} levels but the model was built "
                f"for {self.n_levels}"
            )

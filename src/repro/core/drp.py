"""Direct ROI Prediction (DRP) — Zhou et al., AAAI 2023, Eq. 2 here.

DRP trains a small MLP ``ŝ = ℏ(x)`` with the convex loss

    L(s) = −[ (1/N₁) Σ_{t=1} (y_r ln(roî/(1−roî)) + y_c ln(1−roî))
            − (1/N₀) Σ_{t=0} (y_r ln(roî/(1−roî)) + y_c ln(1−roî)) ],
    roî = σ(ŝ).

Using ``ln(roî/(1−roî)) = ŝ`` and ``ln(1−roî) = −softplus(ŝ)``, the
per-sample contribution is ``g(s) = y_r·s − y_c·softplus(s)`` and the
gradient is ``∂L/∂s_i = −w_i (y_{r,i} − y_{c,i} σ(s_i))`` with
``w_i = +1/N₁`` (treated) or ``−1/N₀`` (control).  Setting the pooled
population derivative to zero yields ``σ(s*) = τ_r/τ_c`` — the
unbiasedness at convergence the paper leans on, and the property
Algorithm 2's binary search exploits.
"""

from __future__ import annotations

import numpy as np

from repro.causal.base import TrainableModel

from repro.nn.activations import sigmoid, softplus
from repro.nn.network import Network, TrainingHistory, mlp
from repro.nn.optimizers import Adam
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_binary,
    check_consistent_length,
)

__all__ = ["DRPModel", "drp_loss", "drp_loss_gradient", "drp_pooled_derivative"]


def _group_weights(t: np.ndarray) -> np.ndarray:
    """Per-sample weights ``+1/N₁`` (treated) / ``−1/N₀`` (control)."""
    n1 = max(int(np.sum(t == 1)), 1)
    n0 = max(int(np.sum(t == 0)), 1)
    return np.where(t == 1, 1.0 / n1, -1.0 / n0)


def drp_loss(s: np.ndarray, t: np.ndarray, y_r: np.ndarray, y_c: np.ndarray) -> float:
    """Eq. 2 evaluated at per-sample scores ``s`` (numerically stable)."""
    s = np.asarray(s, dtype=float).ravel()
    w = _group_weights(np.asarray(t).ravel())
    contrib = np.asarray(y_r, dtype=float) * s - np.asarray(y_c, dtype=float) * softplus(s)
    return float(-np.sum(w * contrib))


def drp_loss_gradient(
    s: np.ndarray, t: np.ndarray, y_r: np.ndarray, y_c: np.ndarray
) -> np.ndarray:
    """``∂L/∂s_i = −w_i (y_{r,i} − y_{c,i} σ(s_i))``."""
    s = np.asarray(s, dtype=float).ravel()
    w = _group_weights(np.asarray(t).ravel())
    return -w * (np.asarray(y_r, dtype=float) - np.asarray(y_c, dtype=float) * sigmoid(s))


def drp_pooled_derivative(
    roi: float, t: np.ndarray, y_r: np.ndarray, y_c: np.ndarray
) -> float:
    """Derivative of the pooled loss at a shared score ``s = σ⁻¹(roi)``.

    Evaluates ``L'(s) = −τ̂_r + τ̂_c · roi`` where ``τ̂_r, τ̂_c`` are the
    difference-in-means uplift estimates on the given sample.  This is
    the quantity Algorithm 2 bisects: it is monotone increasing in
    ``roi`` whenever ``τ̂_c > 0`` (Assumption 4) and crosses zero at
    ``roi = τ̂_r / τ̂_c``.
    """
    t = np.asarray(t).ravel()
    y_r = np.asarray(y_r, dtype=float).ravel()
    y_c = np.asarray(y_c, dtype=float).ravel()
    treated = t == 1
    if not np.any(treated) or not np.any(~treated):
        raise ValueError("Both treated and control samples are required")
    tau_r = float(y_r[treated].mean() - y_r[~treated].mean())
    tau_c = float(y_c[treated].mean() - y_c[~treated].mean())
    return -tau_r + tau_c * float(roi)


def _drp_batch_loss(pred: np.ndarray, batch: dict) -> tuple[float, np.ndarray]:
    """Adapter plugging Eq. 2 into :meth:`repro.nn.network.Network.fit`."""
    s = pred[:, 0]
    t = batch["t"]
    y_r = batch["y_r"]
    y_c = batch["y_c"]
    value = drp_loss(s, t, y_r, y_c)
    grad = drp_loss_gradient(s, t, y_r, y_c).reshape(-1, 1)
    return value, grad


class DRPModel(TrainableModel):
    """Direct ROI Prediction model.

    A one-hidden-layer MLP (10–100 units in the paper; default 64)
    trained with the convex Eq. 2 loss.  Dropout is placed after the
    hidden activation; it is inactive for point prediction and only
    sampled by :meth:`predict_roi_mc` (MC dropout, §IV-C2).

    Parameters
    ----------
    hidden:
        Hidden-layer width.
    dropout:
        Dropout rate used by MC-dropout inference.
    epochs, batch_size, learning_rate, weight_decay, patience:
        Training controls; ``patience`` enables early stopping with
        best-weights restoration.
    val_fraction:
        Fraction of the training data held out to monitor the Eq. 2
        loss for early stopping.  This matters for DRP specifically:
        the *per-sample* loss is linear in ``s`` and unbounded below
        (like logistic loss on separable data), so the training loss
        decreases forever while the network saturates its scores on
        outcome noise; only a held-out loss reveals the generalising
        convergence point.  Set to 0 to monitor the training loss.
    n_restarts:
        Number of independently initialised networks trained; point
        predictions average the networks' scores and MC-dropout passes
        pool across them.  Shallow nets on weak uplift signal
        occasionally converge to a bad basin (§IV-B2's "initial
        weights" sensitivity); a small restart ensemble removes that
        failure mode without changing the architecture.
    random_state:
        Seed/generator for weights, dropout and shuffling.
    """

    def __init__(
        self,
        hidden: int = 64,
        dropout: float = 0.1,
        epochs: int = 80,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-4,
        patience: int | None = 10,
        val_fraction: float = 0.2,
        n_restarts: int = 3,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if not 10 <= hidden <= 512:
            raise ValueError(f"hidden should be a small MLP width (10..512), got {hidden}")
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        if not 0.0 <= val_fraction < 0.5:
            raise ValueError(f"val_fraction must be in [0, 0.5), got {val_fraction}")
        if n_restarts < 1:
            raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
        self.n_restarts = int(n_restarts)
        self.hidden = int(hidden)
        self.dropout = float(dropout)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.patience = patience
        self.val_fraction = float(val_fraction)
        self.random_state = random_state
        self.network_: Network | None = None
        self.networks_: list[Network] = []
        self.history_: TrainingHistory | None = None
        self.histories_: list[TrainingHistory] = []
        self._n_features: int | None = None

    # ------------------------------------------------------------------
    def fit(self, x, t, y_r, y_c) -> "DRPModel":
        """Train on an RCT sample ``(x_i, t_i, y_r_i, y_c_i)``."""
        x = check_2d(x)
        t = check_binary(t)
        y_r = check_1d(y_r, "y_r")
        y_c = check_1d(y_c, "y_c")
        check_consistent_length(x, t, y_r, y_c, names=("X", "t", "y_r", "y_c"))
        if np.all(t == 1) or np.all(t == 0):
            raise ValueError("Both treated and control samples are required to fit DRP")
        self._n_features = x.shape[1]
        rng = as_generator(self.random_state)

        validation_data = None
        if self.val_fraction > 0 and x.shape[0] >= 50:
            perm = rng.permutation(x.shape[0])
            n_val = max(10, int(round(self.val_fraction * x.shape[0])))
            val_idx, fit_idx = perm[:n_val], perm[n_val:]
            # the validation half must contain both arms for Eq. 2
            if len(set(t[val_idx])) == 2 and len(set(t[fit_idx])) == 2:
                validation_data = (
                    x[val_idx],
                    {"t": t[val_idx], "y_r": y_r[val_idx], "y_c": y_c[val_idx]},
                )
                x, t, y_r, y_c = x[fit_idx], t[fit_idx], y_r[fit_idx], y_c[fit_idx]

        self.networks_ = []
        self.histories_ = []
        for _ in range(self.n_restarts):
            network = mlp(
                x.shape[1],
                [self.hidden],
                output_dim=1,
                activation="elu",
                dropout=self.dropout,
                rng=rng,
            )
            history = network.fit(
                x,
                {"t": t, "y_r": y_r, "y_c": y_c},
                loss=_drp_batch_loss,
                optimizer=Adam(self.learning_rate, weight_decay=self.weight_decay),
                epochs=self.epochs,
                batch_size=self.batch_size,
                rng=rng,
                validation_data=validation_data,
                patience=self.patience,
            )
            self.networks_.append(network)
            self.histories_.append(history)
        self.network_ = self.networks_[0]
        self.history_ = self.histories_[0]
        return self

    def _checked(self, x) -> np.ndarray:
        if not self.networks_:
            raise RuntimeError("DRPModel is not fitted; call fit() first")
        x = check_2d(x)
        if x.shape[1] != self._n_features:
            raise ValueError(
                f"X has {x.shape[1]} features but the model was fitted with {self._n_features}"
            )
        return x

    def predict_score(self, x) -> np.ndarray:
        """Raw scores ``ŝ = ℏ(x)`` (restart-ensemble mean)."""
        x = self._checked(x)
        score = np.zeros(x.shape[0])
        for network in self.networks_:
            score += network.predict(x)[:, 0]
        return score / len(self.networks_)

    def predict_roi(self, x) -> np.ndarray:
        """Point estimate ``roî = σ(ŝ) ∈ (0, 1)`` (Definition 2 scope)."""
        return sigmoid(self.predict_score(x))

    def predict_roi_mc(
        self, x, n_samples: int = 30, std_floor: float = 1e-4
    ) -> tuple[np.ndarray, np.ndarray]:
        """MC-dropout mean and std of the ROI estimate (§IV-C2).

        Runs ``n_samples`` stochastic passes distributed round-robin
        over the restart ensemble and returns ``(mean, r(x))``; ``r(x)``
        is floored so Eq. 3's division stays finite.
        """
        x = self._checked(x)
        if n_samples < 2:
            raise ValueError(f"n_samples must be >= 2, got {n_samples}")
        draws = []
        for i in range(n_samples):
            network = self.networks_[i % len(self.networks_)]
            draws.append(sigmoid(network.forward_stochastic(x)[:, 0]))
        stacked = np.stack(draws, axis=0)
        mean = stacked.mean(axis=0)
        std = np.maximum(stacked.std(axis=0, ddof=1), std_floor)
        return mean, std

"""Extensions beyond the paper (its §VII future-work list).

The paper closes asking for "a more reasonable and rigorous approach
than the current heuristic methods" for calibrating point estimates
with interval information.  This module implements one such approach:

:class:`IsotonicRoiRecalibration` — monotone (isotonic) regression of
the Algorithm-2 surrogate labels ``roi*`` onto the DRP ranking.  The
calibration set is sliced into quantile bins of ``roî``; each bin's
pooled ``roi*`` (the bin's loss-convergence ROI) becomes a target; the
pool-adjacent-violators algorithm enforces monotonicity so the
recalibrated scores preserve DRP's ranking *between* bins while
correcting its scale — and, when the binned targets genuinely invert
the model's ordering, the PAV merge flattens exactly the segments the
model got wrong.

Unlike forms 5a–5c this transform never consults the MC-dropout std,
so it is useful precisely where the std is uninformative.
"""

from __future__ import annotations

import numpy as np

from repro.core.roi_star import binary_search_roi_star
from repro.utils.validation import (
    check_1d,
    check_binary,
    check_consistent_length,
)

__all__ = ["pav_isotonic", "IsotonicRoiRecalibration"]


def pav_isotonic(values: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Pool-adjacent-violators: the L2 monotone (non-decreasing) fit.

    Parameters
    ----------
    values:
        Target sequence in the order of the ranking.
    weights:
        Optional positive weights (bin sizes).

    Returns
    -------
    numpy.ndarray
        The isotonic sequence minimising the weighted squared error.
    """
    values = check_1d(values, "values")
    n = values.shape[0]
    if weights is None:
        weights = np.ones(n)
    else:
        weights = check_1d(weights, "weights")
        check_consistent_length(values, weights, names=("values", "weights"))
        if np.any(weights <= 0):
            raise ValueError("weights must be strictly positive")

    # classic stack-based PAV: each block holds (mean, weight, count)
    means: list[float] = []
    block_weights: list[float] = []
    counts: list[int] = []
    for value, weight in zip(values, weights):
        means.append(float(value))
        block_weights.append(float(weight))
        counts.append(1)
        while len(means) > 1 and means[-2] > means[-1]:
            w = block_weights[-2] + block_weights[-1]
            m = (means[-2] * block_weights[-2] + means[-1] * block_weights[-1]) / w
            c = counts[-2] + counts[-1]
            means.pop()
            block_weights.pop()
            counts.pop()
            means[-1] = m
            block_weights[-1] = w
            counts[-1] = c
    out = np.empty(n)
    pos = 0
    for mean, count in zip(means, counts):
        out[pos : pos + count] = mean
        pos += count
    return out


class IsotonicRoiRecalibration:
    """Recalibrate DRP point estimates onto binned ``roi*`` targets.

    Parameters
    ----------
    n_bins:
        Number of quantile bins over the calibration ranking.
    min_arm_per_bin:
        Minimum treated *and* control samples a bin needs for its own
        Algorithm-2 search; thinner bins are merged into neighbours.
    eps:
        Bisection tolerance passed to the binary search.
    """

    def __init__(
        self, n_bins: int = 15, min_arm_per_bin: int = 10, eps: float = 1e-3
    ) -> None:
        if n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {n_bins}")
        if min_arm_per_bin < 1:
            raise ValueError(f"min_arm_per_bin must be >= 1, got {min_arm_per_bin}")
        self.n_bins = int(n_bins)
        self.min_arm_per_bin = int(min_arm_per_bin)
        self.eps = float(eps)
        self.bin_centers_: np.ndarray | None = None
        self.bin_values_: np.ndarray | None = None

    def fit(self, roi_hat, t, y_r, y_c) -> "IsotonicRoiRecalibration":
        """Learn the monotone map from calibration-set predictions.

        Bins are quantiles of ``roi_hat``; each usable bin's target is
        its pooled convergence-point ROI (Algorithm 2); PAV enforces
        monotonicity across bins.
        """
        roi_hat = check_1d(roi_hat, "roi_hat")
        t = check_binary(t)
        y_r = check_1d(y_r, "y_r")
        y_c = check_1d(y_c, "y_c")
        check_consistent_length(roi_hat, t, y_r, y_c, names=("roi_hat", "t", "y_r", "y_c"))

        n = roi_hat.shape[0]
        n_bins = min(self.n_bins, max(2, n // max(2 * self.min_arm_per_bin, 1)))
        order = np.argsort(roi_hat, kind="stable")
        bin_of = np.empty(n, dtype=np.int64)
        bin_of[order] = (np.arange(n) * n_bins) // n

        centers = []
        targets = []
        sizes = []
        for b in range(n_bins):
            members = bin_of == b
            tb = t[members]
            n1 = int(np.sum(tb == 1))
            n0 = int(np.sum(tb == 0))
            if n1 < self.min_arm_per_bin or n0 < self.min_arm_per_bin:
                continue
            tau_c = float(y_c[members][tb == 1].mean() - y_c[members][tb == 0].mean())
            if tau_c <= 0:
                continue  # Assumption 4 violated in-bin: skip
            star = binary_search_roi_star(tb, y_r[members], y_c[members], eps=self.eps)
            centers.append(float(np.median(roi_hat[members])))
            targets.append(star)
            sizes.append(int(members.sum()))
        if len(centers) < 2:
            raise ValueError(
                "Too few usable calibration bins; enlarge the calibration set "
                "or lower min_arm_per_bin"
            )
        centers_arr = np.asarray(centers)
        order_c = np.argsort(centers_arr)
        self.bin_centers_ = centers_arr[order_c]
        self.bin_values_ = pav_isotonic(
            np.asarray(targets)[order_c], np.asarray(sizes, dtype=float)[order_c]
        )
        return self

    def transform(self, roi_hat) -> np.ndarray:
        """Map new predictions through the learned monotone curve.

        Piecewise-linear interpolation between bin centres; inputs
        outside the calibration range take the end values (flat
        extrapolation keeps the output inside the observed ``roi*``
        range).
        """
        if self.bin_centers_ is None or self.bin_values_ is None:
            raise RuntimeError("IsotonicRoiRecalibration is not fitted; call fit() first")
        roi_hat = check_1d(roi_hat, "roi_hat")
        return np.interp(roi_hat, self.bin_centers_, self.bin_values_)

    def fit_transform(self, roi_hat, t, y_r, y_c) -> np.ndarray:
        """Convenience: fit on the data and transform it."""
        return self.fit(roi_hat, t, y_r, y_c).transform(roi_hat)

"""Heuristic point-estimate calibration with interval information (§IV-C4).

Inspired by the M4 competition's interval-aggregation methods, the
paper proposes three candidate calibration forms combining the point
estimate ``roî``, the MC-dropout std ``r(x)`` and the conformal
quantile ``q̂``:

    (5a)  froi = roî · (roî + r(x)·q̂)
    (5b)  froi = roî / (r(x)·q̂)
    (5c)  froi = roî + r(x)·q̂

Algorithm 4 line 8 selects the form by validating on the calibration
set; we use the calibration-set AUCC as the selection criterion and —
following the robustness intent — keep the raw point estimate in the
candidate pool, so the selected calibration can never rank worse than
plain DRP *on the calibration data* (ties in easy settings, gains in
hard ones — exactly the pattern of the paper's Table I).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.metrics.aucc import aucc
from repro.utils.rng import as_generator
from repro.utils.validation import check_1d, check_binary, check_consistent_length

__all__ = [
    "CALIBRATION_FORMS",
    "apply_form",
    "combine_point_and_std",
    "HeuristicCalibration",
]


def _form_5a(roi_hat: np.ndarray, r: np.ndarray, q_hat: float) -> np.ndarray:
    return roi_hat * (roi_hat + r * q_hat)


def _form_5b(roi_hat: np.ndarray, r: np.ndarray, q_hat: float) -> np.ndarray:
    denom = np.maximum(r * q_hat, 1e-12)
    return roi_hat / denom


def _form_5c(roi_hat: np.ndarray, r: np.ndarray, q_hat: float) -> np.ndarray:
    return roi_hat + r * q_hat


def _form_identity(roi_hat: np.ndarray, r: np.ndarray, q_hat: float) -> np.ndarray:
    return roi_hat.copy()


CALIBRATION_FORMS: dict[str, Callable[[np.ndarray, np.ndarray, float], np.ndarray]] = {
    "5a": _form_5a,
    "5b": _form_5b,
    "5c": _form_5c,
    "identity": _form_identity,
}


def apply_form(name: str, roi_hat: np.ndarray, r: np.ndarray, q_hat: float) -> np.ndarray:
    """Apply calibration form ``name`` (``"5a"``/``"5b"``/``"5c"``/``"identity"``)."""
    if name not in CALIBRATION_FORMS:
        raise ValueError(f"Unknown calibration form {name!r}; choose from {sorted(CALIBRATION_FORMS)}")
    roi_hat = check_1d(roi_hat, "roi_hat")
    r = check_1d(r, "r")
    check_consistent_length(roi_hat, r, names=("roi_hat", "r"))
    if q_hat < 0:
        raise ValueError(f"q_hat must be >= 0, got {q_hat}")
    return CALIBRATION_FORMS[name](roi_hat, r, q_hat)


def combine_point_and_std(mean: np.ndarray, std: np.ndarray, how: str = "add") -> np.ndarray:
    """Uncalibrated point+std combination — the '... w/ MC' ablation arms.

    Without conformal prediction there is no ``q̂``; the Table II
    ablation arms ("DR w/ MC", "DRP w/ MC") combine the MC-dropout
    mean and std directly.  ``how="add"`` is form 5c with unit weight;
    ``how="mean"`` uses the MC mean alone (dropout model averaging).
    """
    mean = check_1d(mean, "mean")
    std = check_1d(std, "std")
    check_consistent_length(mean, std, names=("mean", "std"))
    if how == "add":
        return mean + std
    if how == "mean":
        return mean.copy()
    raise ValueError(f"how must be 'add' or 'mean', got {how!r}")


class HeuristicCalibration:
    """Select and apply the best calibration form (Algorithm 4 lines 8/12).

    Parameters
    ----------
    candidate_forms:
        Forms considered during selection; defaults to 5a/5b/5c plus
        the identity (see module docstring).
    selection_margin:
        A non-identity form is only selected if its calibration-set
        AUCC exceeds the identity's by at least this margin.  The AUCC
        estimate on a 1–2-day calibration RCT is noisy; without a
        margin the selector can chase noise and *hurt* test-set
        ranking — the opposite of the robustness rDRP is for.
    n_bootstrap:
        Upper bound on the number of disjoint calibration folds the
        per-form AUCC comparison runs over (the actual count also
        respects a ~200-samples-per-fold floor).  0 disables the
        cross-fold test and evaluates once on the full calibration set.
    random_state:
        Seed/generator for the bootstrap replicates.
    """

    def __init__(
        self,
        candidate_forms: tuple[str, ...] | None = None,
        selection_margin: float = 0.01,
        n_bootstrap: int = 20,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        forms = candidate_forms if candidate_forms is not None else ("5a", "5b", "5c", "identity")
        unknown = set(forms) - set(CALIBRATION_FORMS)
        if unknown:
            raise ValueError(f"Unknown calibration forms: {sorted(unknown)}")
        if not forms:
            raise ValueError("candidate_forms must not be empty")
        if selection_margin < 0:
            raise ValueError(f"selection_margin must be >= 0, got {selection_margin}")
        if n_bootstrap < 0:
            raise ValueError(f"n_bootstrap must be >= 0, got {n_bootstrap}")
        self.candidate_forms = tuple(forms)
        self.selection_margin = float(selection_margin)
        self.n_bootstrap = int(n_bootstrap)
        self.random_state = random_state
        self.selected_form_: str | None = None
        self.selection_scores_: dict[str, float] = {}

    def select(
        self,
        roi_hat: np.ndarray,
        r: np.ndarray,
        q_hat: float,
        t: np.ndarray,
        y_r: np.ndarray,
        y_c: np.ndarray,
    ) -> str:
        """Pick the form with the highest calibration-set AUCC."""
        roi_hat = check_1d(roi_hat, "roi_hat")
        r = check_1d(r, "r")
        t = check_binary(t)
        y_r = check_1d(y_r, "y_r")
        y_c = check_1d(y_c, "y_c")
        check_consistent_length(
            roi_hat, r, t, y_r, y_c, names=("roi_hat", "r", "t", "y_r", "y_c")
        )
        candidates = {
            form: apply_form(form, roi_hat, r, q_hat) for form in self.candidate_forms
        }
        self.selection_scores_ = {}
        if self.n_bootstrap == 0 or "identity" not in candidates:
            for form, froi in candidates.items():
                self.selection_scores_[form] = aucc(froi, t, y_r, y_c)
            best = max(self.selection_scores_, key=self.selection_scores_.get)
            baseline = self.selection_scores_.get("identity")
            if (
                best != "identity"
                and baseline is not None
                and self.selection_scores_[best] < baseline + self.selection_margin
            ):
                best = "identity"
            self.selected_form_ = best
            return self.selected_form_

        # Cross-fold paired selection: a non-identity form is adopted
        # only when its AUCC advantage over the raw point estimate is
        # consistent across *disjoint* calibration folds.  Disjointness
        # matters: bootstrap replicates of a single draw share its
        # outcome noise, so a spurious correlation between r(x) and the
        # realised outcomes survives every replicate and the test stays
        # anticonservative.  Independent folds give an honest standard
        # error.  The AUCC estimator on a 1-2-day calibration RCT is
        # noisy enough that point comparisons would chase noise and
        # break the DRP ranking — the opposite of robustness.
        rng = as_generator(self.random_state)
        n = roi_hat.shape[0]
        n_folds = max(2, min(self.n_bootstrap, n // 200)) if n >= 400 else 0
        per_rep: dict[str, list[float]] = {form: [] for form in candidates}
        if n_folds >= 2:
            perm = rng.permutation(n)
            for fold in np.array_split(perm, n_folds):
                if len(set(t[fold])) < 2:
                    continue  # a fold must contain both arms
                for form, froi in candidates.items():
                    per_rep[form].append(aucc(froi[fold], t[fold], y_r[fold], y_c[fold]))
        done = len(per_rep["identity"])
        if done < 2:  # calibration set too small for honest folds
            for form, froi in candidates.items():
                self.selection_scores_[form] = aucc(froi, t, y_r, y_c)
            self.selected_form_ = "identity"
            return self.selected_form_

        identity_scores = np.asarray(per_rep["identity"])
        self.selection_scores_ = {
            form: float(np.mean(scores)) for form, scores in per_rep.items()
        }
        best = "identity"
        best_gain = 0.0
        for form, scores in per_rep.items():
            if form == "identity":
                continue
            diff = np.asarray(scores) - identity_scores
            mean_diff = float(np.mean(diff))
            se = float(np.std(diff, ddof=1) / np.sqrt(done)) if done > 1 else np.inf
            # one-sided test at ~2 standard errors, plus the flat margin
            if mean_diff - 2.0 * se > self.selection_margin and mean_diff > best_gain:
                best = form
                best_gain = mean_diff
        self.selected_form_ = best
        return self.selected_form_

    def transform(self, roi_hat: np.ndarray, r: np.ndarray, q_hat: float) -> np.ndarray:
        """Apply the selected form to new predictions."""
        if self.selected_form_ is None:
            raise RuntimeError("No form selected; call select() first")
        return apply_form(self.selected_form_, roi_hat, r, q_hat)

"""Algorithm 2: obtain ``roi*`` by binary search on the DRP loss derivative.

The DRP loss is convex in a shared score ``s``, and its pooled
derivative at ``roi = σ(s)`` is ``L'(roi) = −τ̂_r + τ̂_c · roi`` (see
:func:`repro.core.drp.drp_pooled_derivative`), monotone increasing in
``roi`` under Assumption 4 (``τ_c > 0``).  Bisection on ``roi ∈ (0, 1)``
therefore converges to the loss minimiser, which Assumption 5 treats as
the *true* ROI of the pooled sample — the surrogate label conformal
prediction needs.

Two granularities are provided (see DESIGN.md):

* ``mode="global"`` — one pooled search over the whole calibration set
  (the literal reading of Algorithm 2's pseudo-code);
* ``mode="binned"`` — sort by the model's predicted ROI, slice into K
  quantile bins, and search within each bin (the per-sample reading of
  §IV-D, giving each calibration sample the ``roi*`` of its bin).
"""

from __future__ import annotations

import numpy as np

from typing import Callable

from repro.core.drp import drp_pooled_derivative
from repro.utils.validation import check_1d, check_binary, check_consistent_length

__all__ = ["bisect_monotone", "binary_search_roi_star", "RoiStarEstimator"]


def bisect_monotone(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    eps: float = 1e-3,
) -> float:
    """Bisect a monotone-increasing ``fn`` to its zero crossing on ``[lo, hi]``.

    The generic threshold search underlying Algorithm 2 — and reused by
    :mod:`repro.serving.pacing` to locate admission thresholds on
    streaming traffic.  Stops when either the bracket width or ``|fn|``
    at the midpoint falls below ``eps`` and returns the midpoint.  When
    the zero lies outside ``[lo, hi]`` the search converges to the
    nearer endpoint, which is the correct clamped threshold.
    """
    if eps <= 0:
        raise ValueError(f"eps must be > 0, got {eps}")
    if not lo < hi:
        raise ValueError(f"need lo < hi, got [{lo}, {hi}]")
    mid = 0.5 * (lo + hi)
    value = fn(mid)
    while abs(hi - lo) > eps:
        if abs(value) < eps:
            break
        if value > 0:
            hi = mid
        else:
            lo = mid
        mid = 0.5 * (lo + hi)
        value = fn(mid)
    return float(mid)


def binary_search_roi_star(
    t: np.ndarray,
    y_r: np.ndarray,
    y_c: np.ndarray,
    eps: float = 1e-3,
    clip: float = 1e-3,
) -> float:
    """Algorithm 2 verbatim: bisect ``L'`` over ``roi ∈ (0, 1)``.

    Parameters
    ----------
    t, y_r, y_c:
        Calibration samples (both arms required).
    eps:
        Convergence tolerance on both the interval width and ``|L'|``.
    clip:
        The returned value is clipped into ``[clip, 1 − clip]`` —
        Assumption 3 constrains ROI to the open unit interval, and a
        pooled difference-in-means estimate on a small bin can fall
        outside it.

    Returns
    -------
    float
        The convergence-point ROI of the pooled sample.
    """
    roi_star = bisect_monotone(
        lambda roi: drp_pooled_derivative(roi, t, y_r, y_c), 0.0, 1.0, eps=eps
    )
    return float(np.clip(roi_star, clip, 1.0 - clip))


class RoiStarEstimator:
    """Per-sample ``roi*`` labels for the conformal score (Eq. 3).

    Parameters
    ----------
    mode:
        ``"binned"`` (default) or ``"global"``; see module docstring.
    n_bins:
        Number of quantile bins in binned mode.
    min_arm_per_bin:
        A bin must contain at least this many treated *and* control
        samples for its own search; thinner bins fall back to the
        global estimate.
    eps:
        Bisection tolerance (Algorithm 2's ε).
    """

    def __init__(
        self,
        mode: str = "binned",
        n_bins: int = 20,
        min_arm_per_bin: int = 10,
        eps: float = 1e-3,
    ) -> None:
        if mode not in ("binned", "global"):
            raise ValueError(f"mode must be 'binned' or 'global', got {mode!r}")
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        self.mode = mode
        self.n_bins = int(n_bins)
        self.min_arm_per_bin = int(min_arm_per_bin)
        self.eps = float(eps)

    def estimate(
        self,
        roi_hat: np.ndarray,
        t: np.ndarray,
        y_r: np.ndarray,
        y_c: np.ndarray,
    ) -> np.ndarray:
        """Return a ``roi*`` value aligned with each calibration sample.

        Parameters
        ----------
        roi_hat:
            The DRP point estimates on the calibration set (used only
            to form the quantile bins in binned mode).
        t, y_r, y_c:
            Calibration outcomes.
        """
        roi_hat = check_1d(roi_hat, "roi_hat")
        t = check_binary(t)
        y_r = check_1d(y_r, "y_r")
        y_c = check_1d(y_c, "y_c")
        check_consistent_length(roi_hat, t, y_r, y_c, names=("roi_hat", "t", "y_r", "y_c"))

        global_star = binary_search_roi_star(t, y_r, y_c, eps=self.eps)
        if self.mode == "global" or self.n_bins == 1:
            return np.full(roi_hat.shape[0], global_star)

        n = roi_hat.shape[0]
        n_bins = min(self.n_bins, max(1, n // max(2 * self.min_arm_per_bin, 1)))
        if n_bins <= 1:
            return np.full(n, global_star)
        # quantile bin edges over the predicted ROI ranking
        order = np.argsort(roi_hat, kind="stable")
        bin_of = np.empty(n, dtype=np.int64)
        bin_of[order] = (np.arange(n) * n_bins) // n
        out = np.full(n, global_star)
        for b in range(n_bins):
            members = bin_of == b
            tb = t[members]
            n1 = int(np.sum(tb == 1))
            n0 = int(np.sum(tb == 0))
            if n1 < self.min_arm_per_bin or n0 < self.min_arm_per_bin:
                continue  # thin bin: keep the global fallback
            tau_c = float(y_c[members][tb == 1].mean() - y_c[members][tb == 0].mean())
            if tau_c <= 0:
                continue  # Assumption 4 violated in-bin: unreliable, fall back
            out[members] = binary_search_roi_star(tb, y_r[members], y_c[members], eps=self.eps)
        return out

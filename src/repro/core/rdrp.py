"""Algorithm 4: the robust DRP (rDRP) method end-to-end.

rDRP = DRP + MC dropout + conformal prediction + heuristic calibration,
as a pure *post-processing* stage: the DRP network is trained once and
never altered.

Phases (Algorithm 4):

1. **Training set** — train the DRP model.
2. **Calibration set** (a short, freshly collected RCT so Assumption 6
   holds) — infer ``roî``; locate ``roi*`` by binary search (Algorithm
   2); infer the MC-dropout std ``r(x)``; compute the conformal
   quantile ``q̂`` (Algorithm 3); select the calibration form among
   5a–5c by calibration-set AUCC.
3. **Test set** — infer ``roî`` and ``r(x)``, apply the selected form
   with the stored ``q̂`` to produce ``froi(x_test)``.

``froi`` then feeds Algorithm 1 (:func:`repro.core.allocation.greedy_allocation`)
to solve C-BTAP.
"""

from __future__ import annotations

import numpy as np

from repro.causal.base import TrainableModel

from repro.core.calibration import HeuristicCalibration
from repro.core.conformal import ConformalCalibrator
from repro.core.drp import DRPModel
from repro.core.roi_star import RoiStarEstimator
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_binary,
    check_consistent_length,
)

__all__ = ["RobustDRP"]


class RobustDRP(TrainableModel):
    """Robust Direct ROI Prediction (the paper's contribution).

    Parameters
    ----------
    alpha:
        Conformal error rate (interval covers ``roi*`` w.p. ≥ 1 − α).
    mc_samples:
        Number of MC-dropout passes ``T`` (10–100 in the paper).
    roi_star_mode, roi_star_bins:
        Granularity of the Algorithm-2 surrogate label (see
        :class:`~repro.core.roi_star.RoiStarEstimator`).
    candidate_forms:
        Calibration forms offered to the selector (default 5a/5b/5c +
        identity).
    selection_margin:
        Calibration-set AUCC margin a non-identity form must clear to
        be selected (see :class:`HeuristicCalibration`).
    use_mc_mean:
        When True (default), the rDRP point estimate ``roî`` is the
        MC-dropout *mean* rather than the single deterministic pass.
        Fig. 4 of the paper runs the MC-dropout module at inference to
        produce the std; its mean is dropout model averaging — the
        regularisation that drives the "DRP w/ MC" gains of Table II,
        largest exactly when training data is insufficient.
    drp / drp_params:
        Either a pre-built (possibly already fitted) :class:`DRPModel`
        or keyword arguments used to construct one.
    random_state:
        Seed/generator for the DRP network when built here.
    """

    def __init__(
        self,
        alpha: float = 0.1,
        mc_samples: int = 30,
        roi_star_mode: str = "binned",
        roi_star_bins: int = 20,
        candidate_forms: tuple[str, ...] | None = None,
        selection_margin: float = 0.01,
        use_mc_mean: bool = True,
        drp: DRPModel | None = None,
        random_state: int | np.random.Generator | None = None,
        **drp_params,
    ) -> None:
        if mc_samples < 2:
            raise ValueError(f"mc_samples must be >= 2, got {mc_samples}")
        self.alpha = float(alpha)
        self.mc_samples = int(mc_samples)
        self.use_mc_mean = bool(use_mc_mean)
        self.drp = drp if drp is not None else DRPModel(random_state=random_state, **drp_params)
        self.roi_star_estimator = RoiStarEstimator(mode=roi_star_mode, n_bins=roi_star_bins)
        self.conformal = ConformalCalibrator(alpha=self.alpha)
        self.calibration = HeuristicCalibration(
            candidate_forms, selection_margin, random_state=random_state
        )
        self._calibrated = False

    # ------------------------------------------------------------------
    # Algorithm 4, phase 1: training set
    # ------------------------------------------------------------------
    def _init_params(self) -> dict:
        # rDRP aggregates its parameters into sub-components; read them
        # back from there and clone the wrapped DRP unfitted
        return {
            "alpha": self.alpha,
            "mc_samples": self.mc_samples,
            "roi_star_mode": self.roi_star_estimator.mode,
            "roi_star_bins": self.roi_star_estimator.n_bins,
            "candidate_forms": self.calibration.candidate_forms,
            "selection_margin": self.calibration.selection_margin,
            "use_mc_mean": self.use_mc_mean,
            "drp": self.drp.clone_unfit(),
            "random_state": self.calibration.random_state,
        }

    def fit(self, x, t, y_r, y_c) -> "RobustDRP":
        """Train the underlying DRP model (Algorithm 4 line 2)."""
        self.drp.fit(x, t, y_r, y_c)
        return self

    # ------------------------------------------------------------------
    # Algorithm 4, phase 2: calibration set
    # ------------------------------------------------------------------
    def calibrate(self, x, t, y_r, y_c) -> "RobustDRP":
        """Run the calibration phase (Algorithm 4 lines 4–8).

        The calibration data should be a *fresh* small RCT collected
        just before deployment so its distribution matches the test
        traffic (Assumption 6) even when the training set is shifted.
        """
        x = check_2d(x)
        t = check_binary(t)
        y_r = check_1d(y_r, "y_r")
        y_c = check_1d(y_c, "y_c")
        check_consistent_length(x, t, y_r, y_c, names=("X", "t", "y_r", "y_c"))
        if np.all(t == 1) or np.all(t == 0):
            raise ValueError("Calibration data must contain both treated and control samples")

        # (i) DRP point estimates + (iii) MC-dropout std r(x)
        roi_hat, r = self._point_and_std(x)
        # (ii) roi* via Algorithm 2
        roi_star = self.roi_star_estimator.estimate(roi_hat, t, y_r, y_c)
        # (iv) conformal quantile q̂ via Algorithm 3
        self.conformal.calibrate(roi_star, roi_hat, r)
        # (v) select the calibration form on the calibration set
        self.calibration.select(roi_hat, r, self.conformal.q_hat, t, y_r, y_c)
        self._calibrated = True
        return self

    # ------------------------------------------------------------------
    # Algorithm 4, phase 3: test set
    # ------------------------------------------------------------------
    def predict_roi(self, x) -> np.ndarray:
        """Calibrated prediction ``froi(x_test)`` (Algorithm 4 lines 10–12)."""
        if not self._calibrated:
            raise RuntimeError("RobustDRP is not calibrated; call calibrate() first")
        roi_hat, r = self._point_and_std(x)
        return self.calibration.transform(roi_hat, r, self.conformal.q_hat)

    def predict_interval(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Rigorous conformal interval ``C(x)`` for the test points (Eq. 4).

        Intervals are intersected with (0, 1) — ROI's scope under
        Assumption 3 — which never loses coverage since ``roi*`` lies
        inside that range by construction.
        """
        if not self._calibrated:
            raise RuntimeError("RobustDRP is not calibrated; call calibrate() first")
        roi_hat, r = self._point_and_std(x)
        return self.conformal.interval(roi_hat, r, clip=(0.0, 1.0))

    def _point_and_std(self, x) -> tuple[np.ndarray, np.ndarray]:
        """The ``(roî, r(x))`` pair used by every rDRP stage."""
        mc_mean, r = self.drp.predict_roi_mc(x, n_samples=self.mc_samples)
        roi_hat = mc_mean if self.use_mc_mean else self.drp.predict_roi(x)
        return roi_hat, r

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def selected_form(self) -> str:
        """The calibration form chosen on the calibration set."""
        if self.calibration.selected_form_ is None:
            raise RuntimeError("RobustDRP is not calibrated; call calibrate() first")
        return self.calibration.selected_form_

    @property
    def q_hat(self) -> float:
        """The conformal score quantile ``q̂``."""
        return self.conformal.q_hat

"""Direct Rank (DR) baseline — Du, Lee & Ghaffarizadeh (2019).

DR learns a score ``s(x)`` whose *soft selection* ``w = σ(s)`` should
maximise the ratio of incremental reward to incremental cost of the
selected set:

    R(w) = (1/N₁) Σ_{t=1} w_i y_r,i − (1/N₀) Σ_{t=0} w_i y_r,i
    C(w) = (1/N₁) Σ_{t=1} w_i y_c,i − (1/N₀) Σ_{t=0} w_i y_c,i
    loss = − R(w) / (C(w) + κ)

The ratio objective is **non-convex**; as the paper notes (citing
Appendix E of the DRP paper), it need not recover the correct ROI
ranking at convergence — which is precisely why DR trails DRP in the
benchmarks.  ``κ`` keeps the denominator away from zero early in
training.
"""

from __future__ import annotations

import numpy as np

from repro.causal.base import TrainableModel

from repro.nn.activations import sigmoid, sigmoid_grad
from repro.nn.mc_dropout import mc_dropout_statistics
from repro.nn.network import Network, mlp
from repro.nn.optimizers import Adam
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_binary,
    check_consistent_length,
)

__all__ = ["DirectRank", "dr_loss"]


def dr_loss(
    s: np.ndarray,
    t: np.ndarray,
    y_r: np.ndarray,
    y_c: np.ndarray,
    kappa: float = 0.05,
) -> tuple[float, np.ndarray]:
    """DR ratio loss and its gradient with respect to ``s``.

    Returns ``(value, grad)``; see the module docstring for the form.
    """
    s = np.asarray(s, dtype=float).ravel()
    t = np.asarray(t).ravel()
    y_r = np.asarray(y_r, dtype=float).ravel()
    y_c = np.asarray(y_c, dtype=float).ravel()
    n1 = max(int(np.sum(t == 1)), 1)
    n0 = max(int(np.sum(t == 0)), 1)
    a = np.where(t == 1, 1.0 / n1, -1.0 / n0)

    w = sigmoid(s)
    reward = float(np.sum(a * w * y_r))
    cost = float(np.sum(a * w * y_c))
    denom = cost + kappa
    if abs(denom) < 1e-12:
        denom = np.sign(denom) * 1e-12 if denom != 0 else 1e-12
    value = -reward / denom

    # d(-R/C)/dw_i = -(R'_i * denom - reward * C'_i) / denom^2
    d_reward = a * y_r
    d_cost = a * y_c
    grad_w = -(d_reward * denom - reward * d_cost) / (denom * denom)
    grad = grad_w * sigmoid_grad(s)
    return value, grad


class DirectRank(TrainableModel):
    """DR model: MLP scorer trained with the soft-selection ratio loss.

    The public surface mirrors :class:`~repro.core.drp.DRPModel` so the
    benchmark harness can treat both uniformly; ``predict_roi`` returns
    ``σ(ŝ)`` — DR scores have no ROI semantics, but their sigmoid is
    the ranking the method deploys.

    Parameters
    ----------
    hidden, dropout, epochs, batch_size, learning_rate, weight_decay:
        As in :class:`~repro.core.drp.DRPModel`.
    kappa:
        Denominator stabiliser of the ratio loss.
    """

    def __init__(
        self,
        hidden: int = 64,
        dropout: float = 0.1,
        epochs: int = 80,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
        kappa: float = 0.05,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if kappa <= 0:
            raise ValueError(f"kappa must be > 0, got {kappa}")
        self.hidden = int(hidden)
        self.dropout = float(dropout)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self.kappa = float(kappa)
        self.random_state = random_state
        self.network_: Network | None = None
        self._n_features: int | None = None

    def fit(self, x, t, y_r, y_c) -> "DirectRank":
        x = check_2d(x)
        t = check_binary(t)
        y_r = check_1d(y_r, "y_r")
        y_c = check_1d(y_c, "y_c")
        check_consistent_length(x, t, y_r, y_c, names=("X", "t", "y_r", "y_c"))
        if np.all(t == 1) or np.all(t == 0):
            raise ValueError("Both treated and control samples are required to fit DR")
        self._n_features = x.shape[1]
        rng = as_generator(self.random_state)
        self.network_ = mlp(
            x.shape[1],
            [self.hidden],
            output_dim=1,
            activation="elu",
            dropout=self.dropout,
            rng=rng,
        )

        def batch_loss(pred: np.ndarray, batch: dict) -> tuple[float, np.ndarray]:
            value, grad = dr_loss(
                pred[:, 0], batch["t"], batch["y_r"], batch["y_c"], kappa=self.kappa
            )
            return value, grad.reshape(-1, 1)

        self.network_.fit(
            x,
            {"t": t, "y_r": y_r, "y_c": y_c},
            loss=batch_loss,
            optimizer=Adam(self.learning_rate, weight_decay=self.weight_decay),
            epochs=self.epochs,
            batch_size=self.batch_size,
            rng=rng,
        )
        return self

    def _checked(self, x) -> np.ndarray:
        if self.network_ is None:
            raise RuntimeError("DirectRank is not fitted; call fit() first")
        x = check_2d(x)
        if x.shape[1] != self._n_features:
            raise ValueError(
                f"X has {x.shape[1]} features but the model was fitted with {self._n_features}"
            )
        return x

    def predict_score(self, x) -> np.ndarray:
        x = self._checked(x)
        return self.network_.predict(x)[:, 0]

    def predict_roi(self, x) -> np.ndarray:
        """Ranking surrogate ``σ(ŝ)`` (no calibrated ROI semantics)."""
        return sigmoid(self.predict_score(x))

    def predict_roi_mc(
        self, x, n_samples: int = 30, std_floor: float = 1e-4
    ) -> tuple[np.ndarray, np.ndarray]:
        """MC-dropout mean/std of ``σ(ŝ)`` — the 'DR w/ MC' ablation arm."""
        x = self._checked(x)
        return mc_dropout_statistics(
            self.network_.forward_stochastic,
            x,
            n_samples=n_samples,
            transform=sigmoid,
            std_floor=std_floor,
        )

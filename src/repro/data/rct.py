"""The RCT dataset container shared by every generator and harness."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["RCTDataset"]


@dataclass
class RCTDataset:
    """A randomised-controlled-trial sample with known ground truth.

    Attributes
    ----------
    x:
        Feature matrix ``(n, d)``.
    t:
        Binary treatment assignment ``(n,)`` (Notation 1).
    y_r, y_c:
        Realised revenue and cost outcomes ``(n,)``.
    tau_r, tau_c:
        Ground-truth conditional effects ``τ_r(x_i)``, ``τ_c(x_i)``
        (available because the data is synthetic; real corpora never
        expose these).
    roi:
        Ground-truth ``τ_r(x_i)/τ_c(x_i) ∈ (0,1)`` (Definition 2 under
        Assumption 3).
    name:
        Generator label (``"criteo"``, ``"meituan"``, ``"alibaba"``...).
    """

    x: np.ndarray
    t: np.ndarray
    y_r: np.ndarray
    y_c: np.ndarray
    tau_r: np.ndarray
    tau_c: np.ndarray
    roi: np.ndarray
    name: str = "synthetic"
    feature_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = self.x.shape[0]
        for attr in ("t", "y_r", "y_c", "tau_r", "tau_c", "roi"):
            arr = getattr(self, attr)
            if arr.shape[0] != n:
                raise ValueError(
                    f"{attr} has length {arr.shape[0]} but X has {n} rows"
                )
        if not self.feature_names:
            self.feature_names = [f"f{i}" for i in range(self.x.shape[1])]

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self.x.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.x.shape[1])

    @property
    def n_treated(self) -> int:
        return int(np.sum(self.t == 1))

    @property
    def n_control(self) -> int:
        return int(np.sum(self.t == 0))

    @classmethod
    def concat(
        cls,
        parts: "list[RCTDataset] | tuple[RCTDataset, ...]",
        copy: bool = True,
    ) -> "RCTDataset":
        """Row-wise concatenation of compatible samples.

        The building block of chunked cohort generation: draw bounded
        chunks, keep what each yields, and stitch the kept rows.  The
        parts and the output coexist while concatenating (peak ~2x the
        output), but never a multiple-``n`` oversample pool.

        ``copy=False`` lets a single part pass through untouched — the
        zero-copy path for callers (like chunked cohort assembly) whose
        parts are private anyway.  Multi-part concatenation always
        materialises fresh arrays.
        """
        if not parts:
            raise ValueError("concat needs at least one dataset")
        if len(parts) == 1:
            return parts[0] if not copy else parts[0].subset(np.arange(parts[0].n))
        first = parts[0]
        for p in parts[1:]:
            if p.n_features != first.n_features:
                raise ValueError(
                    f"cannot concat {p.n_features}-feature rows onto "
                    f"{first.n_features}-feature rows"
                )
        return cls(
            x=np.concatenate([p.x for p in parts], axis=0),
            t=np.concatenate([p.t for p in parts]),
            y_r=np.concatenate([p.y_r for p in parts]),
            y_c=np.concatenate([p.y_c for p in parts]),
            tau_r=np.concatenate([p.tau_r for p in parts]),
            tau_c=np.concatenate([p.tau_c for p in parts]),
            roi=np.concatenate([p.roi for p in parts]),
            name=first.name,
            feature_names=list(first.feature_names),
        )

    def head(self, k: int) -> "RCTDataset":
        """The first ``k`` rows as zero-copy *views* of this dataset.

        The cheap spelling of ``subset(np.arange(k))`` for tail trims:
        no bytes move.  The result aliases this dataset's arrays —
        writes through either are visible in both — so use it only
        where one of the two is immediately discarded (chunk assembly)
        or both stay read-only.
        """
        if not 0 <= k <= self.n:
            raise ValueError(f"k must be in [0, {self.n}], got {k}")
        return RCTDataset(
            x=self.x[:k],
            t=self.t[:k],
            y_r=self.y_r[:k],
            y_c=self.y_c[:k],
            tau_r=self.tau_r[:k],
            tau_c=self.tau_c[:k],
            roi=self.roi[:k],
            name=self.name,
            feature_names=list(self.feature_names),
        )

    def subset(self, idx: np.ndarray) -> "RCTDataset":
        """Row-sliced copy (``idx`` may be a boolean mask or index array)."""
        return RCTDataset(
            x=self.x[idx],
            t=self.t[idx],
            y_r=self.y_r[idx],
            y_c=self.y_c[idx],
            tau_r=self.tau_r[idx],
            tau_c=self.tau_c[idx],
            roi=self.roi[idx],
            name=self.name,
            feature_names=list(self.feature_names),
        )

    def split(
        self,
        fractions: tuple[float, ...],
        random_state: int | np.random.Generator | None = None,
    ) -> tuple["RCTDataset", ...]:
        """Random disjoint splits by the given fractions (must sum to ≤ 1)."""
        if any(f <= 0 for f in fractions):
            raise ValueError(f"fractions must be positive, got {fractions}")
        if sum(fractions) > 1.0 + 1e-9:
            raise ValueError(f"fractions must sum to <= 1, got {fractions}")
        rng = as_generator(random_state)
        perm = rng.permutation(self.n)
        out = []
        start = 0
        for f in fractions:
            size = int(round(f * self.n))
            out.append(self.subset(perm[start : start + size]))
            start += size
        return tuple(out)

    def sample_fraction(
        self,
        fraction: float,
        random_state: int | np.random.Generator | None = None,
    ) -> "RCTDataset":
        """Uniform subsample — how the paper builds its *Insufficient*
        settings (a 0.15 sample of the sufficient dataset, §V-A)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        rng = as_generator(random_state)
        size = max(2, int(round(fraction * self.n)))
        idx = rng.choice(self.n, size=size, replace=False)
        return self.subset(idx)

    def summary(self) -> dict:
        """Headline statistics (useful in examples and logs)."""
        return {
            "name": self.name,
            "n": self.n,
            "n_features": self.n_features,
            "treated_fraction": float(np.mean(self.t)),
            "mean_y_r": float(np.mean(self.y_r)),
            "mean_y_c": float(np.mean(self.y_c)),
            "mean_true_roi": float(np.mean(self.roi)),
        }

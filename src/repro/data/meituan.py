"""Meituan-LIFT analog.

The real dataset (Huang et al., 2024) is a two-month smart-coupon RCT
from Meituan food delivery: ~5.5M rows, 99 attributes, a five-level
treatment, and click (cost) / conversion (revenue) outcomes.  Following
the paper's protocol, two of the five treatment levels are selected and
binarised.  The analog reproduces: 99 features (a mix of dense user
statistics and sparse binary attributes), an internal 5-level
treatment collapsed to binary, and click/conversion Bernoulli outcomes.
"""

from __future__ import annotations

import numpy as np

from repro.data.rct import RCTDataset
from repro.data.synthetic import SyntheticRCTConfig, generate_rct
from repro.utils.rng import as_generator

__all__ = ["meituan_lift", "MEITUAN_CONFIG"]

MEITUAN_CONFIG = SyntheticRCTConfig(
    roi_low=0.10,
    roi_high=0.80,
    cost_low=0.05,
    cost_high=0.40,
    base_cost_rate=0.30,    # click rate
    base_revenue_rate=0.20,  # conversion rate
    p_treat=0.5,
    noise_scale=0.35,
)


def meituan_lift(
    n: int = 20000,
    random_state: int | np.random.Generator | None = None,
    selected_levels: tuple[int, int] = (1, 4),
) -> RCTDataset:
    """Generate the Meituan-LIFT analog (binarised per the paper).

    A five-level treatment is drawn uniformly at random (independent of
    the features, so Assumption 1 holds); only rows assigned one of
    ``selected_levels`` are kept, the lower level becoming control
    (t=0) and the higher becoming treated (t=1) — mirroring "from the
    five available treatment options, only two are chosen ...
    simplified into a binary treatment format" (§V-A).  The returned
    dataset is therefore roughly ``0.4·n`` rows.

    Returns
    -------
    RCTDataset
        99 features; ``y_c`` = click, ``y_r`` = conversion.
    """
    if n < 25:
        raise ValueError(f"n must be >= 25, got {n}")
    lo, hi = selected_levels
    if not (0 <= lo < hi <= 4):
        raise ValueError(f"selected_levels must satisfy 0 <= lo < hi <= 4, got {selected_levels}")
    rng = as_generator(random_state)
    d = 99
    # 40 dense behavioural statistics + 59 sparse binary attributes
    n_dense = 40
    n_factors = 6
    loadings = np.random.default_rng(20240203).normal(0.0, 1.0, size=(n_factors, n_dense)) / np.sqrt(n_factors)
    dense = rng.normal(size=(n, n_factors)) @ loadings + 0.5 * rng.normal(size=(n, n_dense))
    sparse = (rng.random(size=(n, d - n_dense)) < 0.15).astype(float)
    x = np.hstack([dense, sparse])

    # five-level randomised treatment, binarised to the two chosen arms
    levels = rng.integers(0, 5, size=n)
    keep = (levels == lo) | (levels == hi)
    x = x[keep]
    t = (levels[keep] == hi).astype(np.int64)
    feature_names = [f"dense{i}" for i in range(n_dense)] + [
        f"attr{i}" for i in range(d - n_dense)
    ]
    return generate_rct(
        x.shape[0],
        x,
        MEITUAN_CONFIG,
        random_state=rng,
        name="meituan",
        feature_names=feature_names,
        t=t,
    )

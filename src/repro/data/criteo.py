"""CRITEO-UPLIFT v2 analog.

The real dataset (Diemert et al., AdKDD 2018) has 13.9M rows, 12 dense
anonymised features, an 85%-treated RCT assignment, and binary *visit*
(used by the paper as the cost outcome) and *conversion* (revenue)
labels with low positive rates.  The analog reproduces that shape:
12 correlated continuous features, ``p_treat = 0.85``, visit-as-cost /
conversion-as-revenue Bernoulli outcomes, and effect scales giving a
few-percent visit lift with conversion lift a fraction of it.
"""

from __future__ import annotations

import numpy as np

from repro.data.rct import RCTDataset
from repro.data.synthetic import SyntheticRCTConfig, generate_rct
from repro.utils.rng import as_generator

__all__ = ["criteo_uplift_v2", "CRITEO_CONFIG"]

CRITEO_CONFIG = SyntheticRCTConfig(
    roi_low=0.08,
    roi_high=0.85,
    cost_low=0.05,
    cost_high=0.40,
    base_cost_rate=0.35,   # visit rate
    base_revenue_rate=0.18,  # conversion rate
    p_treat=0.85,
    noise_scale=0.3,
)


def criteo_uplift_v2(
    n: int = 20000,
    random_state: int | np.random.Generator | None = None,
) -> RCTDataset:
    """Generate the CRITEO-UPLIFT v2 analog.

    Parameters
    ----------
    n:
        Row count (the real corpus has 13.9M; benches use thousands).
    random_state:
        Seed/generator.

    Returns
    -------
    RCTDataset
        12 features ``f0..f11``; ``y_c`` = visit, ``y_r`` = conversion.
    """
    if n < 10:
        raise ValueError(f"n must be >= 10, got {n}")
    rng = as_generator(random_state)
    d = 12
    # correlated dense features, like the anonymised Criteo embeddings:
    # latent factors + idiosyncratic noise
    n_factors = 4
    loadings = np.random.default_rng(20180813).normal(0.0, 1.0, size=(n_factors, d)) / np.sqrt(n_factors)
    factors = rng.normal(size=(n, n_factors))
    x = factors @ loadings + 0.6 * rng.normal(size=(n, d))
    feature_names = [f"f{i}" for i in range(d)]
    return generate_rct(
        n,
        x,
        CRITEO_CONFIG,
        random_state=rng,
        name="criteo",
        feature_names=feature_names,
    )

"""Configurable structural RCT generator.

All three dataset analogs share one structural model:

* features ``x`` from a dataset-specific distribution;
* a heterogeneity score ``g(x)`` (nonlinear in a few features) mapped
  through a squashing function into the ground-truth ROI
  ``roi(x) ∈ (roi_low, roi_high) ⊂ (0, 1)`` (Assumption 3);
* a positive cost effect ``τ_c(x) ∈ (cost_low, cost_high)``
  (Assumption 4) driven by a second score ``h(x)``;
* ``τ_r(x) = roi(x) · τ_c(x)`` by Definition 2;
* Bernoulli potential outcomes with base rates ``p_c0(x)``, ``p_r0(x)``
  lifted by the effects under treatment — matching the binary
  visit/click/exposure (cost) and conversion (revenue) outcomes of the
  paper's corpora;
* randomised assignment ``t ~ Bernoulli(p_treat)`` independent of
  ``x`` (Assumption 1; SUTVA holds by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import zlib

import numpy as np

from repro.data.rct import RCTDataset
from repro.nn.activations import sigmoid
from repro.utils.rng import as_generator

__all__ = ["SyntheticRCTConfig", "generate_rct", "structural_effects"]


@dataclass
class SyntheticRCTConfig:
    """Knobs of the structural model (per-dataset analogs fill these in).

    Attributes
    ----------
    roi_low, roi_high:
        Range of the ground-truth ROI (strictly inside (0, 1)).
    cost_low, cost_high:
        Range of the cost effect ``τ_c`` (strictly positive).
    base_cost_rate, base_revenue_rate:
        Control-arm outcome base rates before heterogeneity.
    p_treat:
        RCT assignment probability.
    noise_scale:
        Scale of the per-individual logit noise in base rates.
    """

    roi_low: float = 0.1
    roi_high: float = 0.9
    cost_low: float = 0.05
    cost_high: float = 0.25
    base_cost_rate: float = 0.35
    base_revenue_rate: float = 0.08
    p_treat: float = 0.5
    noise_scale: float = 0.5

    def validate(self) -> "SyntheticRCTConfig":
        if not 0.0 < self.roi_low < self.roi_high < 1.0:
            raise ValueError(f"Need 0 < roi_low < roi_high < 1, got ({self.roi_low}, {self.roi_high})")
        if not 0.0 < self.cost_low < self.cost_high:
            raise ValueError(f"Need 0 < cost_low < cost_high, got ({self.cost_low}, {self.cost_high})")
        if not 0.0 < self.p_treat < 1.0:
            raise ValueError(f"p_treat must be in (0, 1), got {self.p_treat}")
        if not 0.0 < self.base_cost_rate < 1.0 or not 0.0 < self.base_revenue_rate < 1.0:
            raise ValueError("Base rates must be in (0, 1)")
        return self


def structural_effects(
    x: np.ndarray,
    config: SyntheticRCTConfig,
    roi_weights: np.ndarray,
    cost_weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Ground-truth ``(roi, τ_c, τ_r)`` from the structural scores.

    ``roi(x)`` squashes a nonlinear score into ``(roi_low, roi_high)``;
    ``τ_c(x)`` squashes a second score into ``(cost_low, cost_high)``.
    The scores mix a linear part with an interaction and a squashed
    quadratic so tree *and* neural learners have signal to find.
    """
    d = x.shape[1]
    k = min(4, d)
    lin_roi = x @ roi_weights
    inter_roi = x[:, 0] * x[:, min(1, d - 1)]
    quad_roi = np.tanh(np.sum(x[:, :k] ** 2, axis=1) / k - 1.0)
    raw_roi = lin_roi + 0.5 * inter_roi + 0.5 * quad_roi
    # the gain spreads the true ROI across its full range so a good
    # ranking is clearly separable from a random one (oracle AUCC well
    # above the 0.5 diagonal, matching the scale of the paper's Table I)
    score_roi = 4.0 * raw_roi

    lin_cost = x @ cost_weights
    inter_cost = x[:, min(2, d - 1)] * x[:, min(3, d - 1)]
    # the −2.5·raw_roi term makes high-ROI individuals *cheaper* to
    # activate — the classic marketing pattern (engaged users need a
    # smaller nudge) — which is what bends the oracle cost curve upward
    score_cost = 1.5 * (lin_cost + 0.4 * inter_cost) - 2.5 * raw_roi

    roi = config.roi_low + (config.roi_high - config.roi_low) * sigmoid(score_roi)
    tau_c = config.cost_low + (config.cost_high - config.cost_low) * sigmoid(score_cost)
    tau_r = roi * tau_c
    return roi, tau_c, tau_r


def generate_rct(
    n: int,
    x: np.ndarray,
    config: SyntheticRCTConfig,
    random_state: int | np.random.Generator | None = None,
    name: str = "synthetic",
    feature_names: list[str] | None = None,
    t: np.ndarray | None = None,
) -> RCTDataset:
    """Draw treatments and Bernoulli potential outcomes for features ``x``.

    Parameters
    ----------
    n:
        Expected row count (validated against ``x``).
    x:
        Pre-drawn feature matrix from the dataset-specific marginal.
    config:
        Structural knobs (validated here).
    t:
        Optional pre-drawn randomised assignment (must be independent
        of ``x`` for Assumption 1 to hold); drawn Bernoulli(``p_treat``)
        when omitted.  The exogenous outcome uniforms are drawn
        independently of ``t``, so both potential outcomes are
        consistent whichever assignment is used.
    """
    config.validate()
    x = np.asarray(x, dtype=float)
    if x.shape[0] != n:
        raise ValueError(f"x has {x.shape[0]} rows, expected {n}")
    rng = as_generator(random_state)
    d = x.shape[1]

    # fixed (per-dataset deterministic) structural weights, concentrated
    # on the first features so every analog has informative and
    # distractor dimensions
    # zlib.crc32 is process-stable, unlike hash() which is salted per run
    w_rng = np.random.default_rng(zlib.crc32(name.encode("utf-8")))
    roi_weights = w_rng.normal(0.0, 1.0, size=d) * (np.arange(d) < max(4, d // 4)) / np.sqrt(max(4, d // 4))
    cost_weights = w_rng.normal(0.0, 1.0, size=d) * (np.arange(d) < max(4, d // 4)) / np.sqrt(max(4, d // 4))

    roi, tau_c, tau_r = structural_effects(x, config, roi_weights, cost_weights)

    if t is None:
        t = (rng.random(n) < config.p_treat).astype(np.int64)
    else:
        t = np.asarray(t).ravel().astype(np.int64)
        if t.shape[0] != n:
            raise ValueError(f"t has length {t.shape[0]}, expected {n}")
        if not np.all(np.isin(np.unique(t), (0, 1))):
            raise ValueError("t must be binary (0/1)")

    # per-individual base-rate heterogeneity (logit noise keeps rates in (0,1))
    noise_c = config.noise_scale * rng.normal(size=n)
    noise_r = config.noise_scale * rng.normal(size=n)
    base_c_logit = np.log(config.base_cost_rate / (1 - config.base_cost_rate))
    base_r_logit = np.log(config.base_revenue_rate / (1 - config.base_revenue_rate))
    p_c0 = sigmoid(base_c_logit + 0.3 * (x @ cost_weights) + noise_c)
    p_r0 = sigmoid(base_r_logit + 0.3 * (x @ roi_weights) + noise_r)

    # treated probabilities: base + effect, clipped into (0, 1)
    p_c1 = np.clip(p_c0 + tau_c, 1e-4, 1.0 - 1e-4)
    p_r1 = np.clip(p_r0 + tau_r, 1e-4, 1.0 - 1e-4)
    # keep the *realised* effects equal to the structural ones by
    # re-deriving base rates where clipping bound them
    p_c0 = np.clip(p_c1 - tau_c, 1e-4, 1.0 - 1e-4)
    p_r0 = np.clip(p_r1 - tau_r, 1e-4, 1.0 - 1e-4)

    u_c = rng.random(n)
    u_r = rng.random(n)
    y_c = np.where(t == 1, (u_c < p_c1), (u_c < p_c0)).astype(float)
    y_r = np.where(t == 1, (u_r < p_r1), (u_r < p_r0)).astype(float)

    return RCTDataset(
        x=x,
        t=t,
        y_r=y_r,
        y_c=y_c,
        tau_r=tau_r,
        tau_c=tau_c,
        roi=roi,
        name=name,
        feature_names=feature_names or [],
    )

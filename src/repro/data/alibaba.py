"""Alibaba-LIFT analog.

The real dataset (Ke et al., ICDM 2021) is a large-scale brand-
advertising RCT with 25 discrete features, 9 multivalued features,
binary treatments and *exposure* (cost) / *conversion* (revenue)
labels.  The analog encodes: 25 discrete features as small-cardinality
integer codes (standardised), and each multivalued feature as the
count of active tags drawn from a per-row Poisson — the standard
count-encoding of multivalued categorical fields — giving a 34-column
numeric design.
"""

from __future__ import annotations

import numpy as np

from repro.data.rct import RCTDataset
from repro.data.synthetic import SyntheticRCTConfig, generate_rct
from repro.utils.rng import as_generator

__all__ = ["alibaba_lift", "ALIBABA_CONFIG"]

ALIBABA_CONFIG = SyntheticRCTConfig(
    roi_low=0.12,
    roi_high=0.88,
    cost_low=0.05,
    cost_high=0.40,
    base_cost_rate=0.40,    # exposure rate
    base_revenue_rate=0.18,  # conversion rate
    p_treat=0.5,
    noise_scale=0.3,
)


def alibaba_lift(
    n: int = 20000,
    random_state: int | np.random.Generator | None = None,
) -> RCTDataset:
    """Generate the Alibaba-LIFT analog.

    Returns
    -------
    RCTDataset
        34 columns: 25 standardised discrete codes (``disc0..disc24``,
        cardinalities 2–20) and 9 multivalued-tag counts
        (``multi0..multi8``); ``y_c`` = exposure, ``y_r`` = conversion.
    """
    if n < 10:
        raise ValueError(f"n must be >= 10, got {n}")
    rng = as_generator(random_state)
    n_discrete = 25
    n_multi = 9

    structure = np.random.default_rng(20211156)
    cardinalities = structure.integers(2, 21, size=n_discrete)
    # a latent user-intent factor correlates the discrete codes so the
    # features carry shared signal like real profile attributes
    intent = rng.normal(size=n)
    discrete = np.empty((n, n_discrete))
    for j, card in enumerate(cardinalities):
        cuts = np.linspace(-2.5, 2.5, int(card) - 1) if card > 1 else np.array([])
        noisy = intent * 0.7 + rng.normal(size=n)
        codes = np.searchsorted(cuts, noisy)
        # standardise the code so scale is comparable across features
        discrete[:, j] = (codes - codes.mean()) / max(codes.std(), 1e-9)

    # multivalued features: tag counts, Poisson with intent-driven rate
    rates = np.exp(0.4 * intent[:, None] + structure.normal(0.0, 0.3, size=(1, n_multi)))
    multi = rng.poisson(rates).astype(float)
    multi = (multi - multi.mean(axis=0)) / np.maximum(multi.std(axis=0), 1e-9)

    x = np.hstack([discrete, multi])
    feature_names = [f"disc{i}" for i in range(n_discrete)] + [
        f"multi{i}" for i in range(n_multi)
    ]
    return generate_rct(
        n,
        x,
        ALIBABA_CONFIG,
        random_state=rng,
        name="alibaba",
        feature_names=feature_names,
    )

"""The paper's four experimental settings (§V-A).

Settings are the cross product of data sufficiency and covariate shift
between the training set and the calibration/test sets:

* **SuNo** — Sufficient data, No covariate shift;
* **SuCo** — Sufficient data, Covariate shift;
* **InNo** — Insufficient data (0.15 subsample), No covariate shift;
* **InCo** — Insufficient data, Covariate shift.

Per the paper: "the insufficient dataset are randomly taken from the
sufficient dataset with a 0.15 sample rate" and "the covariate shift
... is achieved by altering the distribution of the features only in
the calibration and test sets" — the training set always keeps the
base distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.alibaba import alibaba_lift
from repro.data.criteo import criteo_uplift_v2
from repro.data.meituan import meituan_lift
from repro.data.rct import RCTDataset
from repro.data.shift import exponential_tilt_shift
from repro.utils.rng import as_generator

__all__ = [
    "SETTING_NAMES",
    "DATASET_NAMES",
    "SettingData",
    "iter_dataset_chunks",
    "load_dataset",
    "make_setting",
]

SETTING_NAMES = ("SuNo", "SuCo", "InNo", "InCo")
DATASET_NAMES = ("criteo", "meituan", "alibaba")

_GENERATORS = {
    "criteo": criteo_uplift_v2,
    "meituan": meituan_lift,
    "alibaba": alibaba_lift,
}

INSUFFICIENT_RATE = 0.15


@dataclass
class SettingData:
    """Train / calibration / test triple for one experimental setting.

    The calibration set plays the role of the paper's "one or two day
    RCT collected right before deployment": it always shares the test
    set's distribution (Assumption 6), shifted or not.
    """

    train: RCTDataset
    calibration: RCTDataset
    test: RCTDataset
    dataset: str
    setting: str

    @property
    def has_shift(self) -> bool:
        return self.setting.endswith("Co")

    @property
    def is_sufficient(self) -> bool:
        return self.setting.startswith("Su")


def load_dataset(
    name: str, n: int, random_state: int | np.random.Generator | None = None
) -> RCTDataset:
    """Generate one of the three analogs by name."""
    if name not in _GENERATORS:
        raise ValueError(f"Unknown dataset {name!r}; choose from {DATASET_NAMES}")
    return _GENERATORS[name](n, random_state=random_state)


def iter_dataset_chunks(
    name: str,
    n: int,
    chunk_size: int = 250_000,
    random_state: int | np.random.Generator | None = None,
):
    """Yield dataset chunks until at least ``n`` rows have been produced.

    Million-user cohorts cannot afford the one-shot generators' habit of
    materialising an oversample pool several times the target size (the
    meituan analog keeps only ~40% of generated rows).  This generator
    itself holds only one chunk at a time (consumers that accumulate the
    yielded chunks pay for what they keep): it draws ``chunk_size``-row batches,
    yields whatever each batch actually produced, and adapts the next
    request to the yield rate observed so far, so under-producing
    generators converge in a handful of tail chunks instead of guessing
    a global oversample factor.

    Parameters
    ----------
    name:
        Dataset analog name (see :data:`DATASET_NAMES`).
    n:
        Total rows required across all yielded chunks (the final chunk
        may overshoot; the consumer trims).
    chunk_size:
        Upper bound on any single generator request.
    random_state:
        Seed/generator; chunks continue one stream.

    Yields
    ------
    RCTDataset
        Chunks whose row counts sum to >= ``n``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if chunk_size < 50:
        raise ValueError(f"chunk_size must be >= 50, got {chunk_size}")
    rng = as_generator(random_state)
    produced = 0
    requested = 0
    n_chunks = 0
    # generous cap: even a 10%-yield generator fits well inside it
    max_chunks = 20 * (n // chunk_size + 1) + 10
    while produced < n:
        if n_chunks >= max_chunks:
            raise RuntimeError(
                f"Chunked generation of {name!r} produced {produced} < {n} "
                f"rows after {n_chunks} chunks — generator yield too low"
            )
        yield_rate = produced / requested if requested else 1.0
        # floor of 50: every generator accepts it (meituan needs >= 25),
        # so a tiny tail shortfall can't produce an invalid request
        request = min(chunk_size, max(50, int(np.ceil((n - produced) / max(yield_rate, 0.05)))))
        chunk = load_dataset(name, request, random_state=rng)
        requested += request
        produced += chunk.n
        n_chunks += 1
        yield chunk


def make_setting(
    dataset: str,
    setting: str,
    n_sufficient: int = 12000,
    calibration_fraction: float = 0.15,
    test_fraction: float = 0.35,
    shift_strength: float = 1.2,
    random_state: int | np.random.Generator | None = None,
) -> SettingData:
    """Build the train/calibration/test triple of one Table-I cell.

    Parameters
    ----------
    dataset:
        ``"criteo"``, ``"meituan"`` or ``"alibaba"``.
    setting:
        ``"SuNo"``, ``"SuCo"``, ``"InNo"`` or ``"InCo"``.
    n_sufficient:
        Base corpus size; the *train* split of an ``In*`` setting is a
        0.15 subsample of the sufficient train split (paper protocol).
    calibration_fraction, test_fraction:
        Split fractions of the base corpus (the rest trains).
    shift_strength:
        Exponential-tilt strength applied to calibration+test in
        ``*Co`` settings.
    random_state:
        Seed/generator; each stage derives an independent stream.

    Returns
    -------
    SettingData
    """
    if setting not in SETTING_NAMES:
        raise ValueError(f"Unknown setting {setting!r}; choose from {SETTING_NAMES}")
    if calibration_fraction + test_fraction >= 1.0:
        raise ValueError("calibration_fraction + test_fraction must be < 1")
    rng = as_generator(random_state)

    # calibration/test are drawn from 2x pools so the *Co settings can
    # tilt-subsample (without replacement) down to the same sizes the
    # *No settings get — the corpus is enlarged accordingly.
    pool_factor = 1.0 + calibration_fraction + test_fraction
    # meituan keeps ~40% of generated rows after binarisation; oversample
    oversample = 2.6 if dataset == "meituan" else 1.0
    n_corpus = int(np.ceil(n_sufficient * pool_factor))
    corpus = load_dataset(dataset, int(n_corpus * oversample), random_state=rng)
    if corpus.n > n_corpus:
        corpus = corpus.subset(np.arange(n_corpus))

    train_fraction = (1.0 - calibration_fraction - test_fraction) / pool_factor
    calib_pool_fraction = 2.0 * calibration_fraction / pool_factor
    test_pool_fraction = 2.0 * test_fraction / pool_factor
    train, calib_pool, test_pool = corpus.split(
        (train_fraction, calib_pool_fraction, test_pool_fraction), random_state=rng
    )

    if setting.startswith("In"):
        train = train.sample_fraction(INSUFFICIENT_RATE, random_state=rng)

    if setting.endswith("Co"):
        calibration = exponential_tilt_shift(
            calib_pool, strength=shift_strength, n_out=calib_pool.n // 2, random_state=rng
        )
        test = exponential_tilt_shift(
            test_pool, strength=shift_strength, n_out=test_pool.n // 2, random_state=rng
        )
    else:
        calibration = calib_pool.sample_fraction(0.5, random_state=rng)
        test = test_pool.sample_fraction(0.5, random_state=rng)

    return SettingData(
        train=train,
        calibration=calibration,
        test=test,
        dataset=dataset,
        setting=setting,
    )

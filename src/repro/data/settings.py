"""The paper's four experimental settings (§V-A).

Settings are the cross product of data sufficiency and covariate shift
between the training set and the calibration/test sets:

* **SuNo** — Sufficient data, No covariate shift;
* **SuCo** — Sufficient data, Covariate shift;
* **InNo** — Insufficient data (0.15 subsample), No covariate shift;
* **InCo** — Insufficient data, Covariate shift.

Per the paper: "the insufficient dataset are randomly taken from the
sufficient dataset with a 0.15 sample rate" and "the covariate shift
... is achieved by altering the distribution of the features only in
the calibration and test sets" — the training set always keeps the
base distribution.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.data.alibaba import alibaba_lift
from repro.data.criteo import criteo_uplift_v2
from repro.data.meituan import meituan_lift
from repro.data.rct import RCTDataset
from repro.data.shift import exponential_tilt_shift
from repro.runtime import ExecutionBackend, ProcessBackend, resolve_n_workers
from repro.utils.rng import SeedStream, as_generator

__all__ = [
    "SETTING_NAMES",
    "DATASET_NAMES",
    "SettingData",
    "iter_dataset_chunks",
    "load_dataset",
    "make_setting",
    "resolve_n_workers",
]

SETTING_NAMES = ("SuNo", "SuCo", "InNo", "InCo")
DATASET_NAMES = ("criteo", "meituan", "alibaba")

_GENERATORS = {
    "criteo": criteo_uplift_v2,
    "meituan": meituan_lift,
    "alibaba": alibaba_lift,
}

INSUFFICIENT_RATE = 0.15


@dataclass
class SettingData:
    """Train / calibration / test triple for one experimental setting.

    The calibration set plays the role of the paper's "one or two day
    RCT collected right before deployment": it always shares the test
    set's distribution (Assumption 6), shifted or not.
    """

    train: RCTDataset
    calibration: RCTDataset
    test: RCTDataset
    dataset: str
    setting: str

    @property
    def has_shift(self) -> bool:
        return self.setting.endswith("Co")

    @property
    def is_sufficient(self) -> bool:
        return self.setting.startswith("Su")


def load_dataset(
    name: str, n: int, random_state: int | np.random.Generator | None = None
) -> RCTDataset:
    """Generate one of the three analogs by name."""
    if name not in _GENERATORS:
        raise ValueError(f"Unknown dataset {name!r}; choose from {DATASET_NAMES}")
    return _GENERATORS[name](n, random_state=random_state)


def _generate_chunk(name: str, request: int, seed: int) -> RCTDataset:
    """One chunk, a pure function of ``(name, request, seed)``.

    Module-level (and seeded by a plain int) so a
    :class:`~concurrent.futures.ProcessPoolExecutor` can run it in any
    worker, in any order, and still produce exactly the rows the serial
    path would.
    """
    return load_dataset(name, request, random_state=seed)


def _next_request(n: int, produced: int, requested: int, chunk_size: int) -> int:
    """Request size for the next chunk, given all completed chunks so far.

    Adapts to the yield rate observed so far, so under-producing
    generators (meituan keeps ~40% of rows) converge in a handful of
    tail chunks instead of guessing a global oversample factor.  The
    floor of 50 keeps a tiny tail shortfall from producing a request
    below any generator's minimum (meituan needs >= 25).
    """
    yield_rate = produced / requested if requested else 1.0
    return min(chunk_size, max(50, int(np.ceil((n - produced) / max(yield_rate, 0.05)))))


def _check_chunk_cap(name: str, n: int, produced: int, n_chunks: int, max_chunks: int) -> None:
    if n_chunks >= max_chunks:
        raise RuntimeError(
            f"Chunked generation of {name!r} produced {produced} < {n} "
            f"rows after {n_chunks} chunks — generator yield too low"
        )


def iter_dataset_chunks(
    name: str,
    n: int,
    chunk_size: int = 250_000,
    random_state: int | np.random.Generator | None = None,
    parallel: bool = False,
    n_workers: int | None = None,
    backend: ExecutionBackend | None = None,
):
    """Yield dataset chunks until at least ``n`` rows have been produced.

    Million-user cohorts cannot afford the one-shot generators' habit of
    materialising an oversample pool several times the target size (the
    meituan analog keeps only ~40% of generated rows).  This generator
    itself holds only one chunk at a time (consumers that accumulate the
    yielded chunks pay for what they keep): it draws ``chunk_size``-row batches,
    yields whatever each batch actually produced, and adapts the next
    request to the yield rate observed so far, so under-producing
    generators converge in a handful of tail chunks instead of guessing
    a global oversample factor.

    Chunk ``i`` is a pure function of ``(name, request_i, seed_i)``
    where ``seed_i`` comes from a :class:`~repro.utils.rng.SeedStream`
    substream — chunks are independent of each other and of execution
    order.  Fan-out exploits that: full-size chunks are generated
    speculatively on an :class:`~repro.runtime.ExecutionBackend` and
    consumed in index order, falling back to an in-process draw for
    the adaptive tail chunk whose request depends on the observed yield.
    The yielded chunks are **bit-identical** to the serial path's.

    Passing ``backend=`` is the preferred spelling: the pool it wraps
    is *reused* across calls (one startup per run, however many days'
    cohorts stream through it), and a
    :class:`~repro.runtime.ThreadBackend` sidesteps chunk pickling
    entirely.  The legacy ``parallel=True`` spelling still works but
    creates — and tears down — a private process pool per call.

    Parameters
    ----------
    name:
        Dataset analog name (see :data:`DATASET_NAMES`).
    n:
        Total rows required across all yielded chunks (the final chunk
        may overshoot; the consumer trims).
    chunk_size:
        Upper bound on any single generator request.
    random_state:
        Seed/generator.  Exactly one draw is consumed from a passed
        generator (to derive the chunk substream root), identically in
        serial and parallel mode — do not otherwise rely on the
        generator's position afterwards.
    parallel:
        Legacy switch: generate chunks on a private, per-call process
        pool (same output, less wall time).  Ignored when ``backend``
        is given.
    n_workers:
        Pool size when ``parallel`` (``None`` → all visible CPUs).
    backend:
        A shared :class:`~repro.runtime.ExecutionBackend` to fan
        chunks out on.  The backend is *not* shut down by this
        generator, so one pool can serve every call of a multi-day
        run.  A backend with ``n_workers == 1`` (e.g.
        :class:`~repro.runtime.SerialBackend`) takes the serial path.

    Yields
    ------
    RCTDataset
        Chunks whose row counts sum to >= ``n``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if chunk_size < 50:
        raise ValueError(f"chunk_size must be >= 50, got {chunk_size}")
    if name not in _GENERATORS:
        raise ValueError(f"Unknown dataset {name!r}; choose from {DATASET_NAMES}")
    if parallel or n_workers is not None:
        warnings.warn(
            "iter_dataset_chunks(parallel=..., n_workers=...) is deprecated; pass a "
            "shared backend= (e.g. repro.runtime.ProcessBackend) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    workers = resolve_n_workers(n_workers)
    seeds = SeedStream(random_state)
    # generous cap: even a 10%-yield generator fits well inside it
    max_chunks = 20 * (n // chunk_size + 1) + 10
    if backend is not None and backend.n_workers > 1 and n > chunk_size:
        yield from _iter_chunks_parallel(name, n, chunk_size, seeds, backend, max_chunks)
    elif backend is None and parallel and workers > 1 and n > chunk_size:
        # legacy spelling: a private pool, torn down when the iterator ends
        with ProcessBackend(workers) as owned:
            yield from _iter_chunks_parallel(name, n, chunk_size, seeds, owned, max_chunks)
    else:
        yield from _iter_chunks_serial(name, n, chunk_size, seeds, max_chunks)


def _iter_chunks_serial(name, n, chunk_size, seeds, max_chunks):
    produced = 0
    requested = 0
    n_chunks = 0
    while produced < n:
        _check_chunk_cap(name, n, produced, n_chunks, max_chunks)
        request = _next_request(n, produced, requested, chunk_size)
        chunk = _generate_chunk(name, request, seeds.seed(n_chunks))
        requested += request
        produced += chunk.n
        n_chunks += 1
        yield chunk


def _iter_chunks_parallel(name, n, chunk_size, seeds, backend, max_chunks):
    """Speculative parallel execution of the serial chunk schedule.

    Every non-tail chunk of the serial schedule requests exactly
    ``chunk_size`` rows, so those can be submitted ahead of time; only
    a chunk whose adaptive request turns out to differ (the tail, once
    the remaining need shrinks below a full chunk) is recomputed
    in-process with the correct request.  Consuming results strictly in
    index order with per-index substream seeds makes the yielded
    sequence bit-identical to :func:`_iter_chunks_serial`.

    The ``backend`` is borrowed, never shut down here — speculative
    futures that outlive the iterator are cancelled, and the pool
    stays warm for the caller's next chunked draw.
    """
    produced = 0
    requested = 0
    n_chunks = 0
    window = backend.n_workers + 1  # keep the pool busy while the tail is consumed
    pending: dict[int, object] = {}
    next_submit = 0
    try:
        while produced < n:
            _check_chunk_cap(name, n, produced, n_chunks, max_chunks)
            request = _next_request(n, produced, requested, chunk_size)
            if request == chunk_size:
                # speculate no further ahead than the observed yield rate
                # says is needed — over-submitting would generate chunks
                # past the stopping index only to discard them (and
                # block on them at shutdown)
                yield_rate = produced / requested if requested else 1.0
                expected_remaining = int(
                    np.ceil((n - produced) / (chunk_size * max(yield_rate, 0.05)))
                )
                while next_submit < n_chunks + min(window, expected_remaining):
                    pending[next_submit] = backend.submit(
                        _generate_chunk, name, chunk_size, seeds.seed(next_submit)
                    )
                    next_submit += 1
                chunk = pending.pop(n_chunks).result()
            else:
                # adaptive tail: the schedule's request differs from the
                # speculated full-size draw, so generate it in-process
                # (and drop the speculative result if one was submitted)
                future = pending.pop(n_chunks, None)
                if future is not None:
                    future.cancel()
                chunk = _generate_chunk(name, request, seeds.seed(n_chunks))
            requested += request
            produced += chunk.n
            n_chunks += 1
            yield chunk
    finally:
        for future in pending.values():
            future.cancel()


def make_setting(
    dataset: str,
    setting: str,
    n_sufficient: int = 12000,
    calibration_fraction: float = 0.15,
    test_fraction: float = 0.35,
    shift_strength: float = 1.2,
    random_state: int | np.random.Generator | None = None,
) -> SettingData:
    """Build the train/calibration/test triple of one Table-I cell.

    Parameters
    ----------
    dataset:
        ``"criteo"``, ``"meituan"`` or ``"alibaba"``.
    setting:
        ``"SuNo"``, ``"SuCo"``, ``"InNo"`` or ``"InCo"``.
    n_sufficient:
        Base corpus size; the *train* split of an ``In*`` setting is a
        0.15 subsample of the sufficient train split (paper protocol).
    calibration_fraction, test_fraction:
        Split fractions of the base corpus (the rest trains).
    shift_strength:
        Exponential-tilt strength applied to calibration+test in
        ``*Co`` settings.
    random_state:
        Seed/generator; each stage derives an independent stream.

    Returns
    -------
    SettingData
    """
    if setting not in SETTING_NAMES:
        raise ValueError(f"Unknown setting {setting!r}; choose from {SETTING_NAMES}")
    if calibration_fraction + test_fraction >= 1.0:
        raise ValueError("calibration_fraction + test_fraction must be < 1")
    rng = as_generator(random_state)

    # calibration/test are drawn from 2x pools so the *Co settings can
    # tilt-subsample (without replacement) down to the same sizes the
    # *No settings get — the corpus is enlarged accordingly.
    pool_factor = 1.0 + calibration_fraction + test_fraction
    # meituan keeps ~40% of generated rows after binarisation; oversample
    oversample = 2.6 if dataset == "meituan" else 1.0
    n_corpus = int(np.ceil(n_sufficient * pool_factor))
    corpus = load_dataset(dataset, int(n_corpus * oversample), random_state=rng)
    if corpus.n > n_corpus:
        corpus = corpus.subset(np.arange(n_corpus))

    train_fraction = (1.0 - calibration_fraction - test_fraction) / pool_factor
    calib_pool_fraction = 2.0 * calibration_fraction / pool_factor
    test_pool_fraction = 2.0 * test_fraction / pool_factor
    train, calib_pool, test_pool = corpus.split(
        (train_fraction, calib_pool_fraction, test_pool_fraction), random_state=rng
    )

    if setting.startswith("In"):
        train = train.sample_fraction(INSUFFICIENT_RATE, random_state=rng)

    if setting.endswith("Co"):
        calibration = exponential_tilt_shift(
            calib_pool, strength=shift_strength, n_out=calib_pool.n // 2, random_state=rng
        )
        test = exponential_tilt_shift(
            test_pool, strength=shift_strength, n_out=test_pool.n // 2, random_state=rng
        )
    else:
        calibration = calib_pool.sample_fraction(0.5, random_state=rng)
        test = test_pool.sample_fraction(0.5, random_state=rng)

    return SettingData(
        train=train,
        calibration=calibration,
        test=test,
        dataset=dataset,
        setting=setting,
    )

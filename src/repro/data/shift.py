"""Covariate shift by exponential-tilting importance resampling.

The paper's Fig. 2 definition: the marginal of ``X`` changes from ``P``
to ``P_test`` while ``Y | X`` stays fixed.  Resampling whole rows with
weights ``w(x) ∝ exp(strength · d(x))`` for a shift direction ``d``
changes only the feature marginal — each kept row carries its original
outcomes, so the conditional law is untouched by construction (this is
exactly "altering the distribution of the features only in the
calibration and test sets", §V-A).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.data.rct import RCTDataset
from repro.utils.rng import as_generator

__all__ = ["concept_drift", "exponential_tilt_shift", "shift_direction"]


def shift_direction(dataset: RCTDataset, kind: str = "first_features") -> np.ndarray:
    """A deterministic unit shift direction for a dataset.

    ``"first_features"`` tilts along the mean of the first quarter of
    the features (the informative block of every analog — the
    office-worker/tourist axis of the paper's running example);
    ``"random"`` draws a fixed random direction from the dataset name.
    """
    d = dataset.n_features
    if kind == "first_features":
        direction = np.zeros(d)
        k = max(2, d // 4)
        direction[:k] = 1.0
    elif kind == "random":
        # zlib.crc32 is process-stable, unlike hash() which is salted per run
        rng = np.random.default_rng(zlib.crc32((dataset.name + "-shift").encode("utf-8")))
        direction = rng.normal(size=d)
    else:
        raise ValueError(f"Unknown shift direction kind {kind!r}")
    norm = float(np.linalg.norm(direction))
    if norm == 0:
        raise ValueError("Shift direction collapsed to zero")
    return direction / norm


def exponential_tilt_shift(
    dataset: RCTDataset,
    strength: float = 1.0,
    n_out: int | None = None,
    direction: np.ndarray | None = None,
    random_state: int | np.random.Generator | None = None,
) -> RCTDataset:
    """Subsample ``dataset`` rows with weights ``∝ exp(strength · z(x))``.

    Rows are drawn **without replacement** so every kept row is unique
    — resampling with replacement would duplicate rows, collapse the
    effective sample size, and corrupt difference-in-means estimates on
    the shifted sample.  A meaningful tilt therefore requires
    ``n_out`` well below the input size; the default keeps half.

    Parameters
    ----------
    dataset:
        Source RCT sample (acts as the proposal pool).
    strength:
        Tilt strength; 0 reduces to a uniform subsample, larger values
        concentrate mass on rows with a high projected feature score.
    n_out:
        Output size (defaults to half the input; must be <= input).
    direction:
        Unit vector in feature space; defaults to
        :func:`shift_direction` (``"first_features"``).
    random_state:
        Seed/generator for the subsampling.

    Returns
    -------
    RCTDataset
        Shifted sample; ``Y | X`` (and the ground-truth effects, which
        are functions of ``x``) ride along with each kept row.
    """
    if strength < 0:
        raise ValueError(f"strength must be >= 0, got {strength}")
    rng = as_generator(random_state)
    n = dataset.n
    m = n_out if n_out is not None else n // 2
    if m < 1:
        raise ValueError(f"n_out must be >= 1, got {m}")
    if m > n:
        raise ValueError(f"n_out ({m}) cannot exceed the pool size ({n})")
    if direction is None:
        direction = shift_direction(dataset)
    direction = np.asarray(direction, dtype=float).ravel()
    if direction.shape[0] != dataset.n_features:
        raise ValueError(
            f"direction has {direction.shape[0]} entries, expected {dataset.n_features}"
        )

    z = dataset.x @ direction
    z = (z - z.mean()) / max(float(z.std()), 1e-9)
    logits = strength * z
    logits -= logits.max()  # stabilise
    weights = np.exp(logits)
    weights /= weights.sum()
    idx = rng.choice(n, size=m, replace=False, p=weights)
    shifted = dataset.subset(idx)
    shifted.name = f"{dataset.name}-shifted"
    return shifted


def concept_drift(
    dataset: RCTDataset,
    strength: float = 1.0,
    direction: np.ndarray | None = None,
) -> RCTDataset:
    """Change ``Y | X`` deterministically: tilt ``τ_r`` as a function of x.

    The complement of :func:`exponential_tilt_shift`.  Covariate shift
    moves the feature marginal and leaves the conditional law alone — a
    model fitted before the shift stays *correct*, just evaluated on
    different traffic.  Concept drift is the failure mode retraining
    exists for: the same users respond differently, so a frozen model's
    ranking is now simply wrong.

    Here the revenue effect is rescaled along a feature direction::

        τ_r'(x) = clip(τ_r(x) · exp(-strength · z(x)),  ε,  τ_c(x)·(1-ε))

    where ``z`` is the standardised projection of ``x`` onto
    ``direction``.  High-``z`` users (the ones an in-distribution model
    learned to favour) lose revenue response and low-``z`` users gain
    it, so the pre-drift ROI ranking inverts along the drift axis.
    Realised treated revenue moves with the effect
    (``y_r' = y_r + t·(τ_r' - τ_r)``), ``roi`` is recomputed, costs are
    untouched, and the clip keeps Assumption 3 (``roi ∈ (0, 1)``).

    The transform is a pure function of each row — no randomness — so
    two cohorts drawn with common random numbers stay CRN-paired after
    drift, which is what lets a retraining-vs-frozen comparison use
    paired differences.
    """
    if strength < 0:
        raise ValueError(f"strength must be >= 0, got {strength}")
    if direction is None:
        direction = shift_direction(dataset)
    direction = np.asarray(direction, dtype=float).ravel()
    if direction.shape[0] != dataset.n_features:
        raise ValueError(
            f"direction has {direction.shape[0]} entries, expected {dataset.n_features}"
        )
    eps = 1e-6
    z = dataset.x @ direction
    z = (z - z.mean()) / max(float(z.std()), 1e-9)
    factor = np.exp(-strength * z)
    tau_r = np.clip(dataset.tau_r * factor, eps, dataset.tau_c * (1.0 - eps))
    y_r = dataset.y_r + dataset.t * (tau_r - dataset.tau_r)
    drifted = RCTDataset(
        x=dataset.x,
        t=dataset.t,
        y_r=y_r,
        y_c=dataset.y_c,
        tau_r=tau_r,
        tau_c=dataset.tau_c,
        roi=tau_r / dataset.tau_c,
        name=f"{dataset.name}-drifted",
        feature_names=list(dataset.feature_names),
    )
    return drifted

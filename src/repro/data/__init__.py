"""Data substrate: synthetic RCT analogs of the paper's three datasets.

The real CRITEO-UPLIFT v2 / Meituan-LIFT / Alibaba-LIFT corpora are
multi-million-row downloads unavailable offline, so this package
provides *structurally matched* generators with known ground truth
(``τ_r(x) > 0``, ``τ_c(x) > 0``, ``roi(x) ∈ (0,1)`` — Assumptions 3–4),
the same feature counts and outcome semantics, plus the covariate-shift
and sufficiency machinery the paper's four experimental settings need.
See DESIGN.md §1 for the substitution rationale.
"""

from repro.data.alibaba import alibaba_lift
from repro.data.criteo import criteo_uplift_v2
from repro.data.meituan import meituan_lift
from repro.data.multi import MultiTreatmentRCT, multi_treatment_rct
from repro.data.rct import RCTDataset
from repro.data.settings import (
    SETTING_NAMES,
    SettingData,
    iter_dataset_chunks,
    load_dataset,
    make_setting,
)
from repro.data.shift import exponential_tilt_shift
from repro.data.synthetic import SyntheticRCTConfig, generate_rct

__all__ = [
    "MultiTreatmentRCT",
    "RCTDataset",
    "multi_treatment_rct",
    "SETTING_NAMES",
    "SettingData",
    "SyntheticRCTConfig",
    "alibaba_lift",
    "criteo_uplift_v2",
    "exponential_tilt_shift",
    "generate_rct",
    "iter_dataset_chunks",
    "load_dataset",
    "make_setting",
    "meituan_lift",
]

"""Multi-level-treatment RCT generator.

Supports the paper's §VI Divide-and-Conquer discussion: treatments
``t ∈ {0, 1, …, K}`` where 0 is control and each positive level is a
stronger (more expensive, more effective) intervention — e.g. coupon
face values.  Level ``k``'s effects scale the structural binary effects
by a level multiplier with diminishing ROI: doubling the incentive
less-than-doubles the incremental revenue, the standard dose-response
shape in incentive marketing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.rct import RCTDataset
from repro.data.synthetic import SyntheticRCTConfig, generate_rct
from repro.utils.rng import as_generator

__all__ = ["MultiTreatmentRCT", "multi_treatment_rct"]


@dataclass
class MultiTreatmentRCT:
    """An RCT with control plus ``n_levels`` treatment intensities.

    Attributes
    ----------
    x:
        Features ``(n, d)``.
    t:
        Assigned level ``(n,)`` in ``{0, …, n_levels}`` (0 = control).
    y_r, y_c:
        Realised outcomes under the assigned level.
    tau_r, tau_c:
        Ground-truth per-level effects, shape ``(n, n_levels)`` —
        column ``k-1`` is level ``k``'s effect vs control.
    roi:
        Ground-truth per-level ROI, shape ``(n, n_levels)``.
    """

    x: np.ndarray
    t: np.ndarray
    y_r: np.ndarray
    y_c: np.ndarray
    tau_r: np.ndarray
    tau_c: np.ndarray
    roi: np.ndarray
    name: str = "multi"
    feature_names: list[str] = field(default_factory=list)

    @property
    def n(self) -> int:
        return int(self.x.shape[0])

    @property
    def n_levels(self) -> int:
        return int(self.tau_r.shape[1])

    def binary_view(self, level: int) -> RCTDataset:
        """The Divide-and-Conquer slice: control vs one level.

        Keeps rows assigned level 0 or ``level`` and relabels the
        treatment to binary — exactly the decomposition §VI prescribes
        ("each binary treatment problem can use the rDRP method").
        """
        if not 1 <= level <= self.n_levels:
            raise ValueError(f"level must be in [1, {self.n_levels}], got {level}")
        keep = (self.t == 0) | (self.t == level)
        idx = np.nonzero(keep)[0]
        return RCTDataset(
            x=self.x[idx],
            t=(self.t[idx] == level).astype(np.int64),
            y_r=self.y_r[idx],
            y_c=self.y_c[idx],
            tau_r=self.tau_r[idx, level - 1],
            tau_c=self.tau_c[idx, level - 1],
            roi=self.roi[idx, level - 1],
            name=f"{self.name}-level{level}",
            feature_names=list(self.feature_names),
        )


def multi_treatment_rct(
    n: int = 20000,
    n_levels: int = 3,
    d: int = 10,
    config: SyntheticRCTConfig | None = None,
    random_state: int | np.random.Generator | None = None,
    name: str = "multi",
) -> MultiTreatmentRCT:
    """Generate a control + ``n_levels`` RCT with diminishing-ROI levels.

    Level ``k`` scales the binary cost effect by ``k`` and the revenue
    effect by ``k^0.7`` (concave dose response), so higher levels cost
    proportionally more but return less per unit — giving the allocator
    a real level-selection problem.
    """
    if n_levels < 1:
        raise ValueError(f"n_levels must be >= 1, got {n_levels}")
    if n < 10 * (n_levels + 1):
        raise ValueError(f"n too small for {n_levels} levels, got {n}")
    rng = as_generator(random_state)
    cfg = config or SyntheticRCTConfig(
        roi_low=0.1,
        roi_high=0.85,
        cost_low=0.05,
        cost_high=0.25,
        base_cost_rate=0.3,
        base_revenue_rate=0.15,
        p_treat=0.5,
        noise_scale=0.3,
    )
    x = rng.normal(size=(n, d))
    # the level-1 structural effects come from the shared binary model
    base = generate_rct(n, x, cfg, random_state=rng, name=name)

    levels = np.arange(1, n_levels + 1, dtype=float)
    cost_scale = levels  # cost grows linearly with intensity
    revenue_scale = levels**0.7  # concave dose response
    tau_c = np.clip(base.tau_c[:, None] * cost_scale[None, :], 1e-4, 0.95)
    tau_r = np.clip(base.tau_r[:, None] * revenue_scale[None, :], 1e-4, 0.95)
    roi = tau_r / tau_c

    # uniform randomised assignment over {0..K}
    t = rng.integers(0, n_levels + 1, size=n)

    # realise outcomes under the assigned level (control rates from the
    # binary generator's realisation, lifted by the assigned effects)
    u_c = rng.random(n)
    u_r = rng.random(n)
    p_c0 = np.clip(cfg.base_cost_rate + 0.0 * u_c, 1e-4, 1 - 1e-4)
    p_r0 = np.clip(cfg.base_revenue_rate + 0.0 * u_r, 1e-4, 1 - 1e-4)
    assigned = np.maximum(t - 1, 0)
    lift_c = np.where(t > 0, tau_c[np.arange(n), assigned], 0.0)
    lift_r = np.where(t > 0, tau_r[np.arange(n), assigned], 0.0)
    y_c = (u_c < np.clip(p_c0 + lift_c, 1e-4, 1 - 1e-4)).astype(float)
    y_r = (u_r < np.clip(p_r0 + lift_r, 1e-4, 1 - 1e-4)).astype(float)

    return MultiTreatmentRCT(
        x=x,
        t=t.astype(np.int64),
        y_r=y_r,
        y_c=y_c,
        tau_r=tau_r,
        tau_c=tau_c,
        roi=roi,
        name=name,
        feature_names=[f"f{i}" for i in range(d)],
    )

"""repro — *Improve ROI with Causal Learning and Conformal Prediction* (ICDE 2024).

A from-scratch reproduction of the rDRP system: the DRP direct-ROI
uplift model, Monte-Carlo-dropout uncertainty, conformal prediction
intervals, heuristic point-estimate calibration, the full TPM baseline
zoo, synthetic analogs of the paper's three datasets, the AUCC metric,
and a simulated online A/B platform.

Quickstart
----------
>>> from repro import RobustDRP, make_setting, aucc
>>> data = make_setting("criteo", "InCo", random_state=0)
>>> model = RobustDRP(random_state=0)
>>> model.fit(data.train.x, data.train.t, data.train.y_r, data.train.y_c)
>>> model.calibrate(data.calibration.x, data.calibration.t,
...                 data.calibration.y_r, data.calibration.y_c)
>>> froi = model.predict_roi(data.test.x)
>>> aucc(froi, data.test.t, data.test.y_r, data.test.y_c)  # doctest: +SKIP

Online serving (``repro.serving``)
----------------------------------
The offline pipeline above sees the whole cohort at once; production
decisioning happens per request.  :mod:`repro.serving` provides the
online half: a versioned :class:`ModelRegistry` with champion /
challenger rollout, a micro-batching :class:`ScoringEngine` with an
LRU score cache, a streaming :class:`BudgetPacer` that admits users
through an adaptive threshold tracking a daily pacing curve, pluggable
decision policies (greedy-ROI and conformal-gated), and a
:class:`TrafficReplay` harness measuring throughput and the online
policy's revenue against the offline greedy oracle.

>>> from repro import ModelRegistry, ScoringEngine, TrafficReplay, Platform
>>> registry = ModelRegistry()
>>> registry.register(model, promote=True)  # doctest: +SKIP
>>> engine = ScoringEngine(registry, batch_size=64)  # doctest: +SKIP
>>> result = TrafficReplay(Platform(), engine).replay_day(10_000)  # doctest: +SKIP

Execution runtime (``repro.runtime``)
-------------------------------------
One execution layer under everything above: pluggable
:class:`ExecutionBackend` pools (:class:`SerialBackend`,
:class:`ThreadBackend`, :class:`ProcessBackend` — lazily started,
reused across a whole run) fan out chunked cohort generation and make
scoring-engine flushes asynchronous, while :class:`Clock` /
:class:`ManualClock` / ``DeadlineLoop`` put latency deadlines
(``max_latency_ms`` flushing) under exact, simulator-controlled time.
:class:`MultiDayPacer` chains pacing across days with under/over-spend
carryover, and ``TrafficReplay.replay_days`` replays whole campaigns.

Observability (``repro.obs``)
-----------------------------
Every layer above instruments itself onto one metrics/tracing package:
:class:`MetricsRegistry` collects counters, gauges, and log-bucket
:class:`~repro.obs.Histogram` sketches (O(1) record, ~1% quantile
error) whose snapshots merge across shards and diff across days;
clock-aware spans time operations in exact simulated seconds under a
:class:`ManualClock`; exporters cover lossless JSON and the Prometheus
text format.  Pass ``metrics=MetricsRegistry()`` to an engine, pacer,
promoter, backend, or replay to collect — the default null registry
keeps un-instrumented paths bit-identical.  See
``docs/OBSERVABILITY.md``.

Cross-policy replay (``repro.ab.replay``)
-----------------------------------------
:class:`PolicyReplay` compares several policy sets on *identical*
traffic with shared outcome draws (common random numbers): one cohort,
one arm partition, and one per-user cost/reward uniform tensor per day,
so cross-policy uplift deltas are paired and far less noisy than
independent :class:`ABTest` runs — at roughly one run's generation
cost.  See :mod:`repro.ab.replay` for a three-policy example.
"""

from repro.ab import ABTest, Platform, PolicyReplay
from repro.causal import (
    CausalForestUplift,
    DragonNet,
    OffsetNet,
    SLearner,
    SNet,
    TARNet,
    TLearner,
    TwoPhaseMethod,
    XLearner,
    make_tpm,
)
from repro.core import (
    ConformalCalibrator,
    DirectRank,
    DivideAndConquerRDRP,
    DRPModel,
    HeuristicCalibration,
    IsotonicRoiRecalibration,
    RobustDRP,
    RoiStarEstimator,
    binary_search_roi_star,
    bisect_monotone,
    greedy_allocation,
    greedy_allocation_by_roi,
    pav_isotonic,
)
from repro.data import (
    MultiTreatmentRCT,
    RCTDataset,
    alibaba_lift,
    criteo_uplift_v2,
    exponential_tilt_shift,
    make_setting,
    meituan_lift,
    multi_treatment_rct,
)
from repro.metrics import aucc, cost_curve, qini_coefficient
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.runtime import (
    ManualClock,
    ProcessBackend,
    SerialBackend,
    SystemClock,
    ThreadBackend,
)
from repro.serving import (
    AutoPromoter,
    BudgetPacer,
    ConformalGatedPolicy,
    GreedyROIPolicy,
    ModelRegistry,
    MultiDayPacer,
    ScoringEngine,
    TrafficReplay,
)

__version__ = "1.10.0"

__all__ = [
    "ABTest",
    "AutoPromoter",
    "BudgetPacer",
    "CausalForestUplift",
    "ConformalCalibrator",
    "ConformalGatedPolicy",
    "DRPModel",
    "DirectRank",
    "DivideAndConquerRDRP",
    "DragonNet",
    "GreedyROIPolicy",
    "ModelRegistry",
    "MultiTreatmentRCT",
    "multi_treatment_rct",
    "HeuristicCalibration",
    "IsotonicRoiRecalibration",
    "ManualClock",
    "MetricsRegistry",
    "MultiDayPacer",
    "NULL_REGISTRY",
    "OffsetNet",
    "ProcessBackend",
    "ScoringEngine",
    "SerialBackend",
    "SystemClock",
    "ThreadBackend",
    "TrafficReplay",
    "pav_isotonic",
    "Platform",
    "PolicyReplay",
    "RCTDataset",
    "RobustDRP",
    "RoiStarEstimator",
    "SLearner",
    "SNet",
    "TARNet",
    "TLearner",
    "TwoPhaseMethod",
    "XLearner",
    "alibaba_lift",
    "aucc",
    "binary_search_roi_star",
    "bisect_monotone",
    "cost_curve",
    "criteo_uplift_v2",
    "exponential_tilt_shift",
    "greedy_allocation",
    "greedy_allocation_by_roi",
    "make_setting",
    "make_tpm",
    "meituan_lift",
    "qini_coefficient",
    "__version__",
]

"""repro — *Improve ROI with Causal Learning and Conformal Prediction* (ICDE 2024).

A from-scratch reproduction of the rDRP system: the DRP direct-ROI
uplift model, Monte-Carlo-dropout uncertainty, conformal prediction
intervals, heuristic point-estimate calibration, the full TPM baseline
zoo, synthetic analogs of the paper's three datasets, the AUCC metric,
and a simulated online A/B platform.

Quickstart
----------
>>> from repro import RobustDRP, make_setting, aucc
>>> data = make_setting("criteo", "InCo", random_state=0)
>>> model = RobustDRP(random_state=0)
>>> model.fit(data.train.x, data.train.t, data.train.y_r, data.train.y_c)
>>> model.calibrate(data.calibration.x, data.calibration.t,
...                 data.calibration.y_r, data.calibration.y_c)
>>> froi = model.predict_roi(data.test.x)
>>> aucc(froi, data.test.t, data.test.y_r, data.test.y_c)  # doctest: +SKIP
"""

from repro.ab import ABTest, Platform
from repro.causal import (
    CausalForestUplift,
    DragonNet,
    OffsetNet,
    SLearner,
    SNet,
    TARNet,
    TLearner,
    TwoPhaseMethod,
    XLearner,
    make_tpm,
)
from repro.core import (
    ConformalCalibrator,
    DirectRank,
    DivideAndConquerRDRP,
    DRPModel,
    HeuristicCalibration,
    IsotonicRoiRecalibration,
    RobustDRP,
    RoiStarEstimator,
    binary_search_roi_star,
    greedy_allocation,
    greedy_allocation_by_roi,
    pav_isotonic,
)
from repro.data import (
    MultiTreatmentRCT,
    RCTDataset,
    alibaba_lift,
    criteo_uplift_v2,
    exponential_tilt_shift,
    make_setting,
    meituan_lift,
    multi_treatment_rct,
)
from repro.metrics import aucc, cost_curve, qini_coefficient

__version__ = "1.0.0"

__all__ = [
    "ABTest",
    "CausalForestUplift",
    "ConformalCalibrator",
    "DRPModel",
    "DirectRank",
    "DivideAndConquerRDRP",
    "DragonNet",
    "MultiTreatmentRCT",
    "multi_treatment_rct",
    "HeuristicCalibration",
    "IsotonicRoiRecalibration",
    "OffsetNet",
    "pav_isotonic",
    "Platform",
    "RCTDataset",
    "RobustDRP",
    "RoiStarEstimator",
    "SLearner",
    "SNet",
    "TARNet",
    "TLearner",
    "TwoPhaseMethod",
    "XLearner",
    "alibaba_lift",
    "aucc",
    "binary_search_roi_star",
    "cost_curve",
    "criteo_uplift_v2",
    "exponential_tilt_shift",
    "greedy_allocation",
    "greedy_allocation_by_roi",
    "make_setting",
    "make_tpm",
    "meituan_lift",
    "qini_coefficient",
    "__version__",
]

"""Small-sample inference primitives (numpy-only, no scipy).

The replay layer needs Student-t intervals for paired per-day deltas
(a 5-day A/B test gives n=5 i.i.d. deltas — a normal interval would be
badly anti-conservative at that size), and the container deliberately
ships without scipy.  This module implements the minimal chain from
scratch: the regularized incomplete beta function via the standard
Lentz continued fraction, the Student-t CDF through it, the t quantile
by bisection on that CDF, and :func:`mean_confidence_interval` on top.

Accuracy is plenty for inference: ``t_ppf`` matches tabulated critical
values to ~1e-8 (see the pinned tests), and every function is a pure
``float -> float`` with no global state.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Sequence

import numpy as np

__all__ = [
    "MeanCI",
    "betainc",
    "mean_confidence_interval",
    "t_cdf",
    "t_ppf",
    "welch_ci_from_moments",
    "welch_confidence_interval",
]

_MAX_CF_ITER = 300
_CF_EPS = 3e-14
_TINY = 1e-300


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _TINY:
        d = _TINY
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_CF_ITER + 1):
        m2 = 2 * m
        # even step
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        h *= d * c
        # odd step
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _CF_EPS:
            return h
    raise RuntimeError(f"betacf failed to converge for a={a}, b={b}, x={x}")


def betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function ``I_x(a, b)``.

    The continued fraction converges fast for ``x < (a+1)/(a+b+2)``;
    the complementary symmetry ``I_x(a,b) = 1 - I_{1-x}(b,a)`` covers
    the rest (Numerical Recipes §6.4).
    """
    if a <= 0 or b <= 0:
        raise ValueError(f"a and b must be > 0, got a={a}, b={b}")
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x == 0.0 or x == 1.0:
        return float(x)
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def t_cdf(x: float, df: float) -> float:
    """CDF of Student's t with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError(f"df must be > 0, got {df}")
    x = float(x)
    if x == 0.0:
        return 0.5
    tail = 0.5 * betainc(0.5 * df, 0.5, df / (df + x * x))
    return 1.0 - tail if x > 0 else tail


def t_ppf(q: float, df: float) -> float:
    """Quantile (inverse CDF) of Student's t, by bisection on :func:`t_cdf`.

    Exact symmetry ``t_ppf(1-q) = -t_ppf(q)`` is enforced, so two-sided
    intervals are perfectly symmetric.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    if df <= 0:
        raise ValueError(f"df must be > 0, got {df}")
    if q == 0.5:
        return 0.0
    if q < 0.5:
        return -t_ppf(1.0 - q, df)
    hi = 2.0
    while t_cdf(hi, df) < q:  # expand until the quantile is bracketed
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - q astronomically close to 1
            return hi
    lo = 0.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if t_cdf(mid, df) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


class MeanCI(NamedTuple):
    """A two-sided t-interval for a mean: ``mean ± half_width``."""

    mean: float
    lo: float
    hi: float
    half_width: float
    level: float
    n: int

    def excludes_zero(self) -> bool:
        """True when the interval is strictly on one side of zero."""
        return self.lo > 0.0 or self.hi < 0.0


def mean_confidence_interval(samples: Sequence[float], level: float = 0.95) -> MeanCI:
    """Two-sided Student-t interval for the mean of i.i.d. samples.

    ``mean ± t_{1-(1-level)/2, n-1} * sd / sqrt(n)``, the exact
    small-sample interval under normality and the standard asymptotic
    one otherwise.  Degenerate zero-variance samples give a
    zero-width interval at the mean.
    """
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    values = np.asarray(list(samples), dtype=float).ravel()
    n = values.shape[0]
    if n < 2:
        raise ValueError(f"need >= 2 samples for a t-interval, got {n}")
    if np.any(~np.isfinite(values)):
        raise ValueError("samples must be finite")
    mean = float(values.mean())
    sd = float(values.std(ddof=1))
    half = t_ppf(1.0 - 0.5 * (1.0 - level), n - 1) * sd / math.sqrt(n)
    return MeanCI(mean, mean - half, mean + half, half, float(level), n)


def welch_ci_from_moments(
    mean_a: float,
    var_a: float,
    n_a: int,
    mean_b: float,
    var_b: float,
    n_b: int,
    level: float = 0.95,
) -> MeanCI:
    """Welch t-interval for ``mean_a - mean_b`` from streaming moments.

    The two-sample path for *unpaired* data: a champion and a
    challenger serve disjoint keyed traffic slices, so their outcomes
    cannot be paired per user the way
    :meth:`~repro.ab.replay.PolicyReplay.delta_ci` pairs per-day CRN
    deltas.  Welch's unequal-variance interval with the
    Welch–Satterthwaite degrees of freedom is the standard answer, and
    taking sample moments (``var`` with ``ddof=1``) instead of raw
    arrays lets callers keep O(1) streaming ledgers.  ``n`` on the
    returned :class:`MeanCI` is the combined ``n_a + n_b``.

    Degenerate zero-variance arms give a zero-width interval at the
    mean difference (the Satterthwaite formula is 0/0 there).
    """
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    if n_a < 2 or n_b < 2:
        raise ValueError(f"need >= 2 samples per arm, got n_a={n_a}, n_b={n_b}")
    if not (var_a >= 0.0 and var_b >= 0.0):  # rejects NaN too
        raise ValueError(f"variances must be >= 0, got {var_a}, {var_b}")
    if not (math.isfinite(mean_a) and math.isfinite(mean_b)):
        raise ValueError(f"means must be finite, got {mean_a}, {mean_b}")
    delta = float(mean_a) - float(mean_b)
    sa, sb = var_a / n_a, var_b / n_b
    se2 = sa + sb
    if se2 <= 0.0:
        return MeanCI(delta, delta, delta, 0.0, float(level), n_a + n_b)
    df = se2 * se2 / (sa * sa / (n_a - 1) + sb * sb / (n_b - 1))
    half = t_ppf(1.0 - 0.5 * (1.0 - level), df) * math.sqrt(se2)
    return MeanCI(delta, delta - half, delta + half, half, float(level), n_a + n_b)


def welch_confidence_interval(
    a: Sequence[float], b: Sequence[float], level: float = 0.95
) -> MeanCI:
    """Welch t-interval for ``mean(a) - mean(b)`` of two independent samples.

    Array-facing wrapper over :func:`welch_ci_from_moments`; see there
    for when to prefer this over the paired interval.
    """
    xs = np.asarray(a, dtype=float).ravel()
    ys = np.asarray(b, dtype=float).ravel()
    if xs.shape[0] < 2 or ys.shape[0] < 2:
        raise ValueError(
            f"need >= 2 samples per arm, got {xs.shape[0]} and {ys.shape[0]}"
        )
    if np.any(~np.isfinite(xs)) or np.any(~np.isfinite(ys)):
        raise ValueError("samples must be finite")
    return welch_ci_from_moments(
        float(xs.mean()),
        float(xs.var(ddof=1)),
        int(xs.shape[0]),
        float(ys.mean()),
        float(ys.var(ddof=1)),
        int(ys.shape[0]),
        level=level,
    )

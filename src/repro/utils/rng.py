"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``random_state``
argument that may be ``None``, an integer seed, or an existing
:class:`numpy.random.Generator`.  :func:`as_generator` normalises all
three into a ``Generator`` so downstream code never touches the legacy
``numpy.random.*`` global state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SeedStream", "as_generator", "spawn_generators"]


def as_generator(random_state: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` (fresh OS-seeded generator), an ``int`` seed, or an
        existing generator (returned unchanged so callers can share
        a stream).

    Returns
    -------
    numpy.random.Generator
    """
    if random_state is None:
        # the one sanctioned fresh-entropy entry point: as_generator(None)
        # is the documented "I explicitly want OS entropy" escape hatch
        return np.random.default_rng()  # repro: allow[RPR002]
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int, or a numpy.random.Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_generators(random_state: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``random_state``.

    Used by ensemble models (forests, MC-dropout replicates) so each
    member gets an independent stream while the whole ensemble stays
    reproducible from a single seed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = as_generator(random_state)
    seeds = parent.integers(0, np.iinfo(np.int64).max, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]


class SeedStream:
    """Indexable, lazily-extended family of independent child seeds.

    Child ``i`` is a pure function of a single *root* draw and the
    index ``i``, so a work item keyed by its index reproduces
    bit-identically no matter when — or on which worker process — it
    runs.  This is what lets chunked cohort generation fan out across
    a pool while staying byte-for-byte equal to the serial path.

    Construction consumes exactly **one** draw from ``random_state``
    (when a shared :class:`~numpy.random.Generator` is passed), so the
    caller's stream advances the same amount whether the consumer
    spawns two substreams or two thousand.
    """

    _BLOCK = 64  # seeds materialised per extension

    def __init__(self, random_state: int | np.random.Generator | None = None) -> None:
        parent = as_generator(random_state)
        self._root = int(parent.integers(0, np.iinfo(np.int64).max))
        self._seeds = np.empty(0, dtype=np.int64)

    @property
    def root(self) -> int:
        return self._root

    def seed(self, index: int) -> int:
        """The ``index``-th child seed (deterministic in ``root`` and ``index``)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        if index >= self._seeds.shape[0]:
            size = ((index // self._BLOCK) + 1) * self._BLOCK
            # regenerating the whole prefix from the root keeps every
            # previously-handed-out seed stable as the family grows
            self._seeds = np.random.default_rng(self._root).integers(
                0, np.iinfo(np.int64).max, size=size
            )
        return int(self._seeds[index])

    def generator(self, index: int) -> np.random.Generator:
        """A fresh generator on the ``index``-th substream."""
        return np.random.default_rng(self.seed(index))

"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``random_state``
argument that may be ``None``, an integer seed, or an existing
:class:`numpy.random.Generator`.  :func:`as_generator` normalises all
three into a ``Generator`` so downstream code never touches the legacy
``numpy.random.*`` global state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators"]


def as_generator(random_state: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` (fresh OS-seeded generator), an ``int`` seed, or an
        existing generator (returned unchanged so callers can share
        a stream).

    Returns
    -------
    numpy.random.Generator
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int, or a numpy.random.Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_generators(random_state: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``random_state``.

    Used by ensemble models (forests, MC-dropout replicates) so each
    member gets an independent stream while the whole ensemble stays
    reproducible from a single seed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = as_generator(random_state)
    seeds = parent.integers(0, np.iinfo(np.int64).max, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]

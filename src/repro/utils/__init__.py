"""Shared utilities: input validation, RNG handling, numerics.

These helpers are used across every subsystem so that array contracts
(shapes, dtypes, finiteness) are enforced uniformly and randomness is
always threaded through :class:`numpy.random.Generator` objects.
"""

from repro.utils.rng import SeedStream, as_generator, spawn_generators
from repro.utils.stats import (
    MeanCI,
    betainc,
    mean_confidence_interval,
    t_cdf,
    t_ppf,
    welch_ci_from_moments,
    welch_confidence_interval,
)
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_binary,
    check_consistent_length,
    check_in_open_interval,
    check_positive,
    check_probability,
)

__all__ = [
    "MeanCI",
    "SeedStream",
    "as_generator",
    "betainc",
    "mean_confidence_interval",
    "spawn_generators",
    "t_cdf",
    "t_ppf",
    "welch_ci_from_moments",
    "welch_confidence_interval",
    "check_1d",
    "check_2d",
    "check_binary",
    "check_consistent_length",
    "check_in_open_interval",
    "check_positive",
    "check_probability",
]

"""Array-contract validation helpers.

All public model entry points validate their inputs through these
functions so error messages are consistent and failures happen at the
API boundary rather than deep inside numpy broadcasting.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_1d",
    "check_2d",
    "check_binary",
    "check_consistent_length",
    "check_in_open_interval",
    "check_positive",
    "check_probability",
]


def check_2d(x, name: str = "X") -> np.ndarray:
    """Coerce ``x`` to a 2-D float array and verify it is finite."""
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one row")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_1d(y, name: str = "y") -> np.ndarray:
    """Coerce ``y`` to a 1-D float array and verify it is finite."""
    arr = np.asarray(y, dtype=float).ravel()
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one element")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_binary(t, name: str = "treatment") -> np.ndarray:
    """Coerce ``t`` to a 1-D int array containing only {0, 1}."""
    arr = np.asarray(t).ravel()
    uniq = np.unique(arr)
    if not np.all(np.isin(uniq, (0, 1))):
        raise ValueError(f"{name} must be binary (0/1), found values {uniq[:10]}")
    return arr.astype(np.int64)


def check_consistent_length(*arrays, names: tuple[str, ...] | None = None) -> None:
    """Raise if the first dimension differs across ``arrays``."""
    lengths = [np.asarray(a).shape[0] for a in arrays]
    if len(set(lengths)) > 1:
        labels = names if names is not None else tuple(f"array{i}" for i in range(len(arrays)))
        detail = ", ".join(f"{n}={ln}" for n, ln in zip(labels, lengths))
        raise ValueError(f"Inconsistent first dimensions: {detail}")


def check_probability(p: float, name: str = "p") -> float:
    """Verify a scalar lies in the closed interval [0, 1]."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")
    return p


def check_in_open_interval(x: float, low: float, high: float, name: str = "value") -> float:
    """Verify a scalar lies strictly inside ``(low, high)``."""
    x = float(x)
    if not low < x < high:
        raise ValueError(f"{name} must be in the open interval ({low}, {high}), got {x}")
    return x


def check_positive(x: float, name: str = "value", strict: bool = True) -> float:
    """Verify a scalar is positive (strictly by default)."""
    x = float(x)
    if strict and x <= 0:
        raise ValueError(f"{name} must be > 0, got {x}")
    if not strict and x < 0:
        raise ValueError(f"{name} must be >= 0, got {x}")
    return x

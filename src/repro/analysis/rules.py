"""The seven contract rules (RPR001–RPR007).

Each rule machine-checks one architectural contract the codebase
otherwise enforces only by example-based tests and review.  The
contracts themselves (and the rationale behind every exemption) are
documented in ``docs/ANALYSIS.md``; each rule's docstring here is the
normative statement.

Adding a rule: subclass :class:`~repro.analysis.core.Rule`, give it the
next free ``RPRnnn`` code, yield findings from ``check``, append it to
:func:`default_rules`, and add good/bad fixture snippets under
``tests/analysis_fixtures/<code>/``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Module, Rule

__all__ = ["default_rules"] + [f"RPR00{i}" for i in range(1, 8)]


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------
def import_map(module: Module) -> dict[str, str]:
    """Local name -> dotted origin for every import in the module.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``.  Wildcard
    imports are ignored (none exist in this codebase).
    """
    out: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name != "*":
                    out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def dotted(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Resolve ``np.random.normal`` through the import map to
    ``numpy.random.normal``; None when the chain's root is not an
    imported name (a local object's attribute is not our business)."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    origin = imports.get(cur.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def _call_name(node: ast.Call) -> str | None:
    """The attribute name of a method call (``x.submit(...)`` -> ``submit``)."""
    return node.func.attr if isinstance(node.func, ast.Attribute) else None


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


# ---------------------------------------------------------------------------
# RPR001 — clock discipline
# ---------------------------------------------------------------------------
_BANNED_TIME = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
        "sleep",
    }
)
_BANNED_CLOCK = frozenset({f"time.{name}" for name in _BANNED_TIME}) | frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class RPR001(Rule):
    """Clock discipline: components read time through an injected
    :class:`~repro.runtime.Clock`, never the wall clock directly.

    Deterministic replay (a whole simulated day under ``ManualClock``
    in microseconds, with *exact* latency assertions) only works if no
    component can smuggle in ``time.time()`` / ``time.monotonic()`` /
    ``time.sleep()`` / ``datetime.now()``.  ``runtime/clock.py`` is the
    single sanctioned wall-clock reader; everything else takes a
    ``Clock``.  Timestamp *formatting* (``strftime``/``gmtime``) is not
    banned — the contract is about behaviour, not metadata.
    """

    code = "RPR001"
    name = "clock-discipline"
    description = (
        "no direct wall-clock access (time.time/monotonic/sleep, "
        "datetime.now) outside runtime/clock.py — inject a Clock"
    )
    exempt_suffixes = ("runtime/clock.py",)

    def check(self, module: Module) -> Iterator[Finding]:
        imports = import_map(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _BANNED_TIME:
                        yield self.finding(
                            module,
                            node,
                            f"import of wall-clock primitive time.{alias.name} — "
                            "take an injected Clock (repro.runtime) instead",
                        )
            elif isinstance(node, ast.Attribute):
                name = dotted(node, imports)
                if name in _BANNED_CLOCK:
                    yield self.finding(
                        module,
                        node,
                        f"direct wall-clock access {name} — take an injected "
                        "Clock (repro.runtime) instead",
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                name = imports.get(node.id)
                if name in _BANNED_CLOCK:
                    yield self.finding(
                        module,
                        node,
                        f"direct wall-clock access {name} — take an injected "
                        "Clock (repro.runtime) instead",
                    )


# ---------------------------------------------------------------------------
# RPR002 — RNG discipline
# ---------------------------------------------------------------------------
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed", "rand", "randn", "randint", "random_integers", "random_sample",
        "ranf", "sample", "bytes", "choice", "shuffle", "permutation",
        "random", "normal", "uniform", "binomial", "poisson", "beta", "gamma",
        "exponential", "standard_normal", "standard_cauchy",
        "standard_exponential", "standard_gamma", "standard_t", "lognormal",
        "laplace", "logistic", "multinomial", "multivariate_normal",
        "negative_binomial", "geometric", "hypergeometric", "triangular",
        "vonmises", "wald", "weibull", "zipf", "pareto", "rayleigh", "power",
        "gumbel", "chisquare", "noncentral_chisquare", "f", "noncentral_f",
        "dirichlet", "get_state", "set_state", "RandomState",
    }
)


class RPR002(Rule):
    """RNG discipline: every draw flows through a seeded
    :class:`numpy.random.Generator` (``utils.rng``), never the legacy
    global state and never an unseeded ``default_rng()``.

    Common-random-number pairing (PR 3) and bit-identical parallel
    generation both die *silently* on a single global-state draw: the
    results stay plausible, only the variance reduction and the
    determinism are gone.  ``utils/rng.py``'s ``as_generator(None)`` is
    the one sanctioned fresh-entropy entry point (inline-suppressed
    there); everything else must thread a seed or a Generator.
    """

    code = "RPR002"
    name = "rng-discipline"
    description = (
        "no legacy np.random.* global-state calls and no seedless "
        "np.random.default_rng() — thread seeds via utils.rng"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        imports = import_map(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "numpy.random",
                "numpy",
            ):
                for alias in node.names:
                    if node.module == "numpy.random" and alias.name in _LEGACY_NP_RANDOM:
                        yield self.finding(
                            module,
                            node,
                            f"import of legacy numpy.random.{alias.name} — use a "
                            "seeded Generator (utils.rng.as_generator)",
                        )
            elif isinstance(node, ast.Attribute):
                name = dotted(node, imports)
                if (
                    name is not None
                    and name.startswith("numpy.random.")
                    and name.rsplit(".", 1)[1] in _LEGACY_NP_RANDOM
                ):
                    yield self.finding(
                        module,
                        node,
                        f"legacy global-state RNG call {name} — use a seeded "
                        "Generator (utils.rng.as_generator)",
                    )
            elif isinstance(node, ast.Call):
                name = (
                    dotted(node.func, imports)
                    if isinstance(node.func, ast.Attribute)
                    else imports.get(node.func.id)
                    if isinstance(node.func, ast.Name)
                    else None
                )
                if name == "numpy.random.default_rng" and self._seedless(node):
                    yield self.finding(
                        module,
                        node,
                        "seedless np.random.default_rng() — determinism and CRN "
                        "pairing need an explicit seed (or pass the caller's "
                        "Generator through)",
                    )

    @staticmethod
    def _seedless(call: ast.Call) -> bool:
        if call.args:
            arg = call.args[0]
            return isinstance(arg, ast.Constant) and arg.value is None
        for kw in call.keywords:
            if kw.arg == "seed":
                return isinstance(kw.value, ast.Constant) and kw.value.value is None
        return True


# ---------------------------------------------------------------------------
# RPR003 — resource ownership
# ---------------------------------------------------------------------------
def _is_resource_ctor(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and (
            (node.func.id.endswith("Backend") and not node.func.id.startswith("_"))
            or node.func.id == "SharedTensorPool"
        )
    )


class RPR003(Rule):
    """Resource ownership: whoever constructs a backend or a shared
    tensor pool shuts it down — on *all* paths — and nobody shuts down
    a resource they merely borrowed.

    A leaked ``ProcessBackend`` is a stranded worker pool; a leaked
    ``SharedTensorPool`` is a named shared-memory segment that outlives
    the process (the exact failure ``tests/test_shm.py`` hunts).  The
    rule's construction half flags a locally constructed resource that
    neither escapes the function (returned, stored on an object,
    passed onward — ownership transferred) nor is guaranteed release
    via ``with`` / ``try‑finally``.  The borrowing half flags
    ``shutdown()``/``close()`` called on a bare function parameter:
    per the PR‑4 lifetime rule, borrowers never shut down.
    """

    code = "RPR003"
    name = "resource-ownership"
    description = (
        "constructed *Backend/SharedTensorPool must reach shutdown()/"
        "close() on all paths (with/try-finally); borrowed ones never"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, fn)

    def _check_function(self, module: Module, fn: ast.AST) -> Iterator[Finding]:
        # nodes belonging to nested functions are that function's business
        nested: set[int] = set()
        for inner in ast.walk(fn):
            if inner is not fn and isinstance(
                inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                nested.update(id(n) for n in ast.walk(inner) if n is not inner)

        def owned(node: ast.AST) -> bool:
            return id(node) not in nested

        with_managed_calls: set[int] = set()
        with_managed_names: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.With, ast.AsyncWith)) and owned(node):
                for item in node.items:
                    with_managed_calls.add(id(item.context_expr))
                    if isinstance(item.context_expr, ast.Name):
                        with_managed_names.add(item.context_expr.id)

        yield from self._check_constructions(
            module, fn, owned, with_managed_calls, with_managed_names
        )
        yield from self._check_borrowed(module, fn, owned)

    def _check_constructions(
        self, module, fn, owned, with_managed_calls, with_managed_names
    ) -> Iterator[Finding]:
        # name -> ctor assignment node for locally bound resources
        local: dict[str, ast.Assign] = {}
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and owned(node)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_resource_ctor(node.value)
                and id(node.value) not in with_managed_calls
            ):
                local[node.targets[0].id] = node
            elif (
                _is_resource_ctor(node)
                and owned(node)
                and id(node) not in with_managed_calls
            ):
                parent = module.parent(node)
                # a ctor call used directly as an argument / return value /
                # attribute store transfers ownership to the receiver
                if isinstance(parent, ast.Assign) and all(
                    isinstance(t, ast.Name) for t in parent.targets
                ):
                    continue
                if isinstance(parent, (ast.Expr,)):
                    yield self.finding(
                        module,
                        node,
                        f"{node.func.id}(...) constructed and immediately "
                        "dropped — it never reaches shutdown()/close()",
                    )

        for name, assign in local.items():
            if name in with_managed_names:
                continue
            if self._escapes(fn, name, assign, owned):
                continue
            released, guaranteed = self._release_calls(fn, name, owned)
            if released and guaranteed:
                continue
            ctor = assign.value.func.id
            if released:
                yield self.finding(
                    module,
                    assign,
                    f"{ctor} {name!r} is shut down, but not on all paths — "
                    "move the shutdown()/close() into a finally block or use "
                    "`with`",
                )
            else:
                yield self.finding(
                    module,
                    assign,
                    f"{ctor} {name!r} is constructed here but never reaches "
                    "shutdown()/close() — the constructor owns the lifetime",
                )

    @staticmethod
    def _escapes(fn, name: str, assign: ast.Assign, owned) -> bool:
        for node in ast.walk(fn):
            if not owned(node):
                continue
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and name in _names_in(node.value):
                    return True
            elif isinstance(node, ast.Call):
                args_names: set[str] = set()
                for arg in node.args:
                    args_names |= _names_in(arg)
                for kw in node.keywords:
                    args_names |= _names_in(kw.value)
                if name in args_names:
                    return True
            elif isinstance(node, ast.Assign) and node is not assign:
                # stored on an object / into a container: ownership moved
                stores = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    or (
                        isinstance(t, (ast.Tuple, ast.List))
                        and any(
                            isinstance(e, (ast.Attribute, ast.Subscript))
                            for e in t.elts
                        )
                    )
                    for t in node.targets
                )
                if stores and name in _names_in(node.value):
                    return True
                # plain alias (``other = backend``): track conservatively
                if isinstance(node.value, ast.Name) and node.value.id == name:
                    return True
        return False

    @staticmethod
    def _release_calls(fn, name: str, owned) -> tuple[bool, bool]:
        """(any shutdown/close on ``name``, any of them inside a finally)."""
        released = guaranteed = False
        for node in ast.walk(fn):
            if not owned(node):
                continue
            if isinstance(node, ast.Try):
                for final_stmt in node.finalbody:
                    for sub in ast.walk(final_stmt):
                        if RPR003._is_release(sub, name):
                            released = guaranteed = True
            if RPR003._is_release(node, name):
                released = True
        return released, guaranteed

    @staticmethod
    def _is_release(node: ast.AST, name: str) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("shutdown", "close")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        )

    def _check_borrowed(self, module, fn, owned) -> Iterator[Finding]:
        params = {
            a.arg
            for a in [
                *fn.args.posonlyargs,
                *fn.args.args,
                *fn.args.kwonlyargs,
            ]
            if a.arg not in ("self", "cls")
        }
        if not params:
            return
        rebound: set[str] = set()
        for node in ast.walk(fn):
            if not owned(node):
                continue
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.For)):
                targets = [node.target]
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                targets = [i.optional_vars for i in node.items if i.optional_vars]
            for target in targets:
                rebound |= {
                    n.id
                    for n in ast.walk(target)
                    if isinstance(n, ast.Name)
                }
        for node in ast.walk(fn):
            if not owned(node):
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("shutdown", "close")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in params - rebound
            ):
                yield self.finding(
                    module,
                    node,
                    f"parameter {node.func.value.id!r} is borrowed — only its "
                    "constructor may call shutdown()/close() (PR-4 lifetime "
                    "rule)",
                )


# ---------------------------------------------------------------------------
# RPR004 — process-boundary pickle-safety
# ---------------------------------------------------------------------------
_MODEL_SEGMENTS = frozenset({"causal", "linear", "trees", "nn"})


class RPR004(Rule):
    """Pickle-safety at process boundaries: work shipped through
    ``submit``/``submit_to`` must be a module-level callable, and model
    instances must not grow lambda-valued attributes.

    A lambda or nested function pickles on ``SerialBackend`` and
    ``ThreadBackend`` (no pickling happens) and then explodes the first
    time someone passes ``ProcessBackend`` — code written against
    :class:`~repro.runtime.ExecutionBackend` must be backend-agnostic,
    so the static rule is backend-blind too.  The same logic covers the
    18 public models: every one of them pickle-round-trips bit-identical
    (``tests/test_pickling.py``), which a ``self.f = lambda …``
    assignment would break for exactly one backend choice.
    """

    code = "RPR004"
    name = "pickle-safety"
    description = (
        "no lambdas/nested functions submitted to executors or stored "
        "on model instances — process boundaries pickle their cargo"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        imports = import_map(module)
        for fn in ast.walk(module.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_submits(module, fn, imports)
        if _MODEL_SEGMENTS & module.segments:
            yield from self._check_model_attrs(module)

    def _check_submits(self, module, fn, imports) -> Iterator[Finding]:
        local_fns = {
            n.name
            for n in ast.walk(fn)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n is not fn
        }
        local_fns |= {
            t.id
            for n in ast.walk(fn)
            if isinstance(n, ast.Assign) and isinstance(n.value, ast.Lambda)
            for t in n.targets
            if isinstance(t, ast.Name)
        }
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            method = _call_name(node)
            if method == "submit" and node.args:
                cargo = node.args[0]
            elif method == "submit_to" and len(node.args) >= 2:
                cargo = node.args[1]
            else:
                continue
            yield from self._check_cargo(module, cargo, local_fns, imports)

    def _check_cargo(self, module, cargo, local_fns, imports) -> Iterator[Finding]:
        if isinstance(cargo, ast.Lambda):
            yield self.finding(
                module,
                cargo,
                "lambda submitted to an executor — lambdas don't pickle "
                "across a ProcessBackend boundary; use a module-level "
                "function",
            )
        elif isinstance(cargo, ast.Name) and cargo.id in local_fns:
            yield self.finding(
                module,
                cargo,
                f"locally defined function {cargo.id!r} submitted to an "
                "executor — closures don't pickle across a ProcessBackend "
                "boundary; hoist it to module level",
            )
        elif isinstance(cargo, ast.Call):
            name = (
                dotted(cargo.func, imports)
                if isinstance(cargo.func, ast.Attribute)
                else imports.get(cargo.func.id)
                if isinstance(cargo.func, ast.Name)
                else None
            )
            if name == "functools.partial" and cargo.args:
                yield from self._check_cargo(
                    module, cargo.args[0], local_fns, imports
                )

    def _check_model_attrs(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Lambda)
                and any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in node.targets
                )
            ):
                yield self.finding(
                    module,
                    node,
                    "lambda stored on a model instance — the 18 public models "
                    "must pickle bit-identical (tests/test_pickling.py); use "
                    "a module-level function or a method",
                )


# ---------------------------------------------------------------------------
# RPR005 — obs hot-path contract
# ---------------------------------------------------------------------------
_SETUP_FUNCS = frozenset({"__init__", "__post_init__", "__new__", "__set_name__"})
_HOT_FUNCS = frozenset(
    {
        "submit", "submit_to", "submit_batch", "score", "score_batch",
        "offer", "observe", "take", "poll", "drain", "flush", "has_result",
        "version_of", "record",
    }
)
_REGISTRY_FACTORIES = frozenset({"adopt", "counter", "gauge", "histogram"})


class RPR005(Rule):
    """The obs hot-path contract (PR 6): components *own* their metric
    objects — created once at construction, registered via ``adopt()``
    — so the per-request path costs one attribute read, not a registry
    lookup; and no per-request path builds a :class:`Snapshot`.

    ``metrics.counter(name)`` inside ``observe()`` is a dict lookup,
    string hash, and allocation on every event — the exact cost the
    "observability on vs. off is the same code path" pin in
    ``bench_serving_throughput`` exists to keep at zero.  Snapshots
    walk and freeze the whole registry; they are for day boundaries and
    merges, never for request handling.
    """

    code = "RPR005"
    name = "obs-hot-path"
    description = (
        "metric objects are created in __init__ and adopt()ed once; "
        "no registry lookups or Snapshot builds on per-request paths"
    )
    scope_segments = frozenset({"serving", "runtime", "ab"})

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            method = _call_name(node)
            fn = module.enclosing_function(node)
            if method in _REGISTRY_FACTORIES:
                if fn is not None and fn.name not in _SETUP_FUNCS:
                    yield self.finding(
                        module,
                        node,
                        f"registry .{method}() lookup inside {fn.name}() — "
                        "components own their metric objects: create them in "
                        "__init__ and adopt() them once (docs/OBSERVABILITY.md)",
                    )
            elif (
                method == "snapshot"
                or (isinstance(node.func, ast.Name) and node.func.id == "Snapshot")
            ) and fn is not None and fn.name in _HOT_FUNCS:
                yield self.finding(
                    module,
                    node,
                    f"Snapshot built inside per-request path {fn.name}() — "
                    "snapshots freeze the whole registry; take them at day/"
                    "merge boundaries, not per request",
                )


# ---------------------------------------------------------------------------
# RPR006 — dropped futures
# ---------------------------------------------------------------------------
class RPR006(Rule):
    """No dropped futures: a ``submit(...)`` result that is neither
    stored, returned, nor otherwise consumed is a silent failure sink.

    A future dropped on the floor swallows the exception its task
    raises — the pool keeps running, the caller keeps going, and the
    missing work surfaces days later as a wrong aggregate.  Every
    submit's future (or rid) must reach a variable, a collection, a
    ``return``, or an immediate ``.result()``.
    """

    code = "RPR006"
    name = "dropped-future"
    description = (
        "a submit()/submit_to() result must be stored, returned, or "
        "resolved — dropping a future drops its exceptions too"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and _call_name(node.value)
                in ("submit", "submit_to", "submit_batch")
            ):
                yield self.finding(
                    module,
                    node,
                    f"result of .{_call_name(node.value)}() is dropped — the "
                    "future's exceptions (and its ids) vanish with it; store, "
                    "return, or resolve it",
                )


# ---------------------------------------------------------------------------
# RPR007 — swallowed exceptions
# ---------------------------------------------------------------------------
class RPR007(Rule):
    """No invisible failure in the serving/runtime layers: bare
    ``except:`` is banned everywhere, and a handler whose body is only
    ``pass`` is banned in ``serving``/``runtime`` modules.

    A serving fleet that swallows an exception keeps routing traffic
    to a broken shard; the PR-5 lifecycle bugs all hid behind exactly
    this shape.  Handlers must re-raise, route the exception into a
    future/ledger, or at minimum record what they dropped.
    """

    code = "RPR007"
    name = "swallowed-exception"
    description = (
        "no bare except anywhere; no pass-only exception handlers in "
        "serving/runtime — failures must propagate or be recorded"
    )
    _PASS_ONLY_SEGMENTS = frozenset({"serving", "runtime"})

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt and "
                    "hides the failure — name the exception types",
                )
            elif (
                self._PASS_ONLY_SEGMENTS & module.segments
                and all(self._is_noop(stmt) for stmt in node.body)
            ):
                yield self.finding(
                    module,
                    node,
                    "exception swallowed (pass-only handler) in a serving/"
                    "runtime path — re-raise, route it into a future, or "
                    "record it",
                )

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        return isinstance(stmt, ast.Pass) or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and (stmt.value.value is Ellipsis or isinstance(stmt.value.value, str))
        )


def default_rules() -> list[Rule]:
    """The shipped rule set, in code order."""
    return [RPR001(), RPR002(), RPR003(), RPR004(), RPR005(), RPR006(), RPR007()]

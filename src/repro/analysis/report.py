"""Finding reporters: human text and a versioned JSON schema.

The JSON shape is ``repro.analysis/1``::

    {
      "schema": "repro.analysis/1",
      "count": 2,
      "findings": [
        {"path": "...", "line": 10, "col": 4,
         "code": "RPR001", "message": "..."},
        ...
      ]
    }

``findings_from_json`` round-trips the payload back into
:class:`~repro.analysis.core.Finding` objects, so CI tooling (and
``tests/test_analysis.py``) can consume the artifact without parsing
text output.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.core import Finding

__all__ = [
    "SCHEMA",
    "findings_from_json",
    "render_json",
    "render_text",
]

SCHEMA = "repro.analysis/1"


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding plus a tally."""
    lines = [finding.format() for finding in findings]
    n = len(findings)
    lines.append(f"{n} finding{'' if n == 1 else 's'}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "schema": SCHEMA,
        "count": len(findings),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def findings_from_json(text: str) -> list[Finding]:
    """Parse a ``repro.analysis/1`` payload back into findings."""
    payload = json.loads(text)
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"unsupported schema {schema!r} (expected {SCHEMA!r})")
    findings = [
        Finding(
            path=entry["path"],
            line=entry["line"],
            col=entry["col"],
            code=entry["code"],
            message=entry["message"],
        )
        for entry in payload["findings"]
    ]
    if payload.get("count") != len(findings):
        raise ValueError(
            f"count field {payload.get('count')!r} does not match "
            f"{len(findings)} findings"
        )
    return findings

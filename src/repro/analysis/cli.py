"""``python -m repro.analysis [--format json] [paths…]``.

Exit status 0 when the tree is clean, 1 when any finding (or any stale
suppression) survives, 2 on usage errors — the same contract the CI
``analysis`` job relies on.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.core import Analyzer
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import default_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "machine-check the repo's architectural contracts "
            "(clock/RNG discipline, resource ownership, pickle-safety, "
            "obs hot path, dropped futures, swallowed exceptions)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directory trees to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _explain() -> str:
    lines = []
    for rule in default_rules():
        lines.append(f"{rule.code} {rule.name}: {rule.description}")
    lines.append(
        "RPR000 meta: parse failures and stale/unknown "
        "`# repro: allow[...]` suppressions"
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.explain:
        print(_explain())
        return 0
    analyzer = Analyzer(default_rules())
    try:
        findings = analyzer.check_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = render_json(findings) if args.format == "json" else render_text(findings)
    if args.output is not None:
        with open(args.output, "w") as fh:
            fh.write(report if report.endswith("\n") else report + "\n")
    else:
        print(report, end="" if report.endswith("\n") else "\n")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

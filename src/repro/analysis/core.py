"""The rule framework: findings, module context, and the analyzer loop.

A :class:`Rule` owns one contract code (``RPR001``…): it receives a
parsed :class:`Module` and yields :class:`Finding`\\ s.  The
:class:`Analyzer` runs every registered rule over every module, applies
``# repro: allow[RPRnnn]`` suppressions (see
:mod:`repro.analysis.suppress`), and then audits the suppressions
themselves — an allow entry that matched nothing, or that names an
unknown code, is reported under :data:`META_CODE` so dead suppressions
cannot accumulate.

Scoping: a rule may declare ``scope_segments`` (it only runs on modules
whose path contains one of those directory segments — e.g. RPR007's
swallowed-exception half applies to ``serving``/``runtime`` only) and
``exempt_suffixes`` (path suffixes the rule skips entirely — e.g.
``runtime/clock.py`` is the one module allowed to read the wall clock).
Paths are matched on their POSIX form, so fixture trees under
``tests/analysis_fixtures/<code>/serving/…`` exercise scoped rules by
mirroring the segment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.suppress import Suppression, scan_suppressions

__all__ = [
    "Analyzer",
    "Finding",
    "META_CODE",
    "Module",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

#: analysis meta-findings: parse failures, unused/unknown suppressions.
#: Not suppressible — a stale allow comment must be deleted, not allowed.
META_CODE = "RPR000"


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class Module:
    """One parsed source file plus the path facts rules scope on."""

    def __init__(self, path: str | Path, source: str) -> None:
        self.path = Path(path)
        self.posix = self.path.as_posix()
        self.segments = frozenset(self.path.parts[:-1])
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        # parent links let rules walk outward (e.g. "is this call inside
        # a finally block / which function encloses this node")
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                child._repro_parent = parent  # type: ignore[attr-defined]

    def parent(self, node: ast.AST) -> ast.AST | None:
        return getattr(node, "_repro_parent", None)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The nearest ``def`` whose body contains ``node`` (or None)."""
        cur = self.parent(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parent(cur)
        return None


class Rule:
    """Base class: one code, one contract, one ``check`` pass."""

    code: str = ""
    name: str = ""
    #: one-line statement of the contract (shown by ``--explain``)
    description: str = ""
    #: run only on modules whose directory path contains one of these
    #: segments (empty = everywhere)
    scope_segments: frozenset[str] = frozenset()
    #: skip modules whose POSIX path ends with any of these suffixes
    exempt_suffixes: tuple[str, ...] = ()

    def applies_to(self, module: Module) -> bool:
        if any(module.posix.endswith(suffix) for suffix in self.exempt_suffixes):
            return False
        if self.scope_segments and not (self.scope_segments & module.segments):
            return False
        return True

    def check(self, module: Module) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.posix,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class Analyzer:
    """Run a rule set over sources, honouring and auditing suppressions."""

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules = list(rules)
        codes = [rule.code for rule in self.rules]
        if len(set(codes)) != len(codes):
            raise ValueError(f"duplicate rule codes: {sorted(codes)}")
        self.known_codes = frozenset(codes)

    def check_source(self, path: str | Path, source: str) -> list[Finding]:
        """All unsuppressed findings for one file, sorted by location."""
        posix = Path(path).as_posix()
        try:
            module = Module(path, source)
        except SyntaxError as exc:
            return [
                Finding(
                    path=posix,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code=META_CODE,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        suppressions = scan_suppressions(source)
        allowed: dict[tuple[int, str], Suppression] = {
            (sup.line, code): sup for sup in suppressions for code in sup.codes
        }
        findings: list[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                sup = allowed.get((finding.line, finding.code))
                if sup is not None:
                    sup.used.add(finding.code)
                else:
                    findings.append(finding)
        findings.extend(self._audit_suppressions(posix, suppressions))
        return sorted(findings)

    def _audit_suppressions(
        self, posix: str, suppressions: list[Suppression]
    ) -> Iterator[Finding]:
        for sup in suppressions:
            for code in sup.codes:
                if code not in self.known_codes or code == META_CODE:
                    yield Finding(
                        path=posix,
                        line=sup.line,
                        col=0,
                        code=META_CODE,
                        message=f"suppression names unknown rule code {code!r}",
                    )
                elif code not in sup.used:
                    yield Finding(
                        path=posix,
                        line=sup.line,
                        col=0,
                        code=META_CODE,
                        message=(
                            f"unused suppression: no {code} finding on this "
                            "line — delete the allow comment"
                        ),
                    )

    def check_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Analyze files and directory trees; returns sorted findings."""
        findings: list[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.check_source(path, path.read_text()))
        return sorted(findings)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def analyze_source(path: str | Path, source: str) -> list[Finding]:
    """Convenience: run the default rule set over one source string."""
    from repro.analysis.rules import default_rules

    return Analyzer(default_rules()).check_source(path, source)


def analyze_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Convenience: run the default rule set over files/directories."""
    from repro.analysis.rules import default_rules

    return Analyzer(default_rules()).check_paths(paths)

"""Inline suppressions: ``# repro: allow[RPRnnn]`` comments.

A finding is suppressed by putting an allow comment on the *physical
line the finding is reported at* (for a multi-line statement, the line
of the offending node).  Several codes may share one comment —
``# repro: allow[RPR001,RPR006]`` — and the comment may trail other
comment text (``# frobnicate  # repro: allow[RPR001]``).

Suppressions are themselves audited: the analyzer reports an
:data:`~repro.analysis.core.META_CODE` finding for every allow entry
that suppressed nothing (stale after a refactor) and for every code
that names no known rule — so a suppression can never silently outlive
the violation it was written for.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "scan_suppressions"]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


@dataclass
class Suppression:
    """One allow comment: the codes it permits on its line."""

    line: int
    codes: tuple[str, ...]
    #: codes that actually matched a finding (filled in by the analyzer)
    used: set[str] = field(default_factory=set)


def scan_suppressions(source: str) -> list[Suppression]:
    """Extract every allow comment from ``source`` via :mod:`tokenize`.

    Tokenizing (rather than regexing raw lines) means an allow-shaped
    string *literal* never counts as a suppression, and a comment is
    attributed to the physical line it sits on even inside bracketed
    continuations.
    """
    out: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if match is None:
                continue
            codes = tuple(
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            )
            if codes:
                out.append(Suppression(line=tok.start[0], codes=codes))
    except tokenize.TokenError:
        # unterminated brackets etc.: the ast parse will report it
        pass
    return out

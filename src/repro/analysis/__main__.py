"""Entry point for ``python -m repro.analysis``."""

from repro.analysis.cli import main

raise SystemExit(main())

"""repro.analysis — the AST invariant linter for this repo's contracts.

The codebase runs on a handful of architectural contracts that
example-based tests can only pin for the violations someone already
thought of: clock injection (deterministic replay), ``SeedStream``-only
randomness (CRN pairing), constructor-owns-lifetime for backends and
shared-memory pools, pickle-safety across process boundaries, the obs
``adopt()`` hot-path rule, no dropped futures, no swallowed exceptions
in serving/runtime.  This package machine-checks them: a stdlib-only
(``ast`` + ``tokenize``) pass with one rule per contract
(``RPR001``…``RPR007``), inline ``# repro: allow[RPRnnn]`` suppressions
that are themselves audited for staleness, and text/JSON reporters.

Three front doors:

- CLI: ``python -m repro.analysis [--format json] [paths…]``
- pytest gate: ``tests/test_analysis.py`` asserts zero findings on
  ``src/``
- CI: the ``analysis`` job fails the build on any finding

See ``docs/ANALYSIS.md`` for each rule's contract and rationale.
"""

from repro.analysis.core import (
    META_CODE,
    Analyzer,
    Finding,
    Module,
    Rule,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.report import (
    SCHEMA,
    findings_from_json,
    render_json,
    render_text,
)
from repro.analysis.rules import default_rules
from repro.analysis.suppress import Suppression, scan_suppressions

__all__ = [
    "META_CODE",
    "SCHEMA",
    "Analyzer",
    "Finding",
    "Module",
    "Rule",
    "Suppression",
    "analyze_paths",
    "analyze_source",
    "default_rules",
    "findings_from_json",
    "iter_python_files",
    "render_json",
    "render_text",
    "scan_suppressions",
]

"""The N-arm A/B test harness (Fig. 6 protocol).

Each day's cohort is randomly partitioned across the arms (DRP, rDRP,
Random Control in the paper — any mapping of name → scoring policy
here).  Every cohort user lands in exactly one arm (a non-divisible
cohort spreads its remainder over the first arms).  Every arm receives
the same per-user reward budget; arms differ only in the ordering they
treat users in.  The reported series is each model arm's *per-user*
incremental revenue percentage over the random control arm, per day —
exactly the quantity plotted in Fig. 6 (identical to the raw revenue
ratio when arm sizes are equal, and unbiased by the one-user size
difference a remainder introduces).

The day loop is fully batched: arms are partitioned by one
permutation, scored on feature slices, and realised together through
:meth:`Platform.realize_arms` (one Bernoulli draw for all arms, a
searchsorted spend-down per arm) — no per-arm cohort copies.  Combined
with the platform's chunked cohort generation this makes
``run(n_days, cohort_size=1_000_000)`` practical; realised spend obeys
the strict budget boundary (``spend <= budget`` always).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.ab.platform import Platform
from repro.utils.rng import as_generator

__all__ = ["ABTest", "ABTestResult", "DayResult", "RANDOM_ARM"]

RANDOM_ARM = "random"

# A policy maps cohort features (n, d) to ranking scores (n,)
Policy = Callable[[np.ndarray], np.ndarray]


@dataclass
class DayResult:
    """Per-day realised outcomes per arm.

    ``n_users`` records each arm's group size; a non-divisible cohort
    makes the groups differ by one, and the per-user normalisation in
    :attr:`ABTestResult.uplift_vs_random` relies on these sizes to keep
    the comparison unbiased.  (Empty only for legacy records.)
    """

    day: int
    revenue: dict[str, float]
    incremental_revenue: dict[str, float]
    spend: dict[str, float]
    n_treated: dict[str, int]
    n_users: dict[str, int] = field(default_factory=dict)


@dataclass
class ABTestResult:
    """Full A/B test record.

    ``uplift_vs_random[arm]`` is the Fig.-6 series: the arm's *per-user*
    revenue increase over the random arm, in percent, for each day.
    With equal arm sizes this is exactly the raw revenue ratio the paper
    plots; per-user normalisation keeps it unbiased when a remainder
    user makes group sizes differ by one.
    """

    days: list[DayResult] = field(default_factory=list)

    @property
    def arm_names(self) -> list[str]:
        return sorted(self.days[0].revenue) if self.days else []

    @property
    def uplift_vs_random(self) -> dict[str, list[float]]:
        out: dict[str, list[float]] = {}
        for day in self.days:
            def per_user(arm: str) -> float:
                return day.revenue[arm] / max(day.n_users.get(arm, 1), 1)

            random_revenue = per_user(RANDOM_ARM)
            for arm in day.revenue:
                if arm == RANDOM_ARM:
                    continue
                pct = (per_user(arm) / max(random_revenue, 1e-9) - 1.0) * 100.0
                out.setdefault(arm, []).append(pct)
        return out

    def mean_uplift(self) -> dict[str, float]:
        """Across-day mean of the Fig.-6 series per arm."""
        return {arm: float(np.mean(series)) for arm, series in self.uplift_vs_random.items()}


class ABTest:
    """Run a multi-day, multi-arm budgeted allocation experiment.

    Parameters
    ----------
    platform:
        The simulated traffic source.
    policies:
        Mapping from arm name to scoring policy.  A ``"random"`` arm is
        always added as the control.
    budget_fraction:
        Per-arm budget as a fraction of the arm cohort's *expected*
        incremental cost if everyone were treated (so each arm can
        afford roughly this fraction of its users).
    random_state:
        Seed/generator for the daily partition and the random arm.
    """

    def __init__(
        self,
        platform: Platform,
        policies: dict[str, Policy],
        budget_fraction: float = 0.3,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if not policies:
            raise ValueError("At least one model policy is required")
        if RANDOM_ARM in policies:
            raise ValueError(f"{RANDOM_ARM!r} is reserved for the control arm")
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError(f"budget_fraction must be in (0, 1], got {budget_fraction}")
        self.platform = platform
        self.policies = dict(policies)
        self.budget_fraction = float(budget_fraction)
        self._rng = as_generator(random_state)

    def _check_cohort_size(self, cohort_size: int, n_arms: int) -> None:
        if cohort_size // n_arms < 10:
            raise ValueError(
                f"cohort_size {cohort_size} too small for {n_arms} arms; need >= {10 * n_arms}"
            )

    def run(self, n_days: int = 5, cohort_size: int = 3000) -> ABTestResult:
        """Execute the experiment (five days in the paper's setups)."""
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {n_days}")
        self._check_cohort_size(cohort_size, len(self.policies) + 1)
        result = ABTestResult()
        for day in range(1, n_days + 1):
            cohort = self.platform.daily_cohort(cohort_size, day)
            result.days.append(self.run_day(cohort, day))
        return result

    def run_day(self, cohort, day: int) -> DayResult:
        """Evaluate one day's cohort across every arm (the batched path).

        Partition, score, and realise in array ops: one permutation
        splits the cohort (every index lands in exactly one arm — a
        remainder spreads one extra user over the leading arms), each
        model policy scores only its own arm's feature slice, and all
        arms realise together through one
        :meth:`Platform.realize_arms` call.  Useful directly when
        replaying a fixed cohort against several policy sets.
        """
        arms = list(self.policies) + [RANDOM_ARM]
        n_arms = len(arms)
        self._check_cohort_size(cohort.n, n_arms)
        # array_split spreads the remainder over the leading parts, so
        # every cohort index lands in exactly one arm
        groups = np.array_split(self._rng.permutation(cohort.n), n_arms)
        sizes = [g.shape[0] for g in groups]

        orders: list[np.ndarray] = []
        budgets: list[float] = []
        for arm, idx in zip(arms, groups):
            budgets.append(self.budget_fraction * float(np.sum(cohort.tau_c[idx])))
            if arm == RANDOM_ARM:
                orders.append(self._rng.permutation(idx))
            else:
                scores = np.asarray(self.policies[arm](cohort.x[idx]), dtype=float).ravel()
                if scores.shape[0] != idx.shape[0]:
                    raise ValueError(
                        f"Policy {arm!r} returned {scores.shape[0]} scores "
                        f"for {idx.shape[0]} users"
                    )
                orders.append(idx[np.argsort(-scores, kind="stable")])
        outcomes = self.platform.realize_arms(cohort, orders, budgets)
        return DayResult(
            day=day,
            revenue={arm: outcomes[a]["revenue"] for a, arm in enumerate(arms)},
            incremental_revenue={
                arm: outcomes[a]["incremental_revenue"] for a, arm in enumerate(arms)
            },
            spend={arm: outcomes[a]["spend"] for a, arm in enumerate(arms)},
            n_treated={arm: outcomes[a]["n_treated"] for a, arm in enumerate(arms)},
            n_users={arm: int(sizes[a]) for a, arm in enumerate(arms)},
        )

"""The N-arm A/B test harness (Fig. 6 protocol).

Each day's cohort is randomly partitioned across the arms (DRP, rDRP,
Random Control in the paper — any mapping of name → scoring policy
here).  Every arm receives the same per-user reward budget; arms
differ only in the ordering they treat users in.  The reported series
is each model arm's incremental revenue percentage over the random
control arm, per day — exactly the quantity plotted in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.ab.platform import Platform
from repro.utils.rng import as_generator

__all__ = ["ABTest", "ABTestResult", "DayResult", "RANDOM_ARM"]

RANDOM_ARM = "random"

# A policy maps cohort features (n, d) to ranking scores (n,)
Policy = Callable[[np.ndarray], np.ndarray]


@dataclass
class DayResult:
    """Per-day realised outcomes per arm."""

    day: int
    revenue: dict[str, float]
    incremental_revenue: dict[str, float]
    spend: dict[str, float]
    n_treated: dict[str, int]


@dataclass
class ABTestResult:
    """Full A/B test record.

    ``uplift_vs_random[arm]`` is the Fig.-6 series: the arm's revenue
    increase over the random arm, in percent, for each day.
    """

    days: list[DayResult] = field(default_factory=list)

    @property
    def arm_names(self) -> list[str]:
        return sorted(self.days[0].revenue) if self.days else []

    @property
    def uplift_vs_random(self) -> dict[str, list[float]]:
        out: dict[str, list[float]] = {}
        for day in self.days:
            random_revenue = day.revenue[RANDOM_ARM]
            for arm, revenue in day.revenue.items():
                if arm == RANDOM_ARM:
                    continue
                pct = (revenue / max(random_revenue, 1e-9) - 1.0) * 100.0
                out.setdefault(arm, []).append(pct)
        return out

    def mean_uplift(self) -> dict[str, float]:
        """Across-day mean of the Fig.-6 series per arm."""
        return {arm: float(np.mean(series)) for arm, series in self.uplift_vs_random.items()}


class ABTest:
    """Run a multi-day, multi-arm budgeted allocation experiment.

    Parameters
    ----------
    platform:
        The simulated traffic source.
    policies:
        Mapping from arm name to scoring policy.  A ``"random"`` arm is
        always added as the control.
    budget_fraction:
        Per-arm budget as a fraction of the arm cohort's *expected*
        incremental cost if everyone were treated (so each arm can
        afford roughly this fraction of its users).
    random_state:
        Seed/generator for the daily partition and the random arm.
    """

    def __init__(
        self,
        platform: Platform,
        policies: dict[str, Policy],
        budget_fraction: float = 0.3,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if not policies:
            raise ValueError("At least one model policy is required")
        if RANDOM_ARM in policies:
            raise ValueError(f"{RANDOM_ARM!r} is reserved for the control arm")
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError(f"budget_fraction must be in (0, 1], got {budget_fraction}")
        self.platform = platform
        self.policies = dict(policies)
        self.budget_fraction = float(budget_fraction)
        self._rng = as_generator(random_state)

    def run(self, n_days: int = 5, cohort_size: int = 3000) -> ABTestResult:
        """Execute the experiment (five days in the paper's setups)."""
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {n_days}")
        arms = list(self.policies) + [RANDOM_ARM]
        n_arms = len(arms)
        per_arm = cohort_size // n_arms
        if per_arm < 10:
            raise ValueError(
                f"cohort_size {cohort_size} too small for {n_arms} arms; need >= {10 * n_arms}"
            )
        result = ABTestResult()
        for day in range(1, n_days + 1):
            cohort = self.platform.daily_cohort(cohort_size, day)
            perm = self._rng.permutation(cohort.n)
            revenue: dict[str, float] = {}
            incremental: dict[str, float] = {}
            spend: dict[str, float] = {}
            n_treated: dict[str, int] = {}
            for a, arm in enumerate(arms):
                idx = perm[a * per_arm : (a + 1) * per_arm]
                group = cohort.subset(idx)
                budget = self.budget_fraction * float(np.sum(group.tau_c))
                if arm == RANDOM_ARM:
                    order = self._rng.permutation(group.n)
                else:
                    scores = np.asarray(self.policies[arm](group.x), dtype=float).ravel()
                    if scores.shape[0] != group.n:
                        raise ValueError(
                            f"Policy {arm!r} returned {scores.shape[0]} scores "
                            f"for {group.n} users"
                        )
                    order = np.argsort(-scores, kind="stable")
                outcome = self.platform.realize_arm(group, order, budget)
                revenue[arm] = outcome["revenue"]
                incremental[arm] = outcome["incremental_revenue"]
                spend[arm] = outcome["spend"]
                n_treated[arm] = outcome["n_treated"]
            result.days.append(
                DayResult(
                    day=day,
                    revenue=revenue,
                    incremental_revenue=incremental,
                    spend=spend,
                    n_treated=n_treated,
                )
            )
        return result

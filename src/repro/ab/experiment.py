"""The N-arm A/B test harness (Fig. 6 protocol).

Each day's cohort is randomly partitioned across the arms (DRP, rDRP,
Random Control in the paper — any mapping of name → scoring policy
here).  Every cohort user lands in exactly one arm (a non-divisible
cohort spreads its remainder over the first arms).  Every arm receives
the same per-user reward budget; arms differ only in the ordering they
treat users in.  The reported series is each model arm's *per-user*
incremental revenue percentage over the random control arm, per day —
exactly the quantity plotted in Fig. 6 (identical to the raw revenue
ratio when arm sizes are equal, and unbiased by the one-user size
difference a remainder introduces).

The day loop is fully batched: arms are partitioned by one
permutation, scored on feature slices, and realised together through
:meth:`Platform.realize_arms` (one Bernoulli draw for all arms, a
searchsorted spend-down per arm) — no per-arm cohort copies.  Combined
with the platform's chunked cohort generation this makes
``run(n_days, cohort_size=1_000_000)`` practical; realised spend obeys
the strict budget boundary (``spend <= budget`` always).
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.ab.platform import Platform
from repro.runtime import ExecutionBackend, ProcessBackend
from repro.utils.rng import as_generator

__all__ = ["ABTest", "ABTestResult", "DayResult", "RANDOM_ARM", "plan_day", "run_backend"]


def run_backend(
    backend: ExecutionBackend | None,
    parallel: bool | None,
    n_workers: int | None,
    platform: Platform | None = None,
) -> tuple[ExecutionBackend | None, bool]:
    """Resolve the execution backend for one experiment run.

    Shared by :class:`ABTest` and :class:`~repro.ab.replay.PolicyReplay`:
    a caller-supplied backend is borrowed (never shut down here), while
    the legacy ``parallel=True`` spelling — on the experiment *or*,
    when the experiment says nothing (``parallel=None``), on the
    platform — gets **one** run-scoped
    :class:`~repro.runtime.ProcessBackend`: a single pool for every
    day of the run, never a pool per ``daily_cohort`` call.  An
    explicit ``parallel=False`` (and the plain serial case) gets no
    backend at all; a platform-level ``backend`` is inherited by
    ``daily_cohort`` itself and needs no resolution here.

    Returns
    -------
    (backend, owned)
        ``owned`` is True when the caller must shut the backend down
        after the run.
    """
    if backend is not None:
        return backend, False
    if parallel:
        return ProcessBackend(n_workers), True
    if parallel is None and platform is not None and platform.backend is None and platform.parallel:
        # the platform asked for parallel generation: give it one pool
        # for the whole run instead of the legacy pool-per-call churn
        return ProcessBackend(platform.n_workers), True
    return None, False

RANDOM_ARM = "random"

# A policy maps cohort features (n, d) to ranking scores (n,)
Policy = Callable[[np.ndarray], np.ndarray]


def check_cohort_size(cohort_size: int, n_arms: int) -> None:
    """Every arm needs a usable group; tiny cohorts are a caller bug."""
    if cohort_size // n_arms < 10:
        raise ValueError(
            f"cohort_size {cohort_size} too small for {n_arms} arms; need >= {10 * n_arms}"
        )


def check_budget_fraction(budget_fraction: float) -> float:
    """Shared budget contract for ABTest and PolicyReplay."""
    if not 0.0 < budget_fraction <= 1.0:
        raise ValueError(f"budget_fraction must be in (0, 1], got {budget_fraction}")
    return float(budget_fraction)


def plan_day(
    cohort,
    policies: dict[str, Policy],
    budget_fraction: float,
    rng: np.random.Generator,
) -> tuple[list[str], list[np.ndarray], list[float], list[int]]:
    """Partition a cohort across arms and build each arm's order/budget.

    The one place that owns the split semantics shared by
    :meth:`ABTest.run_day` and :class:`~repro.ab.replay.PolicyReplay`:
    a single permutation partitions the cohort (``array_split`` spreads
    a non-divisible cohort's remainder over the leading arms, so every
    user lands in exactly one arm), each model policy scores only its
    own arm's feature slice, the control arm gets a random order, and
    every arm's budget is ``budget_fraction`` of its group's expected
    full-treatment incremental cost.

    Returns
    -------
    (arms, orders, budgets, sizes)
        Arm names (control last), per-arm cohort-index treatment
        orders, per-arm budgets, and per-arm group sizes.
    """
    arms = list(policies) + [RANDOM_ARM]
    n_arms = len(arms)
    check_cohort_size(cohort.n, n_arms)
    # array_split spreads the remainder over the leading parts, so
    # every cohort index lands in exactly one arm
    groups = np.array_split(rng.permutation(cohort.n), n_arms)
    sizes = [int(g.shape[0]) for g in groups]

    orders: list[np.ndarray] = []
    budgets: list[float] = []
    for arm, idx in zip(arms, groups):
        budgets.append(budget_fraction * float(np.sum(cohort.tau_c[idx])))
        if arm == RANDOM_ARM:
            orders.append(rng.permutation(idx))
        else:
            scores = np.asarray(policies[arm](cohort.x[idx]), dtype=float).ravel()
            if scores.shape[0] != idx.shape[0]:
                raise ValueError(
                    f"Policy {arm!r} returned {scores.shape[0]} scores "
                    f"for {idx.shape[0]} users"
                )
            orders.append(idx[np.argsort(-scores, kind="stable")])
    return arms, orders, budgets, sizes


def build_day_result(
    day: int, arms: list[str], sizes: list[int], outcomes: list[dict]
) -> "DayResult":
    """Assemble per-arm outcome dicts into a :class:`DayResult`."""
    return DayResult(
        day=day,
        revenue={arm: outcomes[a]["revenue"] for a, arm in enumerate(arms)},
        incremental_revenue={
            arm: outcomes[a]["incremental_revenue"] for a, arm in enumerate(arms)
        },
        spend={arm: outcomes[a]["spend"] for a, arm in enumerate(arms)},
        n_treated={arm: outcomes[a]["n_treated"] for a, arm in enumerate(arms)},
        n_users={arm: int(sizes[a]) for a, arm in enumerate(arms)},
    )


@dataclass
class DayResult:
    """Per-day realised outcomes per arm.

    ``n_users`` records each arm's group size; a non-divisible cohort
    makes the groups differ by one, and the per-user normalisation in
    :attr:`ABTestResult.uplift_vs_random` relies on these sizes to keep
    the comparison unbiased.  (Empty only for legacy records.)
    """

    day: int
    revenue: dict[str, float]
    incremental_revenue: dict[str, float]
    spend: dict[str, float]
    n_treated: dict[str, int]
    n_users: dict[str, int] = field(default_factory=dict)


@dataclass
class ABTestResult:
    """Full A/B test record.

    ``uplift_vs_random[arm]`` is the Fig.-6 series: the arm's *per-user*
    revenue increase over the random arm, in percent, for each day.
    With equal arm sizes this is exactly the raw revenue ratio the paper
    plots; per-user normalisation keeps it unbiased when a remainder
    user makes group sizes differ by one.
    """

    days: list[DayResult] = field(default_factory=list)

    @property
    def arm_names(self) -> list[str]:
        return sorted(self.days[0].revenue) if self.days else []

    @property
    def uplift_vs_random(self) -> dict[str, list[float]]:
        out: dict[str, list[float]] = {}
        for day in self.days:
            def per_user(arm: str) -> float:
                return day.revenue[arm] / max(day.n_users.get(arm, 1), 1)

            random_revenue = per_user(RANDOM_ARM)
            for arm in day.revenue:
                if arm == RANDOM_ARM:
                    continue
                pct = (per_user(arm) / max(random_revenue, 1e-9) - 1.0) * 100.0
                out.setdefault(arm, []).append(pct)
        return out

    def mean_uplift(self) -> dict[str, float]:
        """Across-day mean of the Fig.-6 series per arm."""
        return {arm: float(np.mean(series)) for arm, series in self.uplift_vs_random.items()}


class ABTest:
    """Run a multi-day, multi-arm budgeted allocation experiment.

    Parameters
    ----------
    platform:
        The simulated traffic source.
    policies:
        Mapping from arm name to scoring policy.  A ``"random"`` arm is
        always added as the control.
    budget_fraction:
        Per-arm budget as a fraction of the arm cohort's *expected*
        incremental cost if everyone were treated (so each arm can
        afford roughly this fraction of its users).
    random_state:
        Seed/generator for the daily partition and the random arm.
    parallel:
        ``True``: generate daily cohorts on one run-scoped worker pool
        (bit-identical cohorts, less wall time — generation dominates
        million-user days).  ``None`` (default): inherit the
        platform's own parallel/backend configuration (a
        platform-level ``parallel=True`` also gets one run-scoped
        pool).  ``False``: force fully serial generation for this
        experiment, whatever the platform is configured with.
    n_workers:
        Pool size when ``parallel`` (``None`` → all visible CPUs).
    backend:
        A shared :class:`~repro.runtime.ExecutionBackend` for cohort
        generation.  Takes precedence over ``parallel`` and is never
        shut down by the test — one pool can serve many experiments.
    """

    def __init__(
        self,
        platform: Platform,
        policies: dict[str, Policy],
        budget_fraction: float = 0.3,
        random_state: int | np.random.Generator | None = None,
        parallel: bool | None = None,
        n_workers: int | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        if not policies:
            raise ValueError("At least one model policy is required")
        if RANDOM_ARM in policies:
            raise ValueError(f"{RANDOM_ARM!r} is reserved for the control arm")
        self.platform = platform
        self.policies = dict(policies)
        self.budget_fraction = check_budget_fraction(budget_fraction)
        if parallel is not None or n_workers is not None:
            warnings.warn(
                "ABTest(parallel=..., n_workers=...) is deprecated; pass a shared "
                "backend= (e.g. repro.runtime.ProcessBackend) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.parallel = None if parallel is None else bool(parallel)
        self.n_workers = n_workers
        self.backend = backend
        self._rng = as_generator(random_state)

    def run(self, n_days: int = 5, cohort_size: int = 3000) -> ABTestResult:
        """Execute the experiment (five days in the paper's setups).

        Cohort generation for *all* days shares one execution backend:
        either the one passed at construction or, under the legacy
        ``parallel=True``, a single run-scoped process pool (started
        lazily, shut down when the run ends).
        """
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {n_days}")
        check_cohort_size(cohort_size, len(self.policies) + 1)
        backend, owned = run_backend(
            self.backend, self.parallel, self.n_workers, self.platform
        )
        result = ABTestResult()
        # an explicit parallel=False forces serial generation even over
        # the platform's configuration; None inherits it
        per_day_parallel = False if self.parallel is False else None
        try:
            for day in range(1, n_days + 1):
                cohort = self.platform.daily_cohort(
                    cohort_size, day, parallel=per_day_parallel, backend=backend
                )
                result.days.append(self.run_day(cohort, day))
        finally:
            if owned:
                backend.shutdown()
        return result

    def run_day(self, cohort, day: int) -> DayResult:
        """Evaluate one day's cohort across every arm (the batched path).

        Partition, score, and realise in array ops: :func:`plan_day`
        splits the cohort and builds each arm's treatment order and
        budget, then all arms realise together through one
        :meth:`Platform.realize_arms` call.  Useful directly when
        replaying a fixed cohort against several policy sets — see
        :class:`~repro.ab.replay.PolicyReplay` for the paired
        (common-random-numbers) version of that comparison.
        """
        arms, orders, budgets, sizes = plan_day(
            cohort, self.policies, self.budget_fraction, self._rng
        )
        outcomes = self.platform.realize_arms(cohort, orders, budgets)
        return build_day_result(day, arms, sizes, outcomes)

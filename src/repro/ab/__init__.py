"""Online A/B-test substrate (§V-C).

The paper validates rDRP with five-day online A/B tests on a
short-video platform's incentivized-advertising traffic.  That
platform is simulated here: daily user cohorts, random assignment of
each cohort across policy arms, budget-constrained incentive
allocation (Algorithm 1 semantics: rank by the arm's predicted ROI,
spend down the budget), and stochastic realised outcomes from the
ground-truth effects.  The reported metric matches Fig. 6:
incremental revenue percentage of each model arm over the random
control arm, per day.

Budget boundary: realised spend obeys the C-BTAP constraint strictly —
the draw whose cost would make cumulative spend reach or cross an
arm's budget is never made, so ``spend <= budget`` always (strictly
below any positive budget) and a zero budget treats nobody.

Scale: the whole day path is batched (one permutation partitions the
arms, one Bernoulli draw realises them via
:meth:`Platform.realize_arms`) and cohorts larger than the platform's
``chunk_size`` are generated chunk-by-chunk (peak memory ~2x the
cohort), so ``ABTest.run(n_days, cohort_size=1_000_000)`` runs in
seconds without materialising multi-``n`` oversample pools.  Chunked
generation optionally fans out across an
:class:`~repro.runtime.ExecutionBackend`: ``backend=`` on
:class:`Platform`, :class:`ABTest`, and :class:`PolicyReplay` shares
one lazily-started pool across every day of a run (the legacy
``parallel=`` / ``n_workers=`` spelling gets a run-scoped pool), with
bit-identical output either way.

Cross-policy comparison: :class:`PolicyReplay` scores several policy
sets against *identical* traffic — one cohort, one arm partition, and
one pre-drawn per-user cost/reward uniform tensor per day (common
random numbers) — so cross-set uplift deltas are paired and their
variance collapses, at roughly the generation cost of a single run.
"""

from repro.ab.experiment import ABTest, ABTestResult, DayResult, plan_day
from repro.ab.platform import Platform
from repro.ab.replay import PolicyReplay, PolicyReplayResult

__all__ = [
    "ABTest",
    "ABTestResult",
    "DayResult",
    "Platform",
    "PolicyReplay",
    "PolicyReplayResult",
    "plan_day",
]

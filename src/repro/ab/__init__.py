"""Online A/B-test substrate (§V-C).

The paper validates rDRP with five-day online A/B tests on a
short-video platform's incentivized-advertising traffic.  That
platform is simulated here: daily user cohorts, random assignment of
each cohort across policy arms, budget-constrained incentive
allocation (Algorithm 1 semantics: rank by the arm's predicted ROI,
spend until the budget is gone), and stochastic realised outcomes from
the ground-truth effects.  The reported metric matches Fig. 6:
incremental revenue percentage of each model arm over the random
control arm, per day.
"""

from repro.ab.experiment import ABTest, ABTestResult, DayResult
from repro.ab.platform import Platform

__all__ = ["ABTest", "ABTestResult", "DayResult", "Platform"]

"""The simulated incentivized-advertising platform."""

from __future__ import annotations

import numpy as np

from repro.data.rct import RCTDataset
from repro.data.settings import load_dataset
from repro.data.shift import exponential_tilt_shift
from repro.utils.rng import as_generator

__all__ = ["Platform"]


class Platform:
    """Daily-traffic generator with ground-truth reward/cost effects.

    Parameters
    ----------
    dataset:
        Which analog population the platform serves (``"criteo"``,
        ``"meituan"``, ``"alibaba"``).
    shifted:
        When True, deployment-time cohorts come from the tilted
        (holiday/campaign) distribution — the ``*Co`` scenarios.
    shift_strength:
        Tilt strength for shifted cohorts.
    day_effect:
        Amplitude of a deterministic day-of-week multiplier applied to
        the effect sizes (adds the day-to-day wobble visible in Fig. 6).
    base_revenue_rate:
        Baseline (untreated) revenue probability per user — the
        denominator traffic every arm shares.
    random_state:
        Seed/generator for cohort draws and outcome realisation.
    """

    def __init__(
        self,
        dataset: str = "criteo",
        shifted: bool = False,
        shift_strength: float = 1.2,
        day_effect: float = 0.1,
        base_revenue_rate: float = 0.25,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= day_effect < 1.0:
            raise ValueError(f"day_effect must be in [0, 1), got {day_effect}")
        if not 0.0 < base_revenue_rate < 1.0:
            raise ValueError(f"base_revenue_rate must be in (0, 1), got {base_revenue_rate}")
        self.dataset = dataset
        self.shifted = bool(shifted)
        self.shift_strength = float(shift_strength)
        self.day_effect = float(day_effect)
        self.base_revenue_rate = float(base_revenue_rate)
        self._rng = as_generator(random_state)

    def daily_cohort(self, n: int, day: int) -> RCTDataset:
        """Draw the users arriving on ``day`` (1-based).

        The returned :class:`RCTDataset` carries ground-truth ``tau_r``
        / ``tau_c`` which :meth:`realize_arm` consumes; its ``t``/``y``
        columns are ignored by the A/B harness (assignment is decided
        by the policies, not by the generator).
        """
        if n < 3:
            raise ValueError(f"cohort size must be >= 3, got {n}")
        if day < 1:
            raise ValueError(f"day must be >= 1, got {day}")
        # meituan's binarisation keeps ~40% of generated rows; the tilt
        # keeps the requested fraction of its pool — oversample for both
        # so the cohort always has exactly n users, doubling the factor
        # on the rare draws where the yield still falls short
        oversample = 3.0 if self.dataset == "meituan" else 1.2
        cohort = None
        for attempt in range(3):
            if attempt:
                oversample *= 2.0
            if self.shifted:
                pool = load_dataset(
                    self.dataset, int(2 * n * oversample), random_state=self._rng
                )
                if pool.n < n:
                    cohort = pool  # short pool: tilting would fail, retry bigger
                    continue
                cohort = exponential_tilt_shift(
                    pool, strength=self.shift_strength, n_out=n, random_state=self._rng
                )
            else:
                cohort = load_dataset(
                    self.dataset, int(n * oversample), random_state=self._rng
                )
            if cohort.n >= n:
                break
        if cohort.n < n:
            raise RuntimeError(
                f"Cohort generation produced {cohort.n} < {n} users even at "
                f"oversample factor {oversample:.1f}"
            )
        if cohort.n > n:
            cohort = cohort.subset(np.arange(n))
        # deterministic day-of-week multiplier on the effects
        multiplier = 1.0 + self.day_effect * np.sin(2.0 * np.pi * day / 7.0)
        cohort.tau_r = np.clip(cohort.tau_r * multiplier, 1e-6, None)
        cohort.tau_c = np.clip(cohort.tau_c * multiplier, 1e-6, None)
        return cohort

    def iter_events(
        self,
        cohort: RCTDataset,
        random_state: int | np.random.Generator | None = None,
    ):
        """Stream a cohort one arrival at a time (the serving-side view).

        Yields ``(index, x_row)`` pairs in a random arrival order —
        production traffic does not arrive sorted by ROI, which is
        exactly why online allocation needs pacing instead of the
        offline sort of Algorithm 1.  ``index`` addresses the cohort's
        ground-truth ``tau_r`` / ``tau_c`` for outcome realisation.

        Parameters
        ----------
        cohort:
            A cohort from :meth:`daily_cohort`.
        random_state:
            Optional dedicated generator for the arrival order; by
            default the platform's own stream is used.
        """
        rng = self._rng if random_state is None else as_generator(random_state)
        for i in rng.permutation(cohort.n):
            i = int(i)
            yield i, cohort.x[i]

    def realize_arm(
        self,
        cohort: RCTDataset,
        treat_order: np.ndarray,
        budget: float,
    ) -> dict:
        """Spend ``budget`` down the given treatment order and realise outcomes.

        Users are treated strictly in ``treat_order``; each treated
        user's *realised* incremental cost (a Bernoulli draw with
        probability ``tau_c``) accrues against the budget, and treating
        stops once the budget is exhausted — the platform semantics of
        "allocate ... until the budget B is reached" (Algorithm 1 line
        2).  Costs are not known before treating, so there is no
        skip-ahead: the policy's only lever is the *order*.

        Returns
        -------
        dict
            ``revenue`` (baseline + incremental realised revenue),
            ``baseline_revenue``, ``incremental_revenue``,
            ``spend`` and ``n_treated``.
        """
        n = cohort.n
        order = np.asarray(treat_order, dtype=np.int64).ravel()
        if order.shape[0] != n or set(order.tolist()) != set(range(n)):
            raise ValueError("treat_order must be a permutation of the cohort indices")
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")

        cost_draw = (self._rng.random(n) < cohort.tau_c).astype(float)
        reward_draw = (self._rng.random(n) < cohort.tau_r).astype(float)

        # vectorised sequential spend-down: treat the order's prefix whose
        # cumulative realised cost first reaches the budget
        costs_in_order = cost_draw[order]
        cumulative = np.cumsum(costs_in_order)
        exhausted = np.nonzero(cumulative >= budget)[0]
        n_treated = int(exhausted[0]) + 1 if exhausted.size else n
        treated_idx = order[:n_treated]
        spend = float(cumulative[n_treated - 1]) if n_treated > 0 else 0.0
        incremental = float(np.sum(reward_draw[treated_idx]))
        # The baseline is the *expected* untreated revenue of the group.
        # The real platform serves millions of users per day, so the
        # relative noise of the realised baseline is negligible; drawing
        # it per-user at simulator scale would bury the policy effect in
        # binomial noise that the production metric does not have.
        baseline = float(n * self.base_revenue_rate)
        return {
            "revenue": baseline + incremental,
            "baseline_revenue": baseline,
            "incremental_revenue": incremental,
            "spend": spend,
            "n_treated": n_treated,
        }

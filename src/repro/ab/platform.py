"""The simulated incentivized-advertising platform."""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.allocation import spend_down_prefix
from repro.data.rct import RCTDataset
from repro.data.settings import iter_dataset_chunks, load_dataset
from repro.data.shift import concept_drift, exponential_tilt_shift
from repro.runtime import ExecutionBackend, resolve_n_workers
from repro.utils.rng import as_generator

__all__ = ["Platform"]


def _check_uniforms(u: np.ndarray | None, n: int, name: str) -> np.ndarray | None:
    """Validate an externally-supplied per-user uniform tensor."""
    if u is None:
        return None
    u = np.asarray(u, dtype=float).ravel()
    if u.shape[0] != n:
        raise ValueError(f"{name} must have one value per cohort user ({n}), got {u.shape[0]}")
    # two reductions, no bool temporaries; NaN fails both comparisons
    if not (u.min(initial=0.0) >= 0.0 and u.max(initial=0.0) < 1.0):
        raise ValueError(f"{name} must be uniforms in [0, 1)")
    return u


def _check_arm_indices(order: np.ndarray, n: int) -> None:
    """Validate arm indices in O(n) array ops (no Python-object churn):
    in range and hitting no user twice.  Arms of a partitioned day are
    disjoint but need not cover the cohort; a full-length array passing
    this check is necessarily a permutation of ``range(n)``.
    """
    if order.size == 0:
        return
    if int(order.min()) < 0 or int(order.max()) >= n:
        raise ValueError("treat_order indices out of range — must be a permutation subset of the cohort indices")
    # duplicate check by bool scatter: one n-byte array instead of
    # bincount's 8n-byte count vector, same O(n)
    seen = np.zeros(n, dtype=bool)
    seen[order] = True
    if int(np.count_nonzero(seen)) != order.size:
        raise ValueError("treat_order repeats cohort indices — arms must be a permutation / disjoint")


class Platform:
    """Daily-traffic generator with ground-truth reward/cost effects.

    Parameters
    ----------
    dataset:
        Which analog population the platform serves (``"criteo"``,
        ``"meituan"``, ``"alibaba"``).
    shifted:
        When True, deployment-time cohorts come from the tilted
        (holiday/campaign) distribution — the ``*Co`` scenarios.
    shift_strength:
        Tilt strength for shifted cohorts.
    day_effect:
        Amplitude of a deterministic day-of-week multiplier applied to
        the effect sizes (adds the day-to-day wobble visible in Fig. 6).
    drift_day, drift_strength:
        Inject concept drift: from day ``drift_day`` (1-based) onward,
        every cohort passes through
        :func:`~repro.data.shift.concept_drift` at ``drift_strength``
        — ``Y | X`` changes, so models fitted on pre-drift days rank
        post-drift traffic wrongly.  The transform is deterministic
        per row, preserving CRN pairing across seeds.  ``None``
        (default) disables drift.
    base_revenue_rate:
        Baseline (untreated) revenue probability per user — the
        denominator traffic every arm shares.
    chunk_size:
        Cohorts larger than this are generated chunk-by-chunk
        (:func:`repro.data.settings.iter_dataset_chunks`), bounding
        peak memory to a small constant multiple of the cohort (~2x:
        the accumulated chunks plus the concatenated output) instead
        of the one-shot path's multiple-``n`` oversample pool — what
        makes million-user days feasible.
    parallel:
        Generate chunked cohorts on a worker pool.  Output is
        bit-identical to the serial path (chunks live on per-index
        seed substreams); only wall time changes.  Without a
        ``backend`` this spins a private pool per draw — prefer
        passing a shared backend.
    n_workers:
        Pool size when ``parallel`` (``None`` → all visible CPUs).
    backend:
        A shared :class:`~repro.runtime.ExecutionBackend` for chunked
        generation.  One pool then serves every ``daily_cohort`` call
        (and every day of an :class:`~repro.ab.experiment.ABTest`)
        instead of being rebuilt per call.  The platform never shuts
        it down — lifetime belongs to the caller.
    random_state:
        Seed/generator for cohort draws and outcome realisation.
    """

    def __init__(
        self,
        dataset: str = "criteo",
        shifted: bool = False,
        shift_strength: float = 1.2,
        day_effect: float = 0.1,
        drift_day: int | None = None,
        drift_strength: float = 1.0,
        base_revenue_rate: float = 0.25,
        chunk_size: int = 200_000,
        parallel: bool = False,
        n_workers: int | None = None,
        backend: ExecutionBackend | None = None,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= day_effect < 1.0:
            raise ValueError(f"day_effect must be in [0, 1), got {day_effect}")
        if drift_day is not None and drift_day < 1:
            raise ValueError(f"drift_day must be >= 1, got {drift_day}")
        if drift_strength < 0:
            raise ValueError(f"drift_strength must be >= 0, got {drift_strength}")
        if not 0.0 < base_revenue_rate < 1.0:
            raise ValueError(f"base_revenue_rate must be in (0, 1), got {base_revenue_rate}")
        if chunk_size < 50:
            raise ValueError(f"chunk_size must be >= 50, got {chunk_size}")
        if parallel or n_workers is not None:
            warnings.warn(
                "Platform(parallel=..., n_workers=...) is deprecated; pass a shared "
                "backend= (e.g. repro.runtime.ProcessBackend) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.dataset = dataset
        self.shifted = bool(shifted)
        self.shift_strength = float(shift_strength)
        self.day_effect = float(day_effect)
        self.drift_day = None if drift_day is None else int(drift_day)
        self.drift_strength = float(drift_strength)
        self.base_revenue_rate = float(base_revenue_rate)
        self.chunk_size = int(chunk_size)
        self.parallel = bool(parallel)
        self.n_workers = None if n_workers is None else resolve_n_workers(n_workers)
        self.backend = backend
        self._rng = as_generator(random_state)

    def daily_cohort(
        self,
        n: int,
        day: int,
        *,
        parallel: bool | None = None,
        n_workers: int | None = None,
        backend: ExecutionBackend | None = None,
    ) -> RCTDataset:
        """Draw the users arriving on ``day`` (1-based).

        The returned :class:`RCTDataset` carries ground-truth ``tau_r``
        / ``tau_c`` which :meth:`realize_arm` consumes; its ``t``/``y``
        columns are ignored by the A/B harness (assignment is decided
        by the policies, not by the generator).

        ``parallel`` / ``n_workers`` / ``backend`` override the
        platform-level settings for this draw only; the cohort is
        bit-identical either way.  An explicit ``parallel=False``
        forces a fully in-process draw — it disables the platform's
        configured backend too (needed e.g. inside a worker process,
        where nested pools are forbidden) — unless an explicit
        ``backend`` is passed, which always wins.
        """
        if n < 3:
            raise ValueError(f"cohort size must be >= 3, got {n}")
        if day < 1:
            raise ValueError(f"day must be >= 1, got {day}")
        force_serial = parallel is False and backend is None
        parallel = self.parallel if parallel is None else bool(parallel)
        n_workers = self.n_workers if n_workers is None else resolve_n_workers(n_workers)
        backend = self.backend if backend is None else backend
        if force_serial:
            backend = None
        if n <= self.chunk_size:
            cohort = self._draw_cohort_oneshot(n)
        else:
            cohort = self._draw_cohort_chunked(
                n, parallel=parallel, n_workers=n_workers, backend=backend
            )
        # deterministic day-of-week multiplier on the effects, applied
        # in place — the cohort's arrays are freshly generated (or
        # views of freshly generated chunks), so nothing else sees them
        multiplier = 1.0 + self.day_effect * np.sin(2.0 * np.pi * day / 7.0)
        np.multiply(cohort.tau_r, multiplier, out=cohort.tau_r)
        np.clip(cohort.tau_r, 1e-6, None, out=cohort.tau_r)
        np.multiply(cohort.tau_c, multiplier, out=cohort.tau_c)
        np.clip(cohort.tau_c, 1e-6, None, out=cohort.tau_c)
        if self.drift_day is not None and day >= self.drift_day:
            cohort = concept_drift(cohort, strength=self.drift_strength)
        return cohort

    def _draw_cohort_oneshot(self, n: int) -> RCTDataset:
        """Single-pool draw for cohorts that fit in one chunk."""
        # meituan's binarisation keeps ~40% of generated rows; the tilt
        # keeps the requested fraction of its pool — oversample for both
        # so the cohort always has exactly n users, doubling the factor
        # on the rare draws where the yield still falls short
        oversample = 3.0 if self.dataset == "meituan" else 1.2
        cohort = None
        for attempt in range(3):
            if attempt:
                oversample *= 2.0
            if self.shifted:
                pool = load_dataset(
                    self.dataset, int(2 * n * oversample), random_state=self._rng
                )
                if pool.n < n:
                    cohort = pool  # short pool: tilting would fail, retry bigger
                    continue
                cohort = exponential_tilt_shift(
                    pool, strength=self.shift_strength, n_out=n, random_state=self._rng
                )
            else:
                cohort = load_dataset(
                    self.dataset, int(n * oversample), random_state=self._rng
                )
            if cohort.n >= n:
                break
        if cohort.n < n:
            raise RuntimeError(
                f"Cohort generation produced {cohort.n} < {n} users even at "
                f"oversample factor {oversample:.1f}"
            )
        if cohort.n > n:
            cohort = cohort.subset(np.arange(n))
        return cohort

    def _draw_cohort_chunked(
        self,
        n: int,
        parallel: bool = False,
        n_workers: int | None = None,
        backend: ExecutionBackend | None = None,
    ) -> RCTDataset:
        """Chunked draw: peak memory ~2x the cohort (accumulated chunks
        plus the concatenated output; pool chunks on the shifted path
        are ``2 * chunk_size`` rows), never a multiple-``n`` oversample
        pool.

        Unshifted chunks stream straight from
        :func:`~repro.data.settings.iter_dataset_chunks`; shifted
        cohorts tilt each pool chunk down to half, which targets the
        same shifted marginal as one global tilt (the tilt weights are
        i.i.d. functions of each row's features).  ``backend`` (or the
        legacy ``parallel``) fans chunk generation out across a worker
        pool (tilting stays in-process — it is subsampling, not
        generation).
        """
        parts: list[RCTDataset] = []
        have = 0
        if self.shifted:
            for attempt in range(5):
                need = n - have
                if need <= 0:
                    break
                # 2:1 pool:output ratio, same as the one-shot path
                for pool in iter_dataset_chunks(
                    self.dataset,
                    2 * need,
                    chunk_size=2 * self.chunk_size,
                    random_state=self._rng,
                    parallel=parallel,
                    n_workers=n_workers,
                    backend=backend,
                ):
                    if pool.n < 2:
                        continue
                    kept = exponential_tilt_shift(
                        pool,
                        strength=self.shift_strength,
                        n_out=pool.n // 2,
                        random_state=self._rng,
                    )
                    parts.append(kept)
                    have += kept.n
                    if have >= n:
                        break
            if have < n:
                raise RuntimeError(
                    f"Chunked shifted cohort generation produced {have} < {n} users"
                )
        else:
            for chunk in iter_dataset_chunks(
                self.dataset,
                n,
                chunk_size=self.chunk_size,
                random_state=self._rng,
                parallel=parallel,
                n_workers=n_workers,
                backend=backend,
            ):
                parts.append(chunk)
                have += chunk.n
                if have >= n:
                    break
        overshoot = have - n
        if overshoot > 0:
            # trim the tail chunk by view — concat copies (or, single
            # part, the chunk is private), so no bytes move here
            parts[-1] = parts[-1].head(parts[-1].n - overshoot)
        return RCTDataset.concat(parts, copy=False)

    def iter_events(
        self,
        cohort: RCTDataset,
        random_state: int | np.random.Generator | None = None,
    ):
        """Stream a cohort one arrival at a time (the serving-side view).

        Yields ``(index, x_row)`` pairs in a random arrival order —
        production traffic does not arrive sorted by ROI, which is
        exactly why online allocation needs pacing instead of the
        offline sort of Algorithm 1.  ``index`` addresses the cohort's
        ground-truth ``tau_r`` / ``tau_c`` for outcome realisation.

        Parameters
        ----------
        cohort:
            A cohort from :meth:`daily_cohort`.
        random_state:
            Optional dedicated generator for the arrival order; by
            default the platform's own stream is used.
        """
        rng = self._rng if random_state is None else as_generator(random_state)
        for i in rng.permutation(cohort.n):
            i = int(i)
            yield i, cohort.x[i]

    def realize_arm(
        self,
        cohort: RCTDataset,
        treat_order: np.ndarray,
        budget: float,
        cost_uniforms: np.ndarray | None = None,
        reward_uniforms: np.ndarray | None = None,
    ) -> dict:
        """Spend ``budget`` down the given treatment order and realise outcomes.

        Users are treated strictly in ``treat_order``; each treated
        user's *realised* incremental cost (a Bernoulli draw with
        probability ``tau_c``) accrues against the budget — the
        platform semantics of "allocate ... until the budget B is
        reached" (Algorithm 1 line 2).  Costs are not known before
        treating, so there is no skip-ahead: the policy's only lever is
        the *order*.

        Budget boundary (the C-BTAP constraint, enforced strictly):
        treating stops *before* the draw whose cost would make
        cumulative spend reach or cross ``budget`` — the platform never
        authorises a spend it cannot cover.  Realised ``spend`` is
        therefore always ``<= budget`` (strictly below any positive
        budget), and ``budget=0`` treats nobody.  Implemented as one
        batched Bernoulli draw plus a searchsorted spend-down
        (:func:`repro.core.allocation.spend_down_prefix`).

        ``cost_uniforms`` / ``reward_uniforms`` optionally supply the
        per-user uniform draws (common random numbers) — see
        :meth:`realize_arms`.

        Returns
        -------
        dict
            ``revenue`` (baseline + incremental realised revenue),
            ``baseline_revenue``, ``incremental_revenue``,
            ``spend`` and ``n_treated``.
        """
        order = np.asarray(treat_order, dtype=np.int64).ravel()
        # length here + the in-range/no-duplicate checks in realize_arms
        # together demand a full permutation (pigeonhole)
        if order.shape[0] != cohort.n:
            raise ValueError("treat_order must be a permutation of the cohort indices")
        if not budget >= 0:  # rejects NaN too
            raise ValueError(f"budget must be >= 0, got {budget}")
        # one full-cohort arm: same draws, same boundary, one code path
        return self.realize_arms(
            cohort,
            [order],
            [budget],
            cost_uniforms=cost_uniforms,
            reward_uniforms=reward_uniforms,
        )[0]

    def realize_arms(
        self,
        cohort: RCTDataset,
        orders: "list[np.ndarray] | tuple[np.ndarray, ...]",
        budgets: "np.ndarray | list[float]",
        cost_uniforms: np.ndarray | None = None,
        reward_uniforms: np.ndarray | None = None,
    ) -> list[dict]:
        """Realise *all* arms of a day in one batched pass.

        The vectorised counterpart of calling :meth:`realize_arm` once
        per arm on per-arm ``subset`` copies: a single Bernoulli cost
        draw covers every arm, each arm's spend-down is one
        searchsorted over its contiguous segment, and reward draws are
        batched over the union of treated users.  No cohort copies, no
        per-user (or per-arm O(n) Python) work — this is what makes
        million-user A/B days array-speed.

        Outcome draws are **per user**: user ``i``'s realised cost is
        ``U_c[i] < tau_c[i]`` and realised reward ``U_r[i] < tau_r[i]``,
        where ``U_c`` / ``U_r`` are cohort-length uniform tensors.  By
        default the platform draws them from its own stream; passing
        ``cost_uniforms`` / ``reward_uniforms`` supplies them externally
        — the common-random-numbers hook that lets
        :class:`~repro.ab.replay.PolicyReplay` score every policy set
        against *identical* outcome draws (a user realises the same
        cost/reward under every policy that treats them, whatever
        position they are treated in).

        Parameters
        ----------
        cohort:
            The day's full cohort.
        orders:
            One index array per arm, each listing *cohort* indices in
            that arm's treatment order.  Arms must be disjoint (a user
            sees one arm); together they need not cover the cohort.
        budgets:
            Per-arm budgets, aligned with ``orders``.
        cost_uniforms, reward_uniforms:
            Optional cohort-length arrays of uniforms in ``[0, 1)``.
            When supplied, the platform's own RNG stream is left
            untouched by that draw.

        Returns
        -------
        list of dict
            Per-arm outcome dicts with the same keys and the same
            strict budget-boundary semantics as :meth:`realize_arm`
            (``spend <= budget`` always; ``budget=0`` treats nobody).
        """
        budgets = np.asarray(budgets, dtype=float).ravel()
        if len(orders) != budgets.shape[0]:
            raise ValueError(
                f"{len(orders)} orders but {budgets.shape[0]} budgets"
            )
        if np.any(budgets < 0) or np.any(np.isnan(budgets)):
            raise ValueError("budgets must all be >= 0")
        n = cohort.n
        cost_u = _check_uniforms(cost_uniforms, n, "cost_uniforms")
        reward_u = _check_uniforms(reward_uniforms, n, "reward_uniforms")
        orders = [np.asarray(o, dtype=np.int64).ravel() for o in orders]
        sizes = np.array([o.shape[0] for o in orders], dtype=np.int64)
        # single-arm days (realize_arm's path) skip the concat copy
        if len(orders) == 1:
            order_all = orders[0]
        elif orders:
            order_all = np.concatenate(orders)
        else:
            order_all = np.empty(0, dtype=np.int64)
        _check_arm_indices(order_all, n)

        # one per-user uniform tensor realises every arm's costs
        if cost_u is None:
            cost_u = self._rng.random(n)
        costs_in_order = cost_u[order_all] < cohort.tau_c[order_all]
        starts = np.concatenate(([0], np.cumsum(sizes)))

        outcomes: list[dict] = []
        treated_parts: list[np.ndarray] = []
        for a in range(len(orders)):
            segment = costs_in_order[starts[a] : starts[a + 1]]
            k, cumulative = spend_down_prefix(
                segment, float(budgets[a]), stop_before_crossing=True
            )
            spend = float(cumulative[k - 1]) if k > 0 else 0.0
            treated_parts.append(order_all[starts[a] : starts[a] + k])
            # The baseline is the *expected* untreated revenue of the
            # group.  The real platform serves millions of users per
            # day, so the relative noise of the realised baseline is
            # negligible; drawing it per-user at simulator scale would
            # bury the policy effect in binomial noise that the
            # production metric does not have.
            baseline = float(sizes[a] * self.base_revenue_rate)
            outcomes.append(
                {
                    "revenue": baseline,  # incremental added below
                    "baseline_revenue": baseline,
                    "incremental_revenue": 0.0,
                    "spend": spend,
                    "n_treated": int(k),
                }
            )

        # batched reward draw over the union of treated users
        if len(treated_parts) == 1:
            treated_all = treated_parts[0]
        elif treated_parts:
            treated_all = np.concatenate(treated_parts)
        else:
            treated_all = np.empty(0, dtype=np.int64)
        if reward_u is None:
            reward_u = self._rng.random(n)
        reward_draw = reward_u[treated_all] < cohort.tau_r[treated_all]
        pos = 0
        for a, part in enumerate(treated_parts):
            incremental = float(np.count_nonzero(reward_draw[pos : pos + part.shape[0]]))
            pos += part.shape[0]
            outcomes[a]["incremental_revenue"] = incremental
            outcomes[a]["revenue"] += incremental
        return outcomes

"""Cross-policy cohort replay with common random numbers (CRN).

An :class:`~repro.ab.experiment.ABTest` answers "how does this policy
set fare on its own simulated traffic"; comparing *two* such runs
compounds three independent noise sources — different cohorts,
different arm partitions, different outcome draws — none of which has
anything to do with the policies being compared.  ``PolicyReplay``
removes all three: every policy set is evaluated on **one** cohort per
day, split by **one** partition, and realised against **one**
pre-drawn per-user cost/reward uniform tensor
(:meth:`Platform.realize_arms` with ``cost_uniforms`` /
``reward_uniforms``).  Cross-set uplift deltas are then *paired*: a
user realises the same cost and reward under every policy that treats
them, so the delta reflects ordering decisions, not luck — the classic
common-random-numbers variance reduction.

Cost model: an N-set replay generates each day's cohort once, so it
costs roughly one :class:`ABTest` run plus (N-1) cheap scoring/
realisation passes — on million-user days, where generation is ~80% of
wall time, comparing three policies is ~3x cheaper than three
independent runs *and* gives tighter deltas.

Example — three policies on identical traffic::

    import numpy as np
    from repro.ab import Platform, PolicyReplay

    rng = np.random.default_rng(0)
    w = rng.normal(size=12)
    replay = PolicyReplay(
        Platform(dataset="criteo", random_state=0),
        policy_sets={
            "oracle-ish": {"model": lambda x: x @ w},
            "anti":       {"model": lambda x: -(x @ w)},
            "constant":   {"model": lambda x: np.ones(x.shape[0])},
        },
        budget_fraction=0.3,
        random_state=0,
    )
    result = replay.run(n_days=5, cohort_size=3000)
    result.mean_uplift()                      # per set, per arm
    result.uplift_delta("oracle-ish", "anti", "model")  # paired, per day
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass, field

import numpy as np

from repro.ab.experiment import (
    RANDOM_ARM,
    ABTestResult,
    Policy,
    build_day_result,
    check_budget_fraction,
    check_cohort_size,
    plan_day,
    run_backend,
)
from repro.ab.platform import Platform
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.runtime import ExecutionBackend
from repro.utils.rng import as_generator
from repro.utils.stats import MeanCI, mean_confidence_interval

__all__ = ["PolicyReplay", "PolicyReplayResult"]


@dataclass
class PolicyReplayResult:
    """Per-set A/B results, paired across sets by construction.

    ``results[set_name]`` is an ordinary :class:`ABTestResult`; because
    every set saw the same cohorts, partitions, and outcome uniforms,
    any across-set comparison of same-day values is a paired
    comparison.

    When the replay carries a :class:`~repro.obs.MetricsRegistry`,
    ``metrics_deltas[d]`` is the JSON-shaped snapshot delta of day
    ``d`` — what every registered metric did during that one day.
    """

    results: dict[str, ABTestResult] = field(default_factory=dict)
    metrics_deltas: list[dict] = field(default_factory=list)

    @property
    def set_names(self) -> list[str]:
        return list(self.results)

    def mean_uplift(self) -> dict[str, dict[str, float]]:
        """Across-day mean Fig.-6 uplift per set, per arm."""
        return {name: res.mean_uplift() for name, res in self.results.items()}

    def uplift_delta(self, set_a: str, set_b: str, arm: str, arm_b: str | None = None) -> list[float]:
        """Paired per-day uplift difference ``set_a[arm] - set_b[arm_b]``.

        Both series were realised on identical traffic and outcome
        draws, so the variance of these deltas excludes every noise
        source the two sets share.  The pairing is exact when both
        sets have the same number of arms (identical partitions); see
        :class:`PolicyReplay` for the partially-paired case.
        """
        series_a = self.results[set_a].uplift_vs_random[arm]
        series_b = self.results[set_b].uplift_vs_random[arm_b if arm_b is not None else arm]
        return [a - b for a, b in zip(series_a, series_b)]

    def delta_ci(
        self,
        set_a: str,
        set_b: str,
        arm: str,
        arm_b: str | None = None,
        level: float = 0.95,
    ) -> MeanCI:
        """Paired t-interval on the mean per-day uplift delta.

        Replayed on common random numbers, the per-day deltas of
        :meth:`uplift_delta` are i.i.d. across days (each day draws a
        fresh cohort, partition, and outcome tensor), so the classic
        paired t-interval applies: ``mean ± t_{1-(1-level)/2, n-1} *
        sd / sqrt(n)``.  Needs at least two days.  A CI excluding zero
        is the "this policy set beats that one" significance call at
        the given level.
        """
        return mean_confidence_interval(
            self.uplift_delta(set_a, set_b, arm, arm_b), level=level
        )


class PolicyReplay:
    """Evaluate N policy sets on identical traffic with shared draws.

    Parameters
    ----------
    platform:
        The simulated traffic source (cohorts are drawn from it once
        per day and shared by every set).
    policy_sets:
        Mapping from set name to a ``{arm_name: policy}`` mapping —
        each set is exactly what :class:`~repro.ab.experiment.ABTest`
        takes as ``policies`` (a ``"random"`` control arm is added to
        each).  Pairing is *exact* between sets with the same number of
        arms: they split one shared permutation into the same groups,
        so users, control order, and outcome draws all coincide.  Sets
        with different arm counts still share the cohort and the
        outcome uniforms, but ``array_split`` partitions the shared
        permutation differently — deltas against such a set are only
        partially paired, and their variance sits between the fully
        paired and the independent-runs level.
    budget_fraction:
        Per-arm budget fraction, as in :class:`ABTest`.
    random_state:
        Seed/generator for the shared partition and the shared outcome
        uniforms.
    parallel, n_workers:
        Worker-pool settings for chunked cohort generation (cohorts
        are bit-identical either way).  ``parallel=True`` starts one
        run-scoped pool shared by every day; ``None`` (default)
        inherits the platform's configuration; ``False`` forces
        serial generation.
    backend:
        A shared :class:`~repro.runtime.ExecutionBackend` for cohort
        generation; takes precedence over ``parallel`` and is never
        shut down by the replay.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` collecting the replay's
        counters (``replay.policy.days`` / ``.users`` / ``.scorings``)
        and per-day snapshot deltas
        (:attr:`PolicyReplayResult.metrics_deltas`).  ``None``
        (default) records nothing.
    """

    def __init__(
        self,
        platform: Platform,
        policy_sets: dict[str, dict[str, Policy]],
        budget_fraction: float = 0.3,
        random_state: int | np.random.Generator | None = None,
        parallel: bool | None = None,
        n_workers: int | None = None,
        backend: ExecutionBackend | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not policy_sets:
            raise ValueError("At least one policy set is required")
        for set_name, policies in policy_sets.items():
            if not policies:
                raise ValueError(f"Policy set {set_name!r} is empty")
            if RANDOM_ARM in policies:
                raise ValueError(
                    f"{RANDOM_ARM!r} in set {set_name!r} — reserved for the control arm"
                )
        self.platform = platform
        self.policy_sets = {name: dict(policies) for name, policies in policy_sets.items()}
        self.budget_fraction = check_budget_fraction(budget_fraction)
        if parallel is not None or n_workers is not None:
            warnings.warn(
                "PolicyReplay(parallel=..., n_workers=...) is deprecated; pass a shared "
                "backend= (e.g. repro.runtime.ProcessBackend) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.parallel = None if parallel is None else bool(parallel)
        self.n_workers = n_workers
        self.backend = backend
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_days = self.metrics.counter("replay.policy.days")
        self._c_users = self.metrics.counter("replay.policy.users")
        self._c_scorings = self.metrics.counter("replay.policy.scorings")
        self._rng = as_generator(random_state)

    def _max_arms(self) -> int:
        return max(len(p) for p in self.policy_sets.values()) + 1

    def run(self, n_days: int = 5, cohort_size: int = 3000) -> PolicyReplayResult:
        """Replay ``n_days`` of traffic through every policy set.

        As in :meth:`ABTest.run`, all days share one execution backend
        (caller-supplied, or one run-scoped pool under ``parallel``).
        """
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {n_days}")
        check_cohort_size(cohort_size, self._max_arms())
        backend, owned = run_backend(
            self.backend, self.parallel, self.n_workers, self.platform
        )
        result = PolicyReplayResult(
            results={name: ABTestResult() for name in self.policy_sets}
        )
        # an explicit parallel=False forces serial generation even over
        # the platform's configuration; None inherits it
        per_day_parallel = False if self.parallel is False else None
        try:
            for day in range(1, n_days + 1):
                cohort = self.platform.daily_cohort(
                    cohort_size, day, parallel=per_day_parallel, backend=backend
                )
                self._replay_day(cohort, day, result)
        finally:
            if owned:
                backend.shutdown()
        return result

    def replay_day(self, cohort, day: int) -> PolicyReplayResult:
        """Replay one fixed cohort (e.g. a logged day) through every set."""
        result = PolicyReplayResult(
            results={name: ABTestResult() for name in self.policy_sets}
        )
        self._replay_day(cohort, day, result)
        return result

    def _replay_day(self, cohort, day: int, result: PolicyReplayResult) -> None:
        """One day, one cohort, one tensor of outcome draws — N scorings.

        The partition seed and the per-user cost/reward uniforms are
        drawn once and reused for every set: same users in the model
        arm, same random-arm order, same realised outcomes per user.
        """
        check_cohort_size(cohort.n, self._max_arms())
        instrumented = self.metrics is not NULL_REGISTRY
        metrics_before = self.metrics.snapshot() if instrumented else None
        cost_uniforms = self._rng.random(cohort.n)
        reward_uniforms = self._rng.random(cohort.n)
        split_seed = int(self._rng.integers(0, np.iinfo(np.int64).max))
        for set_name, policies in self.policy_sets.items():
            split_rng = np.random.default_rng(split_seed)
            arms, orders, budgets, sizes = plan_day(
                cohort, policies, self.budget_fraction, split_rng
            )
            outcomes = self.platform.realize_arms(
                cohort,
                orders,
                budgets,
                cost_uniforms=cost_uniforms,
                reward_uniforms=reward_uniforms,
            )
            result.results[set_name].days.append(
                build_day_result(day, arms, sizes, outcomes)
            )
            self._c_scorings.inc()
        self._c_days.inc()
        self._c_users.inc(cohort.n)
        if instrumented:
            result.metrics_deltas.append(
                self.metrics.snapshot().delta(metrics_before).to_dict()
            )

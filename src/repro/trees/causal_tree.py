"""Honest causal tree (Athey & Imbens style).

Splits maximise *treatment-effect heterogeneity*: the criterion is the
weighted sum of squared child effects ``n_L τ̂_L² + n_R τ̂_R²``, the
empirical analogue of maximising Var[τ̂] across leaves.  With
``honest=True`` the sample is split in half: one half chooses the tree
structure, the other estimates the leaf effects — the de-biasing device
that makes causal forests' CATE estimates consistent.
"""

from __future__ import annotations

import numpy as np

from repro.causal.base import TrainableModel
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_binary,
    check_consistent_length,
)

__all__ = ["CausalTree", "best_effect_split"]


def best_effect_split(
    x_col: np.ndarray,
    y: np.ndarray,
    t: np.ndarray,
    min_treated_leaf: int,
    min_control_leaf: int,
) -> tuple[float, float]:
    """Best threshold on one feature by effect-heterogeneity gain.

    Scans sorted split points with prefix sums of treated/control
    outcome totals.  A split is valid only if both children keep at
    least ``min_treated_leaf`` treated and ``min_control_leaf`` control
    samples, so every leaf effect τ̂ = ȳ₁ − ȳ₀ is well defined.

    Returns ``(threshold, score)``; ``score`` is ``-inf`` when no valid
    split exists.
    """
    n = x_col.shape[0]
    order = np.argsort(x_col, kind="stable")
    xs = x_col[order]
    ys = y[order]
    ts = t[order]

    treated = ts == 1
    cum_n1 = np.cumsum(treated)
    cum_n0 = np.cumsum(~treated)
    cum_y1 = np.cumsum(ys * treated)
    cum_y0 = np.cumsum(ys * (~treated))

    n1_left = cum_n1[:-1]
    n0_left = cum_n0[:-1]
    y1_left = cum_y1[:-1]
    y0_left = cum_y0[:-1]
    n1_right = cum_n1[-1] - n1_left
    n0_right = cum_n0[-1] - n0_left
    y1_right = cum_y1[-1] - y1_left
    y0_right = cum_y0[-1] - y0_left

    valid = (
        (n1_left >= min_treated_leaf)
        & (n0_left >= min_control_leaf)
        & (n1_right >= min_treated_leaf)
        & (n0_right >= min_control_leaf)
        & (xs[1:] > xs[:-1])
    )
    if not np.any(valid):
        return 0.0, -np.inf

    with np.errstate(divide="ignore", invalid="ignore"):
        tau_left = y1_left / np.maximum(n1_left, 1) - y0_left / np.maximum(n0_left, 1)
        tau_right = y1_right / np.maximum(n1_right, 1) - y0_right / np.maximum(n0_right, 1)
    n_left = n1_left + n0_left
    n_right = n1_right + n0_right
    score = n_left * tau_left**2 + n_right * tau_right**2
    score = np.where(valid, score, -np.inf)
    best = int(np.argmax(score))
    threshold = 0.5 * (xs[best] + xs[best + 1])
    return float(threshold), float(score[best])


class CausalTree(TrainableModel):
    """A single honest causal tree estimating ``τ(x) = E[Y(1) − Y(0) | x]``.

    Parameters
    ----------
    max_depth:
        Maximum depth of the structure tree.
    min_treated_leaf, min_control_leaf:
        Minimum per-arm counts every leaf must keep (structure stage;
        honest leaves falling below fall back to the parent estimate).
    max_features:
        Features scanned per split (``None`` = all, int, or ``"sqrt"``).
    honest:
        Use half the data for structure, half for leaf estimates.
    random_state:
        Seed/generator for honesty split and feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = 6,
        min_treated_leaf: int = 10,
        min_control_leaf: int = 10,
        max_features: int | str | None = None,
        honest: bool = True,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if min_treated_leaf < 1 or min_control_leaf < 1:
            raise ValueError("min_treated_leaf / min_control_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_treated_leaf = int(min_treated_leaf)
        self.min_control_leaf = int(min_control_leaf)
        self.max_features = max_features
        self.honest = bool(honest)
        self.random_state = random_state
        self.n_features_: int | None = None
        self.feature_: list[int] = []
        self.threshold_: list[float] = []
        self.left_: list[int] = []
        self.right_: list[int] = []
        self.effect_: list[float] = []

    def _n_candidate_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        k = int(self.max_features)
        if not 1 <= k <= d:
            raise ValueError(f"max_features must be in [1, {d}], got {k}")
        return k

    def _new_node(self, effect: float) -> int:
        self.feature_.append(-1)
        self.threshold_.append(0.0)
        self.left_.append(-1)
        self.right_.append(-1)
        self.effect_.append(effect)
        return len(self.effect_) - 1

    @staticmethod
    def _naive_effect(y: np.ndarray, t: np.ndarray) -> float:
        n1 = int(np.sum(t == 1))
        n0 = int(np.sum(t == 0))
        if n1 == 0 or n0 == 0:
            return 0.0
        return float(y[t == 1].mean() - y[t == 0].mean())

    def fit(self, x, y, t) -> "CausalTree":
        x = check_2d(x)
        y = check_1d(y)
        t = check_binary(t)
        check_consistent_length(x, y, t, names=("X", "y", "treatment"))
        if np.sum(t == 1) < self.min_treated_leaf or np.sum(t == 0) < self.min_control_leaf:
            raise ValueError(
                "Not enough treated/control samples to satisfy the leaf constraints"
            )
        self.n_features_ = x.shape[1]
        rng = as_generator(self.random_state)

        n = x.shape[0]
        if self.honest and n >= 4 * max(self.min_treated_leaf, self.min_control_leaf):
            perm = rng.permutation(n)
            half = n // 2
            build_idx = perm[:half]
            est_idx = perm[half:]
        else:
            build_idx = np.arange(n)
            est_idx = np.arange(n)

        self.feature_, self.threshold_ = [], []
        self.left_, self.right_, self.effect_ = [], [], []
        xb, yb, tb = x[build_idx], y[build_idx], t[build_idx]
        root = self._new_node(self._naive_effect(yb, tb))
        stack = [(root, np.arange(xb.shape[0]), 0)]
        node_regions: dict[int, tuple[int, float, bool, int]] = {}
        while stack:
            node, idx, depth = stack.pop()
            self.effect_[node] = self._naive_effect(yb[idx], tb[idx])
            if self.max_depth is not None and depth >= self.max_depth:
                continue
            d = xb.shape[1]
            k = self._n_candidate_features(d)
            candidates = rng.choice(d, size=k, replace=False) if k < d else np.arange(d)
            best_feat, best_thr, best_score = -1, 0.0, -np.inf
            for feat in candidates:
                thr, score = best_effect_split(
                    xb[idx, feat],
                    yb[idx],
                    tb[idx],
                    self.min_treated_leaf,
                    self.min_control_leaf,
                )
                if score > best_score:
                    best_feat, best_thr, best_score = int(feat), thr, score
            if best_feat < 0:
                continue
            mask = xb[idx, best_feat] <= best_thr
            left = self._new_node(0.0)
            right = self._new_node(0.0)
            self.feature_[node] = best_feat
            self.threshold_[node] = best_thr
            self.left_[node] = left
            self.right_[node] = right
            stack.append((left, idx[mask], depth + 1))
            stack.append((right, idx[~mask], depth + 1))
        self._finalize()

        if self.honest:
            self._honest_estimates(x[est_idx], y[est_idx], t[est_idx])
            self._finalize()
        return self

    def _finalize(self) -> None:
        self._feature = np.asarray(self.feature_, dtype=np.int64)
        self._threshold = np.asarray(self.threshold_, dtype=float)
        self._left = np.asarray(self.left_, dtype=np.int64)
        self._right = np.asarray(self.right_, dtype=np.int64)
        self._effect = np.asarray(self.effect_, dtype=float)

    def _honest_estimates(self, x: np.ndarray, y: np.ndarray, t: np.ndarray) -> None:
        """Re-estimate leaf effects on the held-out estimation half."""
        leaves = self.apply(x)
        for leaf in np.unique(leaves):
            members = leaves == leaf
            y_leaf = y[members]
            t_leaf = t[members]
            n1 = int(np.sum(t_leaf == 1))
            n0 = int(np.sum(t_leaf == 0))
            if n1 >= 1 and n0 >= 1:
                # keep the structure-stage estimate when the estimation
                # half is too thin to overwrite it reliably
                self.effect_[int(leaf)] = float(
                    y_leaf[t_leaf == 1].mean() - y_leaf[t_leaf == 0].mean()
                )

    @property
    def n_nodes(self) -> int:
        return len(self.effect_)

    def apply(self, x) -> np.ndarray:
        if self.n_features_ is None:
            raise RuntimeError("CausalTree is not fitted; call fit() first")
        x = check_2d(x)
        if x.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {x.shape[1]} features but the tree was fitted with {self.n_features_}"
            )
        nodes = np.zeros(x.shape[0], dtype=np.int64)
        active = self._feature[nodes] >= 0
        while np.any(active):
            current = nodes[active]
            feat = self._feature[current]
            go_left = x[active, feat] <= self._threshold[current]
            nodes[active] = np.where(go_left, self._left[current], self._right[current])
            active = self._feature[nodes] >= 0
        return nodes

    def predict(self, x) -> np.ndarray:
        """Estimated CATE ``τ̂(x)`` for each row."""
        leaves = self.apply(x)  # raises if unfitted, before touching _effect
        return self._effect[leaves]

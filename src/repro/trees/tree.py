"""CART regression tree with variance-reduction splitting.

The tree is stored flat (parallel arrays) so prediction is an iterative
array walk rather than Python recursion per sample.  Split search scans
each candidate feature in sorted order with prefix sums, giving exact
SSE-optimal axis-aligned splits in ``O(n log n)`` per feature.
"""

from __future__ import annotations

import numpy as np

from repro.causal.base import TrainableModel
from repro.utils.rng import as_generator
from repro.utils.validation import check_1d, check_2d, check_consistent_length

__all__ = ["DecisionTreeRegressor", "best_sse_split"]

_NO_SPLIT = (-1, 0.0, -np.inf)


def best_sse_split(
    x_col: np.ndarray,
    y: np.ndarray,
    min_samples_leaf: int,
) -> tuple[float, float]:
    """Best threshold on one feature by sum-of-squared-error reduction.

    Returns ``(threshold, score)`` where ``score`` is the SSE decrease
    (``-inf`` when no valid split exists).  Ties in feature values are
    handled by only allowing splits between distinct values.
    """
    n = x_col.shape[0]
    if n < 2 * min_samples_leaf:
        return 0.0, -np.inf
    order = np.argsort(x_col, kind="stable")
    xs = x_col[order]
    ys = y[order]
    csum = np.cumsum(ys)
    csum2 = np.cumsum(ys * ys)
    total_sum = csum[-1]
    total_sq = csum2[-1]
    # candidate split after position i (1-based left count = i+1)
    left_counts = np.arange(1, n)
    left_sum = csum[:-1]
    left_sq = csum2[:-1]
    right_counts = n - left_counts
    right_sum = total_sum - left_sum
    right_sq = total_sq - left_sq
    sse_left = left_sq - left_sum**2 / left_counts
    sse_right = right_sq - right_sum**2 / right_counts
    parent_sse = total_sq - total_sum**2 / n
    gain = parent_sse - (sse_left + sse_right)
    valid = (
        (left_counts >= min_samples_leaf)
        & (right_counts >= min_samples_leaf)
        & (xs[1:] > xs[:-1])  # cannot split between equal values
    )
    if not np.any(valid):
        return 0.0, -np.inf
    gain = np.where(valid, gain, -np.inf)
    best = int(np.argmax(gain))
    threshold = 0.5 * (xs[best] + xs[best + 1])
    return float(threshold), float(gain[best])


class DecisionTreeRegressor(TrainableModel):
    """CART regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).  ``None`` grows until
        leaves are pure or hit ``min_samples_leaf``.
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples in each child.
    max_features:
        Number of features scanned per split: ``None`` (all), an int,
        or ``"sqrt"``.  Random subsetting is what decorrelates forest
        members.
    random_state:
        Seed/generator for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        # flat tree arrays (filled by fit)
        self.feature_: list[int] = []
        self.threshold_: list[float] = []
        self.left_: list[int] = []
        self.right_: list[int] = []
        self.value_: list[float] = []
        self.n_features_: int | None = None

    # ------------------------------------------------------------------
    def _n_candidate_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        k = int(self.max_features)
        if not 1 <= k <= d:
            raise ValueError(f"max_features must be in [1, {d}], got {k}")
        return k

    def _new_node(self, value: float) -> int:
        self.feature_.append(-1)
        self.threshold_.append(0.0)
        self.left_.append(-1)
        self.right_.append(-1)
        self.value_.append(value)
        return len(self.value_) - 1

    def fit(self, x, y) -> "DecisionTreeRegressor":
        x = check_2d(x)
        y = check_1d(y)
        check_consistent_length(x, y, names=("X", "y"))
        self.n_features_ = x.shape[1]
        self.feature_, self.threshold_ = [], []
        self.left_, self.right_, self.value_ = [], [], []
        rng = as_generator(self.random_state)
        root = self._new_node(float(y.mean()))
        # iterative depth-first construction: (node_id, indices, depth)
        stack = [(root, np.arange(x.shape[0]), 0)]
        while stack:
            node, idx, depth = stack.pop()
            self.value_[node] = float(y[idx].mean())
            if self._should_stop(idx, depth, y):
                continue
            d = x.shape[1]
            k = self._n_candidate_features(d)
            candidates = rng.choice(d, size=k, replace=False) if k < d else np.arange(d)
            best_feat, best_thr, best_gain = _NO_SPLIT
            for feat in candidates:
                thr, gain = best_sse_split(x[idx, feat], y[idx], self.min_samples_leaf)
                if gain > best_gain:
                    best_feat, best_thr, best_gain = int(feat), thr, gain
            if best_feat < 0 or best_gain <= 1e-12:
                continue
            mask = x[idx, best_feat] <= best_thr
            left_idx = idx[mask]
            right_idx = idx[~mask]
            left = self._new_node(float(y[left_idx].mean()))
            right = self._new_node(float(y[right_idx].mean()))
            self.feature_[node] = best_feat
            self.threshold_[node] = best_thr
            self.left_[node] = left
            self.right_[node] = right
            stack.append((left, left_idx, depth + 1))
            stack.append((right, right_idx, depth + 1))
        self._finalize()
        return self

    def _should_stop(self, idx: np.ndarray, depth: int, y: np.ndarray) -> bool:
        if self.max_depth is not None and depth >= self.max_depth:
            return True
        if idx.shape[0] < self.min_samples_split:
            return True
        node_y = y[idx]
        return bool(np.ptp(node_y) < 1e-15)

    def _finalize(self) -> None:
        self._feature = np.asarray(self.feature_, dtype=np.int64)
        self._threshold = np.asarray(self.threshold_, dtype=float)
        self._left = np.asarray(self.left_, dtype=np.int64)
        self._right = np.asarray(self.right_, dtype=np.int64)
        self._value = np.asarray(self.value_, dtype=float)

    @property
    def n_nodes(self) -> int:
        return len(self.value_)

    def apply(self, x) -> np.ndarray:
        """Leaf index reached by each row of ``x``."""
        if self.n_features_ is None:
            raise RuntimeError("Tree is not fitted; call fit() first")
        x = check_2d(x)
        if x.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {x.shape[1]} features but the tree was fitted with {self.n_features_}"
            )
        nodes = np.zeros(x.shape[0], dtype=np.int64)
        active = self._feature[nodes] >= 0
        while np.any(active):
            current = nodes[active]
            feat = self._feature[current]
            go_left = x[active, feat] <= self._threshold[current]
            nodes[active] = np.where(go_left, self._left[current], self._right[current])
            active = self._feature[nodes] >= 0
        return nodes

    def predict(self, x) -> np.ndarray:
        return self._value[self.apply(x)]

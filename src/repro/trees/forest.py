"""Bagged random-forest regressor."""

from __future__ import annotations

import numpy as np

from repro.causal.base import TrainableModel
from repro.trees.tree import DecisionTreeRegressor
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_1d, check_2d, check_consistent_length

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor(TrainableModel):
    """Bootstrap-aggregated CART ensemble.

    Default base learner for the meta-learner uplift baselines: forests
    tolerate the rare binary outcomes of the paper's datasets (visit /
    conversion rates of a few percent) far better than a single tree.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_leaf, max_features:
        Passed to each :class:`~repro.trees.tree.DecisionTreeRegressor`
        (``max_features`` defaults to ``"sqrt"``, the standard forest
        decorrelation choice).
    bootstrap:
        Sample rows with replacement per tree (default True).
    random_state:
        Seed/generator controlling bootstraps and feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = 8,
        min_samples_leaf: int = 5,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.random_state = random_state
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, x, y) -> "RandomForestRegressor":
        x = check_2d(x)
        y = check_1d(y)
        check_consistent_length(x, y, names=("X", "y"))
        n = x.shape[0]
        sampler = as_generator(self.random_state)
        tree_rngs = spawn_generators(sampler, self.n_estimators)
        self.trees_ = []
        for rng in tree_rngs:
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=rng,
            )
            tree.fit(x[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, x) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("RandomForestRegressor is not fitted; call fit() first")
        x = check_2d(x)
        preds = np.zeros(x.shape[0])
        for tree in self.trees_:
            preds += tree.predict(x)
        return preds / len(self.trees_)

    def predict_std(self, x) -> np.ndarray:
        """Across-tree std of predictions (a crude epistemic signal)."""
        if not self.trees_:
            raise RuntimeError("RandomForestRegressor is not fitted; call fit() first")
        x = check_2d(x)
        stacked = np.stack([tree.predict(x) for tree in self.trees_], axis=0)
        return stacked.std(axis=0, ddof=1) if len(self.trees_) > 1 else np.zeros(x.shape[0])

"""Least-squares gradient boosting on CART base learners."""

from __future__ import annotations

import numpy as np

from repro.causal.base import TrainableModel
from repro.trees.tree import DecisionTreeRegressor
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_1d, check_2d, check_consistent_length

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(TrainableModel):
    """Gradient boosting with squared-error loss.

    Each stage fits a shallow CART tree to the current residuals and is
    added with a shrinkage factor.  Optional row subsampling gives
    stochastic gradient boosting.

    Parameters
    ----------
    n_estimators:
        Number of boosting stages.
    learning_rate:
        Shrinkage applied to each stage.
    max_depth, min_samples_leaf:
        Base-tree capacity controls.
    subsample:
        Row fraction drawn (without replacement) per stage; 1.0 disables.
    random_state:
        Seed/generator for subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.random_state = random_state
        self.init_: float = 0.0
        self.stages_: list[DecisionTreeRegressor] = []
        self.train_score_: list[float] = []

    def fit(self, x, y) -> "GradientBoostingRegressor":
        x = check_2d(x)
        y = check_1d(y)
        check_consistent_length(x, y, names=("X", "y"))
        n = x.shape[0]
        sampler = as_generator(self.random_state)
        stage_rngs = spawn_generators(sampler, self.n_estimators)
        self.init_ = float(y.mean())
        current = np.full(n, self.init_)
        self.stages_ = []
        self.train_score_ = []
        for rng in stage_rngs:
            residual = y - current
            if self.subsample < 1.0:
                m = max(2, int(round(self.subsample * n)))
                idx = rng.choice(n, size=m, replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=rng,
            )
            tree.fit(x[idx], residual[idx])
            current += self.learning_rate * tree.predict(x)
            self.stages_.append(tree)
            self.train_score_.append(float(np.mean((y - current) ** 2)))
        return self

    def predict(self, x) -> np.ndarray:
        if not self.stages_:
            raise RuntimeError("GradientBoostingRegressor is not fitted; call fit() first")
        x = check_2d(x)
        pred = np.full(x.shape[0], self.init_)
        for tree in self.stages_:
            pred += self.learning_rate * tree.predict(x)
        return pred

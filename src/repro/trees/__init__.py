"""Tree-model substrate.

Implements the tree learners the paper's baselines depend on:

* :class:`DecisionTreeRegressor` — CART with variance-reduction splits;
* :class:`RandomForestRegressor` — bagged CART ensemble (base learner
  for the S-/T-/X-learner meta-baselines);
* :class:`GradientBoostingRegressor` — least-squares boosting;
* :class:`CausalTree` / :class:`CausalForest` — honest trees splitting
  on treatment-effect heterogeneity (Athey & Imbens / Wager & Athey
  style), the TPM-CF baseline of the paper.
"""

from repro.trees.boosting import GradientBoostingRegressor
from repro.trees.causal_forest import CausalForest
from repro.trees.causal_tree import CausalTree
from repro.trees.forest import RandomForestRegressor
from repro.trees.tree import DecisionTreeRegressor

__all__ = [
    "CausalForest",
    "CausalTree",
    "DecisionTreeRegressor",
    "GradientBoostingRegressor",
    "RandomForestRegressor",
]

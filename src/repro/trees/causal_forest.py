"""Causal forest: bagged honest causal trees with jackknife variance.

This is the estimator behind the paper's TPM-CF baseline and one of the
uncertainty-quantification comparators discussed in §II-B (causal
forests use the infinitesimal jackknife for CATE variance; here we
expose the simpler across-tree variance, which plays the same role for
the baseline comparisons).
"""

from __future__ import annotations

import numpy as np

from repro.causal.base import TrainableModel
from repro.trees.causal_tree import CausalTree
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import check_1d, check_2d, check_binary, check_consistent_length

__all__ = ["CausalForest"]


class CausalForest(TrainableModel):
    """Subsampled ensemble of honest causal trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    subsample:
        Row fraction drawn (without replacement) per tree.
    max_depth, min_treated_leaf, min_control_leaf, max_features, honest:
        Per-tree controls (see :class:`~repro.trees.causal_tree.CausalTree`).
    random_state:
        Seed/generator for subsampling and per-tree randomness.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        subsample: float = 0.7,
        max_depth: int | None = 5,
        min_treated_leaf: int = 10,
        min_control_leaf: int = 10,
        max_features: int | str | None = "sqrt",
        honest: bool = True,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = int(n_estimators)
        self.subsample = float(subsample)
        self.max_depth = max_depth
        self.min_treated_leaf = int(min_treated_leaf)
        self.min_control_leaf = int(min_control_leaf)
        self.max_features = max_features
        self.honest = bool(honest)
        self.random_state = random_state
        self.trees_: list[CausalTree] = []

    def fit(self, x, y, t) -> "CausalForest":
        x = check_2d(x)
        y = check_1d(y)
        t = check_binary(t)
        check_consistent_length(x, y, t, names=("X", "y", "treatment"))
        n = x.shape[0]
        sampler = as_generator(self.random_state)
        tree_rngs = spawn_generators(sampler, self.n_estimators)
        m = max(4, int(round(self.subsample * n)))
        self.trees_ = []
        for rng in tree_rngs:
            idx = rng.choice(n, size=min(m, n), replace=False)
            # guard: a subsample could lose one arm entirely on tiny data
            attempts = 0
            while (
                np.sum(t[idx] == 1) < self.min_treated_leaf
                or np.sum(t[idx] == 0) < self.min_control_leaf
            ):
                idx = rng.choice(n, size=min(m, n), replace=False)
                attempts += 1
                if attempts > 20:
                    idx = np.arange(n)
                    break
            tree = CausalTree(
                max_depth=self.max_depth,
                min_treated_leaf=self.min_treated_leaf,
                min_control_leaf=self.min_control_leaf,
                max_features=self.max_features,
                honest=self.honest,
                random_state=rng,
            )
            tree.fit(x[idx], y[idx], t[idx])
            self.trees_.append(tree)
        return self

    def predict(self, x) -> np.ndarray:
        """Ensemble-mean CATE ``τ̂(x)``."""
        if not self.trees_:
            raise RuntimeError("CausalForest is not fitted; call fit() first")
        x = check_2d(x)
        preds = np.zeros(x.shape[0])
        for tree in self.trees_:
            preds += tree.predict(x)
        return preds / len(self.trees_)

    def predict_var(self, x) -> np.ndarray:
        """Across-tree variance of the CATE estimate."""
        if not self.trees_:
            raise RuntimeError("CausalForest is not fitted; call fit() first")
        x = check_2d(x)
        stacked = np.stack([tree.predict(x) for tree in self.trees_], axis=0)
        if stacked.shape[0] < 2:
            return np.zeros(x.shape[0])
        return stacked.var(axis=0, ddof=1)

"""Sharded serving fleet: one engine API over N per-process shards.

A single :class:`~repro.serving.engine.ScoringEngine` is bound to one
process — its micro-batch buffer, LRU cache, and registry replica all
live wherever ``submit`` is called, so one CPU serves the whole stream.
:class:`ShardedScoringEngine` is the horizontal version: the same
request API (``submit``/``take``/``score``/``score_batch``/``flush``/
``poll``/``stats``/``latency_quantile``/``version_of``) routed across
``n_shards`` complete per-shard engines, each pinned to its own
:meth:`~repro.runtime.backend._PoolBackend.submit_to` lane of an
:class:`~repro.runtime.ExecutionBackend`.  On a
:class:`~repro.runtime.ProcessBackend` every shard is a long-lived
worker process with its own cache and registry replica; on the
:class:`~repro.runtime.SerialBackend` the whole fleet runs inline —
bit-identical to a plain engine at ``n_shards=1``, which is the
correctness anchor the tests pin.

Three contracts hold by construction:

**Sticky routing.**  A keyed request always lands on
``blake2b(key) % n_shards`` — the shard whose cache has seen that user
before and whose registry replica routes the same champion/challenger
split the parent would.  Keyless requests round-robin.

**Merge-derived accounting.**  The fleet keeps *no* second set of
request counters.  Each shard owns a real
:class:`~repro.obs.MetricsRegistry`; ``stats``, ``latency_quantile``,
and ``metrics.snapshot()`` are computed by folding the per-shard
:class:`~repro.obs.Snapshot`\\ s (and latency sketches) with
:meth:`~repro.obs.Snapshot.merge`.  Fleet totals therefore *are* the
sum of shard truth — there is nothing to drift.

**Replica sync by revision.**  The parent's
:class:`~repro.serving.registry.ModelRegistry` is the control plane
(an :class:`~repro.serving.promotion.AutoPromoter` mutates it
directly).  Every lifecycle mutation bumps ``registry.revision``; the
fleet compares that against the revision it last shipped and, when
they diverge, pickles a :meth:`~repro.serving.registry.ModelRegistry
.lifecycle_state` delta onto every lane *ahead of* subsequent traffic
(lanes are FIFO), so a promotion takes effect at a well-defined point
in each shard's stream.

Budget pacing scales the same way: :class:`ShardedBudgetPacer` splits
one budget ``B`` into per-shard :class:`~repro.serving.pacing
.BudgetPacer` slices and periodically rebalances them — each tick of a
:class:`~repro.runtime.DeadlineLoop` re-divides the *unspent* residual
in proportion to each slice's remaining horizon, so a hot shard
borrows headroom from quiet ones while the slice-sum invariant
``Σ budgets == B`` (and hence fleet spend < B) survives every tick.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import pickle
from collections import deque
from typing import Sequence

import numpy as np

from repro.obs import HistogramSnapshot, MetricsRegistry, Snapshot
from repro.runtime import (
    Clock,
    DeadlineLoop,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SharedScoreCache,
    SharedTensor,
    SharedTensorPool,
    SystemClock,
)
from repro.serving.engine import EngineCore, ScoringEngine, _STAT_NAMES
from repro.serving.pacing import BudgetPacer
from repro.serving.policy import DecisionPolicy, GreedyROIPolicy
from repro.serving.registry import ModelRegistry

__all__ = ["ShardedBudgetPacer", "ShardedScoringEngine"]

# fleet ids distinguish coexisting fleets sharing one backend's workers
_FLEET_IDS = itertools.count()

# the default Histogram grid (relative_error=0.01); an empty fleet
# latency sketch must carry the same gamma so merge/delta line up
_DEFAULT_GAMMA = (1.0 + 0.01) / (1.0 - 0.01)

_LATENCY_METRIC = "engine.latency_seconds"


# ---------------------------------------------------------------------------
# worker-side shard operations (module-level: picklable by reference)
# ---------------------------------------------------------------------------
# Each worker process (or thread, or the parent itself on the serial
# backend) holds its shards here, keyed by (fleet_id, shard_index).
# FIFO lane ordering guarantees _shard_install runs before any other op
# on the lane, so the dict is always populated when traffic arrives.
_SHARD_ENGINES: dict[tuple[int, int], ScoringEngine] = {}

# zero-copy transport state per shard: the attacher side of the
# parent's segments (see :mod:`repro.runtime.shm`).  Workers only ever
# *attach* — the lifecycle rule is that the parent, who created every
# segment, releases them; a worker's pool merely closes its own
# mappings at _shard_drop (or process exit).
_SHARD_TRANSPORTS: dict[tuple[int, int], "_WorkerTransport"] = {}


class _WorkerTransport:
    """One shard's attached transport segments + ring write cursor."""

    __slots__ = ("pool", "ring", "ring_slots", "ring_written", "staging")

    def __init__(self, pool: SharedTensorPool, ring: SharedTensor, ring_slots: int) -> None:
        self.pool = pool
        self.ring = ring
        self.ring_slots = ring_slots
        self.ring_written = 0  # absolute result cursor (parent reads [consumed, written))
        self.staging: dict[str, SharedTensor] = {}


def _shard_install(
    fleet: int,
    shard: int,
    core_blob: bytes,
    max_latency_ms: float | None,
    clock: Clock | None,
    transport_desc: dict | None = None,
) -> int:
    """Build shard ``shard`` of fleet ``fleet`` from a pickled core.

    The core arrives as bytes pickled *by the parent* (not by the
    executor) so the replica is a genuine copy on every backend — on
    the serial backend an un-pickled core would share the parent's
    live registry and the fleet would stop being a replica system.
    Each shard gets its own real :class:`MetricsRegistry`: the fleet's
    accounting is the merge of these.

    ``transport_desc`` (zero-copy fleets only) names the parent's
    segments: ``{"ring": (name, slots), "cache": (name, slots)|None}``.
    The shard attaches its result ring and — when the fleet runs a
    shared score cache — plugs the one fleet-wide
    :class:`~repro.runtime.SharedScoreCache` into its engine, so a
    score cached by any shard is a cache hit on all of them.
    """
    core: EngineCore = pickle.loads(core_blob)
    score_cache = None
    if transport_desc is not None:
        pool = SharedTensorPool(prefix=f"repro-shard{shard}")
        ring_name, ring_slots = transport_desc["ring"]
        ring = pool.attach(ring_name, (ring_slots, 3))
        _SHARD_TRANSPORTS[(fleet, shard)] = _WorkerTransport(pool, ring, ring_slots)
        if transport_desc.get("cache") is not None:
            cache_name, cache_slots = transport_desc["cache"]
            score_cache = SharedScoreCache.attach(pool, cache_name, cache_slots)
    _SHARD_ENGINES[(fleet, shard)] = core.build(
        max_latency_ms=max_latency_ms,
        clock=clock,
        backend=SerialBackend(),
        metrics=MetricsRegistry(),
        score_cache=score_cache,
    )
    return shard


def _resolve_rows(fleet: int, shard: int, rows) -> np.ndarray:
    """Turn a feed payload into rows: either the array itself (pickle /
    inline transports) or a staged-segment descriptor to view."""
    if not isinstance(rows, tuple):
        return rows
    _tag, name, cap, d, pos, n = rows
    transport = _SHARD_TRANSPORTS[(fleet, shard)]
    seg = transport.staging.get(name)
    if seg is None:
        seg = transport.staging[name] = transport.pool.attach(name, (cap, d))
    return seg.array[pos : pos + n]


def _shard_feed(
    fleet: int, shard: int, rows, keys: list, ring_consumed: int = 0
):
    """Submit a dispatch of rows and return everything now ready.

    Zero-copy fleets ship ``rows`` as a ``("seg", name, cap, d, pos,
    n)`` descriptor into the parent's staging ring, and results go
    back through the shard's shared result ring when it has room
    (``("ring", start, k)``) — the parent ships its consumed cursor
    with every feed, so the worker never overwrites unread slots.  A
    full ring (or a non-transport fleet) returns results inline.
    """
    engine = _SHARD_ENGINES[(fleet, shard)]
    resolved = _resolve_rows(fleet, shard, rows)
    if any(key is not None for key in keys):
        for row, key in zip(resolved, keys):
            # rids are deliberately dropped: the shard worker consumes
            # results positionally via the drain() below, and submit-time
            # failures surface through drain's error propagation
            engine.submit(row, key=key)  # repro: allow[RPR006]
    else:
        # keyless dispatch: one vectorised submit (falls back to the
        # per-row path internally whenever caching/routing demand it)
        engine.submit_batch(np.asarray(resolved))  # repro: allow[RPR006]
    results = engine.drain()
    transport = _SHARD_TRANSPORTS.get((fleet, shard))
    if transport is None:
        return results
    k = len(results)
    free = transport.ring_slots - (transport.ring_written - ring_consumed)
    if k == 0 or k > free:
        return ("inline", results)
    start = transport.ring_written
    idx = (start + np.arange(k)) % transport.ring_slots
    transport.ring.array[idx] = np.asarray(results, dtype=float)
    transport.ring_written = start + k
    return ("ring", start, k)


def _shard_flush(fleet: int, shard: int) -> list[tuple[int, int, float]]:
    engine = _SHARD_ENGINES[(fleet, shard)]
    engine.flush()
    engine.join()
    return engine.drain()


def _shard_poll(
    fleet: int, shard: int
) -> tuple[int, float | None, list[tuple[int, int, float]]]:
    """Fire overdue deadline flushes; returns (fired, next_deadline, ready)."""
    engine = _SHARD_ENGINES[(fleet, shard)]
    fired = engine.poll()
    return fired, engine.next_deadline(), engine.drain()


def _shard_next_deadline(fleet: int, shard: int) -> float | None:
    return _SHARD_ENGINES[(fleet, shard)].next_deadline()


def _shard_score_batch(fleet: int, shard: int, x, key):
    """Score one pre-assembled part; zero-copy fleets ship ``x`` as a
    ``("bulk", in_name, cap, d, pos, n, out_name)`` descriptor and the
    scores land in the parent's output segment instead of a pickled
    return (the worker returns only the row count)."""
    engine = _SHARD_ENGINES[(fleet, shard)]
    if not isinstance(x, tuple):
        return engine.score_batch(x, key=key)
    _tag, in_name, cap, d, pos, n, out_name = x
    transport = _SHARD_TRANSPORTS[(fleet, shard)]
    pool = transport.pool
    seg_in = pool.attach(in_name, (cap, d))
    seg_out = pool.attach(out_name, (cap,))
    try:
        scores = engine.score_batch(seg_in.array[pos : pos + n], key=key)
        seg_out.array[pos : pos + n] = scores
    finally:
        pool.release(in_name)
        pool.release(out_name)
    return n


def _shard_snapshot(fleet: int, shard: int) -> tuple[Snapshot, dict]:
    """One shard's whole observable state: obs snapshot + version counters."""
    engine = _SHARD_ENGINES[(fleet, shard)]
    versions = {
        mv.version: {"requests": mv.requests, "cache_hits": mv.cache_hits}
        for mv in engine.registry.versions()
    }
    return engine.metrics.snapshot(), versions


def _shard_sync(fleet: int, shard: int, state_blob: bytes) -> int:
    """Apply a pickled registry lifecycle delta to the shard's replica."""
    _SHARD_ENGINES[(fleet, shard)].registry.apply_lifecycle_state(
        pickle.loads(state_blob)
    )
    return shard


def _shard_drop(fleet: int, shard: int) -> bool:
    transport = _SHARD_TRANSPORTS.pop((fleet, shard), None)
    if transport is not None:
        # attacher side only: close our mappings, never unlink — the
        # parent created these segments and the parent releases them
        transport.pool.close()
    return _SHARD_ENGINES.pop((fleet, shard), None) is not None


def _empty_latency_snapshot() -> HistogramSnapshot:
    return HistogramSnapshot(
        name=_LATENCY_METRIC,
        gamma=_DEFAULT_GAMMA,
        count=0,
        sum=0.0,
        min=math.inf,
        max=-math.inf,
        zero_count=0,
        buckets={},
    )


class _MergedSketch:
    """Read-only stand-in for ``engine.latency_hist`` over a fleet.

    Every access folds the shards' latency histograms with
    :meth:`HistogramSnapshot.merge` — same quantile guarantees, no
    separate fleet-side recording.
    """

    def __init__(self, fleet: "ShardedScoringEngine") -> None:
        self._fleet = fleet

    def snapshot(self) -> HistogramSnapshot:
        merged = _empty_latency_snapshot()
        for snap, _versions in self._fleet.shard_snapshots():
            hist = snap.get(_LATENCY_METRIC)
            if hist is not None and hist.count:
                merged = merged.merge(hist)
        return merged

    @property
    def count(self) -> int:
        return self.snapshot().count

    def quantile(self, q: float) -> float:
        return self.snapshot().quantile(q)

    def __repr__(self) -> str:
        return f"_MergedSketch(shards={self._fleet.n_shards})"


class _FleetMetrics(MetricsRegistry):
    """The fleet's registry: parent-side metrics + merged shard snapshots.

    A real :class:`MetricsRegistry` (parent components — a promoter, a
    pacer — adopt into it as usual) whose :meth:`snapshot` folds in
    every shard's snapshot, so one call still yields the whole fleet
    and ``snapshot().delta(before)`` still works (merged counters stay
    monotone because every constituent is).
    """

    def __init__(self, fleet: "ShardedScoringEngine") -> None:
        super().__init__()
        self._fleet = fleet

    def snapshot(self) -> Snapshot:
        merged = super().snapshot()
        for snap, _versions in self._fleet.shard_snapshots():
            merged = merged.merge(snap)
        return merged


# ---------------------------------------------------------------------------
# the fleet
# ---------------------------------------------------------------------------
class ShardedScoringEngine:
    """N per-process scoring shards behind the single-engine API.

    Parameters
    ----------
    models:
        A :class:`ModelRegistry` (shared with the promoter — this is
        the control plane) or a bare scorer with ``predict_roi``.
        Every model must round-trip pickle with bit-identical
        predictions (``tests/test_pickling.py`` pins this for all
        public model classes).
    n_shards:
        Fleet width; defaults to ``backend.n_workers``.
    policy / batch_size / cache_size / latency_log_size:
        Per-shard engine construction, as for :class:`ScoringEngine`.
    max_latency_ms:
        Per-shard deadline flushing.  Forces ``dispatch_size=1`` so
        every arrival reaches its shard (and its deadline loop)
        immediately.
    clock:
        Shared time source for deadline/latency accounting.  Only
        meaningful on in-process backends (serial/thread) — a clock
        cannot cross a process boundary, so on a
        :class:`ProcessBackend` pass ``None`` (shards fall back to
        their own :class:`~repro.runtime.SystemClock` when
        ``max_latency_ms`` is set).
    backend:
        Where shards live: one :meth:`submit_to` lane per shard.
        Defaults to a private :class:`SerialBackend` (shut down by
        :meth:`close`); a caller-provided backend is borrowed and left
        running.
    dispatch_size:
        Rows the parent buffers per shard before shipping one
        ``_shard_feed``.  Transport granularity **only**: flush
        boundaries are governed by the shard engine's own
        ``batch_size``, so scores and stats are identical for any
        value.  Defaults to ``batch_size`` (one feed per micro-batch).
    transport:
        How bytes cross the shard boundary.  ``"auto"`` (default)
        picks ``"shm"`` on a :class:`ProcessBackend` and ``"inline"``
        elsewhere.  ``"shm"`` is the zero-copy path: feature blocks
        land in per-shard shared staging rings and feeds ship only a
        ``(segment, offset, shape)`` descriptor; scores return through
        a per-shard shared result ring (with an automatic inline
        fallback when a ring is full); and when ``cache_size > 0`` the
        score cache becomes one fleet-wide
        :class:`~repro.runtime.SharedScoreCache` segment, so a score
        cached by any shard is a hit on all of them without a byte of
        pickling.  ``"pickle"`` forces the old whole-array-through-
        the-lane dispatch (the measured baseline the zero-copy bench
        compares against); ``"inline"`` is the same mechanism on an
        in-process backend, where the lane hands the array over
        without serialising anyway.  Results and stats are identical
        across transports — only the copies differ; note ``"shm"``
        trades the per-shard LRU for the shared fixed-capacity table,
        which can only change *hit rates*, never scores.
    """

    def __init__(
        self,
        models: ModelRegistry | object,
        n_shards: int | None = None,
        *,
        policy: DecisionPolicy | None = None,
        batch_size: int = 32,
        cache_size: int = 4096,
        max_latency_ms: float | None = None,
        clock: Clock | None = None,
        backend: ExecutionBackend | None = None,
        dispatch_size: int | None = None,
        latency_log_size: int | None = 1_000_000,
        transport: str = "auto",
    ) -> None:
        if isinstance(models, ModelRegistry):
            self.registry = models
        else:
            self.registry = ModelRegistry()
            self.registry.register(models, promote=True)
        self._owns_backend = backend is None
        self.backend: ExecutionBackend = backend if backend is not None else SerialBackend()
        if not hasattr(self.backend, "submit_to"):
            raise TypeError(
                f"backend {self.backend!r} has no submit_to lane affinity; "
                "sharded serving needs long-lived per-shard workers"
            )
        if n_shards is None:
            n_shards = self.backend.n_workers
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if isinstance(self.backend, SerialBackend):
            pass  # serial lanes are logical: any count is fine
        elif n_shards > self.backend.n_workers:
            raise ValueError(
                f"n_shards={n_shards} exceeds the backend's "
                f"{self.backend.n_workers} lanes"
            )
        if clock is not None and isinstance(self.backend, ProcessBackend):
            raise ValueError(
                "a shared clock cannot cross a process boundary; use a "
                "Serial/ThreadBackend for clocked fleets (process shards "
                "default to their own SystemClock when max_latency_ms is set)"
            )
        self.n_shards = int(n_shards)
        self.clock = clock
        self.max_latency_ms = max_latency_ms
        self._deadline_driven = max_latency_ms is not None
        if dispatch_size is None:
            dispatch_size = int(batch_size)
        if self._deadline_driven:
            dispatch_size = 1  # arrivals must reach their shard's deadline loop
        if dispatch_size < 1:
            raise ValueError(f"dispatch_size must be >= 1, got {dispatch_size}")
        self.dispatch_size = int(dispatch_size)

        core = EngineCore(
            registry=self.registry,
            policy=policy if policy is not None else GreedyROIPolicy(),
            batch_size=int(batch_size),
            cache_size=int(cache_size),
            latency_log_size=latency_log_size,
        )
        self.policy = core.policy
        self.batch_size = core.batch_size
        self._fleet_id = next(_FLEET_IDS)
        self._closed = False

        # request plumbing: parent ids, per-shard local-id mirrors, buffers
        self._next_rid = 0
        self._rr = 0  # keyless round-robin cursor
        self._ready: dict[int, float] = {}
        self._version_by_rid: dict[int, int] = {}
        self._next_local = [0] * self.n_shards
        self._rid_map: list[dict[int, int]] = [{} for _ in range(self.n_shards)]
        self._buf_rows: list[list[np.ndarray]] = [[] for _ in range(self.n_shards)]
        self._buf_keys: list[list] = [[] for _ in range(self.n_shards)]
        self._buf_rids: list[list[int]] = [[] for _ in range(self.n_shards)]
        self._inflight: deque = deque()  # (kind, shard, future, meta)

        self.metrics: MetricsRegistry = _FleetMetrics(self)
        self.latency_hist = _MergedSketch(self)

        # zero-copy transport: the parent creates every segment (and
        # therefore releases every segment — close() sweeps the pool
        # even when workers died mid-flight)
        if transport == "auto":
            transport = "shm" if isinstance(self.backend, ProcessBackend) else "inline"
        if transport not in ("shm", "pickle", "inline"):
            raise ValueError(
                f"transport must be 'auto', 'shm', 'pickle' or 'inline', got {transport!r}"
            )
        self.transport = transport
        self._shm_pool: SharedTensorPool | None = None
        transport_desc = None
        if transport == "shm":
            self._shm_pool = SharedTensorPool(metrics=self.metrics, prefix="repro-fleet")
            self._ring_slots = max(16 * self.dispatch_size, 1024)
            self._rings = [
                self._shm_pool.create((self._ring_slots, 3)) for _ in range(self.n_shards)
            ]
            self._ring_consumed = [0] * self.n_shards
            # staging rings materialise lazily (row width unknown yet)
            self._stage_cap = max(8 * self.dispatch_size, 512)
            self._staging: list[SharedTensor | None] = [None] * self.n_shards
            self._stage_head = [0] * self.n_shards  # absolute consumed row cursor
            self._stage_tail = [0] * self.n_shards  # absolute written row cursor
            self._shared_cache: SharedScoreCache | None = None
            if core.cache_size > 0:
                # open addressing wants headroom: 2x slots keeps the
                # probe windows sparse at the engine's nominal capacity
                self._shared_cache = SharedScoreCache.create(
                    self._shm_pool, slots=max(2 * core.cache_size, 8)
                )

        # ship the replicas: first task on every lane, ahead of traffic
        blob = pickle.dumps(core)
        self._known_versions = {mv.version for mv in self.registry.versions()}
        self._synced_revision = self.registry.revision
        for shard in range(self.n_shards):
            if transport == "shm":
                transport_desc = {
                    "ring": (self._rings[shard].name, self._ring_slots),
                    "cache": (
                        self._shared_cache.descriptor()
                        if self._shared_cache is not None
                        else None
                    ),
                }
            self._enqueue(shard, "install", _shard_install,
                          self._fleet_id, shard, blob, max_latency_ms, clock,
                          transport_desc)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, key: str | int | None) -> int:
        """The shard a key routes to (keyless draws the round-robin cursor)."""
        if key is None:
            shard = self._rr
            self._rr = (self._rr + 1) % self.n_shards
            return shard
        digest = hashlib.blake2b(str(key).encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.n_shards

    # ------------------------------------------------------------------
    # request lifecycle (the ScoringEngine facade)
    # ------------------------------------------------------------------
    def submit(self, x_row: np.ndarray, key: str | int | None = None) -> int:
        """Enqueue one request on its shard; returns the fleet request id."""
        self._maybe_sync()
        row = np.ascontiguousarray(np.asarray(x_row, dtype=float).ravel())
        rid = self._next_rid
        self._next_rid += 1
        shard = self.shard_of(key)
        self._buf_rows[shard].append(row)
        self._buf_keys[shard].append(key)
        self._buf_rids[shard].append(rid)
        if len(self._buf_rows[shard]) >= self.dispatch_size:
            self._feed(shard)
        self._reap(wait=False)
        return rid

    def submit_batch(
        self, x: np.ndarray, keys: Sequence[str | int | None] | None = None
    ) -> range:
        """Enqueue ``x``'s rows in one call; returns their fleet ids.

        Row ``i`` gets fleet id ``rid0 + i`` and routes exactly where
        ``submit(x[i], key=keys[i])`` would have sent it — keyless rows
        walk the round-robin cursor, keyed rows stick to their hash
        shard — so results, stats, and version attribution match N
        single submits.  The win is constant-factor: one routing pass,
        one buffer extension per shard, and (keyless) the shard engine
        scores the dispatch through its own vectorised
        :meth:`ScoringEngine.submit_batch`.
        """
        self._maybe_sync()
        x = np.ascontiguousarray(np.asarray(x, dtype=float))
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        n = x.shape[0]
        if keys is not None and len(keys) != n:
            raise ValueError(f"got {n} rows but {len(keys)} keys")
        rid0 = self._next_rid
        self._next_rid += n
        if n == 0:
            return range(rid0, rid0)
        if keys is None:
            shards = (self._rr + np.arange(n)) % self.n_shards
            self._rr = int((self._rr + n) % self.n_shards)
        else:
            shards = np.fromiter(
                (self.shard_of(k) for k in keys), dtype=np.int64, count=n
            )
        for shard in range(self.n_shards):
            idx = np.nonzero(shards == shard)[0]
            if idx.size == 0:
                continue
            block = x[idx]
            ids = idx.tolist()
            self._buf_rows[shard].extend(block)
            self._buf_keys[shard].extend(
                [None] * len(ids) if keys is None else [keys[i] for i in ids]
            )
            self._buf_rids[shard].extend(rid0 + i for i in ids)
            if len(self._buf_rids[shard]) >= self.dispatch_size:
                self._feed(shard)
        self._reap(wait=False)
        return range(rid0, rid0 + n)

    def flush(self, reason: str = "manual") -> int:
        """Ship every buffered request and flush every shard; returns
        the number of requests dispatched from the parent buffers."""
        self._maybe_sync()
        dispatched = sum(self._feed(shard) for shard in range(self.n_shards))
        for shard in range(self.n_shards):
            self._enqueue(shard, "flush", _shard_flush, self._fleet_id, shard)
        self._reap(wait=True)
        return dispatched

    def poll(self) -> int:
        """Advance the fleet: reap finished dispatches and (when
        deadline-driven) fire every shard's overdue flushes."""
        self._maybe_sync()
        self._reap(wait=False)
        fired = 0
        if self._deadline_driven:
            futures = [
                (s, self.backend.submit_to(s, _shard_poll, self._fleet_id, s))
                for s in range(self.n_shards)
            ]
            for shard, future in futures:
                n_fired, _deadline, drained = future.result()
                fired += n_fired
                self._absorb(shard, drained)
        return fired

    def join(self) -> None:
        """Block until every shipped dispatch has resolved."""
        self._reap(wait=True)

    def next_deadline(self) -> float | None:
        """Earliest pending flush deadline across the fleet, or None."""
        if not self._deadline_driven:
            return None
        deadlines = []
        for shard in range(self.n_shards):
            future = self.backend.submit_to(
                shard, _shard_next_deadline, self._fleet_id, shard
            )
            due = future.result()
            if due is not None:
                deadlines.append(due)
        return min(deadlines) if deadlines else None

    def has_result(self, request_id: int) -> bool:
        """True once the request's score is available (advances the fleet)."""
        if request_id in self._ready:
            return True
        self.poll()
        return request_id in self._ready

    def version_of(self, request_id: int) -> int:
        """Registry version id whose score serves this request (valid
        once the result is ready, until it is taken)."""
        return self._version_by_rid[request_id]

    def take(self, request_id: int) -> float:
        """Pop a finished score (KeyError when still pending/unknown)."""
        if request_id not in self._ready:
            self._reap(wait=False)
        score = self._ready.pop(request_id)
        self._version_by_rid.pop(request_id, None)
        return score

    def drain(self) -> list[tuple[int, int, float]]:
        """Pop every finished result as ``(request_id, version_id, score)``."""
        self.poll()
        out = []
        for rid in sorted(self._ready):
            score = self._ready.pop(rid)
            out.append((rid, self._version_by_rid.pop(rid, -1), score))
        return out

    def score(self, x_row: np.ndarray, key: str | int | None = None) -> float:
        """Synchronous convenience path: submit, flush, return."""
        rid = self.submit(x_row, key=key)
        if rid not in self._ready:
            self.flush()
        return self.take(rid)

    def score_batch(self, x: np.ndarray, key: str | int | None = None) -> np.ndarray:
        """Score a pre-assembled batch.

        Keyed batches go whole to their sticky shard (one routed
        version, exactly the single-engine semantics).  Keyless
        batches split row-contiguously across every shard — the fleet
        throughput path — and each chunk routes on its own shard's
        replica (identical outcome whenever no challenger is staged).
        """
        self._maybe_sync()
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if key is not None:
            shard = self.shard_of(key)
            future = self.backend.submit_to(
                shard, _shard_score_batch, self._fleet_id, shard, x, key
            )
            return np.asarray(future.result(), dtype=float).ravel()
        if self.transport == "shm" and x.shape[0] >= self.n_shards:
            return self._score_batch_shm(x)
        parts = np.array_split(x, self.n_shards)
        futures = [
            (shard, self.backend.submit_to(
                shard, _shard_score_batch, self._fleet_id, shard, part, None
            ))
            for shard, part in enumerate(parts)
            if part.shape[0]
        ]
        return np.concatenate(
            [np.asarray(f.result(), dtype=float).ravel() for _s, f in futures]
        ) if futures else np.empty(0)

    def _score_batch_shm(self, x: np.ndarray) -> np.ndarray:
        """Keyless bulk scoring over shared segments: rows go out and
        scores come back without a pickled byte.

        One input segment holds the whole batch and one output segment
        its scores; each shard reads/writes only its contiguous slice,
        so there is no cross-shard write overlap to synchronise.  Both
        segments are per-call (bulk batches are occasional and sized
        arbitrarily — the feed path's persistent rings don't fit) and
        the parent releases them before returning, success or not.
        """
        n, d = x.shape
        seg_in = self._shm_pool.create((n, d))
        seg_out = self._shm_pool.create((n,))
        try:
            seg_in.array[:] = x
            # same part boundaries as np.array_split, so each shard
            # scores byte-identical slices to the pickled dispatch
            base, extra = divmod(n, self.n_shards)
            futures = []
            pos = 0
            for shard in range(self.n_shards):
                stop = pos + base + (1 if shard < extra else 0)
                if stop == pos:
                    continue
                desc = ("bulk", seg_in.name, n, d, pos, stop - pos, seg_out.name)
                futures.append(self.backend.submit_to(
                    shard, _shard_score_batch, self._fleet_id, shard, desc, None
                ))
                pos = stop
            for future in futures:
                future.result()
            return seg_out.array.copy()
        finally:
            self._shm_pool.release(seg_in.name)
            self._shm_pool.release(seg_out.name)

    # ------------------------------------------------------------------
    # merge-derived accounting
    # ------------------------------------------------------------------
    def shard_snapshots(self) -> list[tuple[Snapshot, dict]]:
        """Per-shard ``(obs snapshot, version counters)``, in shard order.

        Each query rides its shard's FIFO lane, so it observes
        everything dispatched before it.
        """
        futures = [
            self.backend.submit_to(s, _shard_snapshot, self._fleet_id, s)
            for s in range(self.n_shards)
        ]
        return [f.result() for f in futures]

    def fleet_snapshot(self) -> Snapshot:
        """All shards' metrics folded into one :class:`Snapshot`."""
        merged = Snapshot()
        for snap, _versions in self.shard_snapshots():
            merged = merged.merge(snap)
        return merged

    @property
    def stats(self) -> dict[str, int]:
        """Fleet request/flush/cache counters — the shard sum, derived
        by snapshot merge (requests still in the parent's dispatch
        buffers are not yet counted; ``flush`` first for exact totals)."""
        merged = self.fleet_snapshot()
        out = {}
        for name in _STAT_NAMES:
            metric = merged.get(f"engine.{name}")
            out[name] = int(metric.value) if metric is not None else 0
        return out

    def version_stats(self) -> dict[int, dict[str, int]]:
        """Per-version served-request counters summed across shards."""
        totals: dict[int, dict[str, int]] = {}
        for _snap, versions in self.shard_snapshots():
            for vid, counts in versions.items():
                slot = totals.setdefault(vid, {"requests": 0, "cache_hits": 0})
                slot["requests"] += counts["requests"]
                slot["cache_hits"] += counts["cache_hits"]
        return totals

    def latency_quantile(self, q: float) -> float:
        """Fleet submit→score latency quantile from the merged sketches."""
        merged = self.latency_hist.snapshot()
        if merged.count == 0:
            raise ValueError("no latencies recorded — run with a clocked engine")
        return merged.quantile(q)

    @property
    def latencies(self) -> list[float]:
        """Raw per-request latencies, concatenated shard-by-shard.

        Only in-process shards (serial/thread backends) are readable;
        process shards contribute nothing here — use
        :meth:`latency_quantile` (merged sketches) for fleet
        quantiles on any backend.
        """
        out: list[float] = []
        for shard in range(self.n_shards):
            engine = _SHARD_ENGINES.get((self._fleet_id, shard))
            if engine is not None:
                out.extend(engine.latencies)
        return out

    @property
    def latencies_dropped(self) -> int:
        return sum(
            engine.latencies_dropped
            for shard in range(self.n_shards)
            if (engine := _SHARD_ENGINES.get((self._fleet_id, shard))) is not None
        )

    @property
    def n_pending(self) -> int:
        """Requests buffered parent-side, not yet shipped to a shard."""
        return sum(len(rows) for rows in self._buf_rows)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain in-flight work, drop every shard, release every shared
        segment, and shut down a privately owned backend (idempotent).

        Segment release is unconditional: the parent created every
        fleet segment, so whatever the reap or the drops raise — a
        mid-flight scoring exception, even a dead process worker — the
        final tier closes the parent's pool, which unlinks them all.
        """
        if self._closed:
            return
        self._closed = True
        try:
            try:
                self._reap(wait=True)
            finally:
                futures = [
                    self.backend.submit_to(s, _shard_drop, self._fleet_id, s)
                    for s in range(self.n_shards)
                ]
                for f in futures:
                    f.result()
        finally:
            if self._shm_pool is not None:
                self._shm_pool.close()
            if self._owns_backend:
                self.backend.shutdown()

    def __enter__(self) -> "ShardedScoringEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedScoringEngine(n_shards={self.n_shards}, "
            f"backend={type(self.backend).__name__})"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _enqueue(self, shard: int, kind: str, fn, *args, meta=None) -> None:
        self._inflight.append((kind, shard, self.backend.submit_to(shard, fn, *args), meta))

    def _stage_rows(self, shard: int, rows: np.ndarray):
        """Land a feed's rows in the shard's staging ring; returns the
        descriptor to ship, or ``None`` when the ring can't take them
        (full, or a row-width change) — the caller falls back to the
        pickled dispatch, which is always correct."""
        n, d = rows.shape
        staging = self._staging[shard]
        if staging is None:
            if n > self._stage_cap:
                return None
            staging = self._staging[shard] = self._shm_pool.create((self._stage_cap, d))
        elif staging.shape[1] != d:
            return None
        cap = staging.shape[0]
        head, tail = self._stage_head[shard], self._stage_tail[shard]
        pos = tail % cap
        if pos + n > cap:
            tail += cap - pos  # pad to the wrap boundary (freed with the feed)
            pos = 0
        if tail + n - head > cap:
            return None
        staging.array[pos : pos + n] = rows
        self._stage_tail[shard] = tail + n
        return ("seg", staging.name, cap, d, pos, n), tail + n

    def _feed(self, shard: int) -> int:
        """Ship shard ``shard``'s parent-side buffer as one dispatch."""
        rids = self._buf_rids[shard]
        if not rids:
            return 0
        # shard-local ids are assigned sequentially by the worker
        # engine's submit; mirror its counter to map them back
        base = self._next_local[shard]
        mapping = self._rid_map[shard]
        for offset, rid in enumerate(rids):
            mapping[base + offset] = rid
        self._next_local[shard] = base + len(rids)
        rows = np.stack(self._buf_rows[shard])
        keys = list(self._buf_keys[shard])
        n = len(rids)
        self._buf_rows[shard] = []
        self._buf_keys[shard] = []
        self._buf_rids[shard] = []
        if self.transport == "shm":
            staged = self._stage_rows(shard, rows)
            payload, meta = staged if staged is not None else (rows, None)
            self._enqueue(
                shard, "feed", _shard_feed, self._fleet_id, shard,
                payload, keys, self._ring_consumed[shard], meta=meta,
            )
        else:
            self._enqueue(shard, "feed", _shard_feed, self._fleet_id, shard, rows, keys)
        return n

    def _absorb(self, shard: int, drained: Sequence[tuple[int, int, float]]) -> None:
        mapping = self._rid_map[shard]
        for local, version, score in drained:
            rid = mapping.pop(local, None)
            if rid is None:
                continue  # already surfaced through another op's drain
            self._ready[rid] = score
            self._version_by_rid[rid] = version

    def _absorb_ring(self, shard: int, start: int, k: int) -> None:
        """Read ``k`` results the worker parked in the shared ring.

        Safe without locks: the feed's future resolved, so the worker
        finished writing; and the worker never writes past our consumed
        cursor + ring size, so these slots were not overwritten."""
        ring = self._rings[shard]
        idx = (start + np.arange(k)) % self._ring_slots
        mapping = self._rid_map[shard]
        for local, version, score in ring.array[idx].tolist():
            rid = mapping.pop(int(local), None)
            if rid is None:
                continue
            self._ready[rid] = score
            self._version_by_rid[rid] = int(version)
        self._ring_consumed[shard] = start + k

    def _reap(self, wait: bool) -> None:
        while self._inflight:
            kind, shard, future, meta = self._inflight[0]
            if not wait and not future.done():
                break
            self._inflight.popleft()
            result = future.result()  # re-raises worker failures here
            if meta is not None:
                # the worker consumed the staged rows: free them (FIFO,
                # so the head simply advances to this feed's end)
                self._stage_head[shard] = meta
            if kind == "feed" and isinstance(result, tuple):
                tag = result[0]
                if tag == "ring":
                    self._absorb_ring(shard, result[1], result[2])
                else:  # "inline": ring was full — results rode the future
                    self._absorb(shard, result[1])
            elif kind in ("feed", "flush"):
                self._absorb(shard, result)
            # install/sync/drop return markers; nothing to absorb

    def _maybe_sync(self) -> None:
        """Ship the registry lifecycle delta when the revision moved."""
        if self.registry.revision == self._synced_revision:
            return
        state = self.registry.lifecycle_state(known=self._known_versions)
        blob = pickle.dumps(state)
        for shard in range(self.n_shards):
            self._enqueue(shard, "sync", _shard_sync, self._fleet_id, shard, blob)
        self._known_versions |= set(state["stages"])
        self._synced_revision = self.registry.revision


# ---------------------------------------------------------------------------
# fleet budget pacing
# ---------------------------------------------------------------------------
class ShardedBudgetPacer:
    """One budget ``B`` paced as N rebalancing per-shard slices.

    Each slice is a complete :class:`BudgetPacer` holding ``B/N`` and
    ``horizon/N``; offers route to a slice (sticky by key, round-robin
    keyless — matching :meth:`ShardedScoringEngine.shard_of` so shard
    ``i``'s traffic meets pacer ``i``'s threshold), outcome feedback
    follows the offer it realises.  On every ``rebalance_every``
    seconds of ``clock`` (a :class:`DeadlineLoop` tick, polled from
    :meth:`offer`) the *unspent* residual ``R = B − Σ spentᵢ`` is
    re-divided over the slices in proportion to their remaining
    horizon::

        budgetᵢ ← spentᵢ + R · remainingᵢ / Σ remainingⱼ

    Every slice keeps at least what it already spent (so
    :meth:`BudgetPacer.rebudget` never violates a slice invariant) and
    the slice-sum is ``B`` after every tick, which is what makes fleet
    spend strictly bounded by ``B``: each slice's own cap does the
    local enforcement, the rebalance only moves headroom between
    slices.  ``rebalance_every`` without an explicit clock reads wall
    time (:class:`~repro.runtime.SystemClock`); with neither, the
    initial even split simply stays.

    The single-pacer surface (``budget``/``spent``/``offer``/
    ``observe_outcome``/``history``/...) is preserved, so
    :class:`~repro.serving.simulator.TrafficReplay` drives a fleet
    pacer unchanged.
    """

    def __init__(
        self,
        budget: float,
        horizon: int,
        n_shards: int,
        *,
        clock: Clock | None = None,
        rebalance_every: float | None = None,
        **pacer_params,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if not budget >= 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        if horizon < n_shards:
            raise ValueError(
                f"horizon {horizon} must cover at least one arrival per "
                f"shard ({n_shards})"
            )
        if rebalance_every is not None and not rebalance_every > 0:
            raise ValueError(
                f"rebalance_every must be > 0, got {rebalance_every}"
            )
        self.n_shards = int(n_shards)
        self.horizon = int(horizon)
        self._budget = float(budget)
        self.clock = clock
        self.rebalance_every = rebalance_every
        per_horizon = max(1, int(math.ceil(horizon / n_shards)))
        self.shards: list[BudgetPacer] = [
            BudgetPacer(budget / n_shards, per_horizon, **pacer_params)
            for _ in range(self.n_shards)
        ]
        self._rr = 0
        self._last_offer_shard = 0
        self.rebalances = 0
        self._loop: DeadlineLoop | None = None
        if rebalance_every is not None:
            # asking for periodic rebalancing implies a clock to read;
            # wall time is the natural default outside simulations
            self.clock = clock if clock is not None else SystemClock()
            self._loop = DeadlineLoop(self.clock)
            self._loop.schedule_in("rebalance", rebalance_every, self._on_tick)

    # ------------------------------------------------------------------
    # routing + the pacer surface
    # ------------------------------------------------------------------
    def shard_of(self, key: str | int | None) -> int:
        if key is None:
            shard = self._rr
            self._rr = (self._rr + 1) % self.n_shards
            return shard
        digest = hashlib.blake2b(str(key).encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.n_shards

    def offer(self, score: float, cost: float, key: str | int | None = None) -> bool:
        """Route one arrival to its slice and decide treat/skip."""
        if self._loop is not None:
            self._loop.poll()
        shard = self.shard_of(key)
        self._last_offer_shard = shard
        return self.shards[shard].offer(score, cost)

    def observe_outcome(self, t: int, y_r: float, y_c: float) -> None:
        """Feed one realised outcome back to the slice whose offer it
        realises (callers report immediately after :meth:`offer`, the
        :class:`~repro.serving.simulator.TrafficReplay` convention)."""
        self.shards[self._last_offer_shard].observe_outcome(t, y_r, y_c)

    # ------------------------------------------------------------------
    # slice rebalancing
    # ------------------------------------------------------------------
    def _on_tick(self) -> None:
        self.rebalance()
        if self._loop is not None and self.rebalance_every is not None:
            self._loop.schedule_in("rebalance", self.rebalance_every, self._on_tick)

    def rebalance(self) -> list[float]:
        """Re-divide the unspent residual by remaining horizon share.

        Returns the new per-slice budgets (summing to ``budget``
        exactly, up to float addition).
        """
        spent = [p.spent for p in self.shards]
        residual = self._budget - sum(spent)
        remaining = [max(0, p.horizon - p.n_seen) for p in self.shards]
        total_remaining = sum(remaining)
        if total_remaining == 0:
            # every slice exhausted its horizon: split residual evenly
            weights = [1.0 / self.n_shards] * self.n_shards
        else:
            weights = [r / total_remaining for r in remaining]
        budgets = [s + residual * w for s, w in zip(spent, weights)]
        for pacer, b in zip(self.shards, budgets):
            pacer.rebudget(b)
        self.rebalances += 1
        return budgets

    # ------------------------------------------------------------------
    # fleet accounting (sums over slices — no second ledger)
    # ------------------------------------------------------------------
    @property
    def budget(self) -> float:
        return self._budget

    @property
    def spent(self) -> float:
        return float(sum(p.spent for p in self.shards))

    @property
    def n_seen(self) -> int:
        return sum(p.n_seen for p in self.shards)

    @property
    def n_admitted(self) -> int:
        return sum(p.n_admitted for p in self.shards)

    @property
    def remaining(self) -> float:
        return max(0.0, self._budget - self.spent)

    @property
    def progress(self) -> float:
        return min(1.0, self.n_seen / self.horizon)

    @property
    def admit_rate(self) -> float:
        return self.n_admitted / self.n_seen if self.n_seen else 0.0

    @property
    def slice_budgets(self) -> list[float]:
        """Current per-slice budgets (sum == ``budget`` after any tick)."""
        return [p.budget for p in self.shards]

    @property
    def history(self) -> list[tuple[int, float, float]]:
        """Every slice's refresh trace, ordered by arrivals seen."""
        merged = [entry for p in self.shards for entry in p.history]
        merged.sort(key=lambda e: e[0])
        return merged

    def __repr__(self) -> str:
        return (
            f"ShardedBudgetPacer(budget={self._budget}, "
            f"n_shards={self.n_shards}, spent={self.spent:.3f})"
        )

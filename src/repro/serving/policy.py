"""Pluggable decision policies: how a model's output becomes a decision score.

A policy turns ``(model, feature batch)`` into one scalar score per
user; the :class:`~repro.serving.pacing.BudgetPacer` then admits the
users whose score clears its adaptive threshold.  Two stances from the
paper are provided:

* :class:`GreedyROIPolicy` — rank by the point estimate ``froi(x)``
  (the Algorithm-1 ordering, DRP/rDRP's default);
* :class:`ConformalGatedPolicy` — rank by the conformal *lower* bound
  of :meth:`RobustDRP.predict_interval`, so a user is treated only
  when even the pessimistic end of the interval clears the admission
  threshold.  This is the online analog of the paper's robustness
  argument: under miscalibration the point estimate over-treats
  uncertain users, while the lower bound concentrates spend on users
  whose profitability is *certain*.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DecisionPolicy", "GreedyROIPolicy", "ConformalGatedPolicy"]


class DecisionPolicy:
    """Base policy: maps a model and a feature batch to decision scores."""

    name = "base"

    def score_batch(self, model: object, x: np.ndarray) -> np.ndarray:
        """Return one decision score per row of ``x`` (vectorised)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class GreedyROIPolicy(DecisionPolicy):
    """Score by the model's ROI point estimate (Algorithm 1 ordering)."""

    name = "greedy_roi"

    def score_batch(self, model: object, x: np.ndarray) -> np.ndarray:
        return np.asarray(model.predict_roi(x), dtype=float).ravel()


class ConformalGatedPolicy(DecisionPolicy):
    """Score by the conformal lower ROI bound — the robust stance.

    Parameters
    ----------
    fallback_shrink:
        Models without ``predict_interval`` (plain DRP, TPM baselines)
        fall back to ``fallback_shrink × predict_roi``; the uniform
        shrink keeps the *ranking* identical while signalling that the
        gate is advisory only for such models.
    """

    name = "conformal_gated"

    def __init__(self, fallback_shrink: float = 0.9) -> None:
        if not 0.0 < fallback_shrink <= 1.0:
            raise ValueError(
                f"fallback_shrink must be in (0, 1], got {fallback_shrink}"
            )
        self.fallback_shrink = float(fallback_shrink)

    def score_batch(self, model: object, x: np.ndarray) -> np.ndarray:
        if callable(getattr(model, "predict_interval", None)):
            lower, _upper = model.predict_interval(x)
            return np.asarray(lower, dtype=float).ravel()
        return self.fallback_shrink * np.asarray(
            model.predict_roi(x), dtype=float
        ).ravel()

"""Replay a day of platform traffic through the online serving stack.

:class:`TrafficReplay` is the end-to-end harness tying the subsystem
together: a :class:`~repro.ab.platform.Platform` cohort is streamed
event-by-event (random arrival order), every arrival is scored through
the :class:`~repro.serving.engine.ScoringEngine`'s micro-batching path,
and the :class:`~repro.serving.pacing.BudgetPacer` decides treat/skip
as scores become available.  The result reports throughput, the spend
trajectory against the pacing curve, and — the number that matters —
incremental revenue relative to the *offline greedy oracle*: Algorithm
1 run on the same scores with the whole day visible at once.  An
online policy can at best match the oracle; the replay quantifies the
price of streaming.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.ab.platform import Platform
from repro.core.allocation import greedy_allocation
from repro.serving.engine import ScoringEngine
from repro.serving.pacing import BudgetPacer
from repro.utils.rng import as_generator

__all__ = ["TrafficReplay", "ReplayResult"]


@dataclass
class ReplayResult:
    """Outcome of one replayed day.

    ``spend_trajectory[i]`` is cumulative spend after the i-th decision
    — plotted against ``budget * curve(i / n_events)`` it shows how
    tightly the pacer tracked its target.  ``oracle_*`` fields hold the
    offline greedy solution on identical scores; ``revenue_ratio`` is
    online / oracle incremental revenue (1.0 = no price of streaming).
    """

    n_events: int
    n_treated: int
    budget: float
    spend: float
    incremental_revenue: float
    oracle_n_treated: int
    oracle_spend: float
    oracle_revenue: float
    elapsed_seconds: float
    events_per_second: float
    spend_trajectory: np.ndarray
    treated: np.ndarray
    engine_stats: dict = field(default_factory=dict)
    pacing_history: list = field(default_factory=list)

    @property
    def revenue_ratio(self) -> float:
        """Online incremental revenue as a fraction of the oracle's."""
        return self.incremental_revenue / max(self.oracle_revenue, 1e-12)

    def summary(self) -> dict:
        """Headline numbers for logs and examples."""
        return {
            "n_events": self.n_events,
            "n_treated": self.n_treated,
            "spend": round(self.spend, 2),
            "budget": round(self.budget, 2),
            "incremental_revenue": round(self.incremental_revenue, 2),
            "oracle_revenue": round(self.oracle_revenue, 2),
            "revenue_ratio": round(self.revenue_ratio, 4),
            "events_per_second": round(self.events_per_second, 1),
        }


class TrafficReplay:
    """Stream platform cohorts through the engine + pacer, event by event.

    Parameters
    ----------
    platform:
        The simulated traffic source.
    engine:
        A configured :class:`ScoringEngine` (its registry's champion —
        and challenger, if staged — serve the scores).
    feedback:
        When True, realised outcomes of decided users are fed back to
        the pacer (:meth:`BudgetPacer.observe_outcome`), enabling its
        ``roi*`` profitability floor.
    random_state:
        Seed/generator for realising feedback outcomes.
    """

    def __init__(
        self,
        platform: Platform,
        engine: ScoringEngine,
        feedback: bool = False,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self.platform = platform
        self.engine = engine
        self.feedback = bool(feedback)
        self._rng = as_generator(random_state)

    def replay_day(
        self,
        n_users: int,
        day: int = 1,
        budget: float | None = None,
        budget_fraction: float = 0.3,
        pacer: BudgetPacer | None = None,
        pacer_params: dict | None = None,
    ) -> ReplayResult:
        """Stream one day's cohort and return the full accounting.

        Parameters
        ----------
        n_users:
            Cohort size (the day's traffic volume).
        day:
            1-based day index (drives the platform's day-of-week wobble).
        budget:
            Absolute budget; defaults to ``budget_fraction`` of the
            cohort's full-treatment expected cost (the A/B convention).
        pacer:
            Pre-built pacer (its own budget wins); by default a
            :class:`BudgetPacer` is constructed from ``pacer_params``.
        """
        cohort = self.platform.daily_cohort(n_users, day)
        if budget is None:
            budget = budget_fraction * float(np.sum(cohort.tau_c))
        if pacer is None:
            pacer = BudgetPacer(budget, n_users, **(pacer_params or {}))
        else:
            budget = pacer.budget

        scores = np.full(cohort.n, np.nan)
        treated = np.zeros(cohort.n, dtype=bool)
        trajectory = np.zeros(cohort.n)
        n_decided = 0
        waiting: deque[tuple[int, int]] = deque()  # (request_id, cohort index)

        def drain(force: bool = False) -> None:
            nonlocal n_decided
            if force:
                self.engine.flush()
            while waiting and self.engine.has_result(waiting[0][0]):
                rid, i = waiting.popleft()
                score = self.engine.take(rid)
                scores[i] = score
                admit = pacer.offer(score, float(cohort.tau_c[i]))
                treated[i] = admit
                trajectory[n_decided] = pacer.spent
                n_decided += 1
                if self.feedback:
                    # realised Bernoulli incremental outcomes: skipped
                    # users realise none, mirroring Platform.realize_arm
                    draw = self._rng.random(2)
                    y_r = float(draw[0] < cohort.tau_r[i]) if admit else 0.0
                    y_c = float(draw[1] < cohort.tau_c[i]) if admit else 0.0
                    pacer.observe_outcome(int(admit), y_r, y_c)

        start = time.perf_counter()
        for i, x_row in self.platform.iter_events(cohort):
            waiting.append((self.engine.submit(x_row), i))
            drain()
        drain(force=True)
        elapsed = time.perf_counter() - start

        if waiting or n_decided != cohort.n:
            raise RuntimeError(
                f"replay decided {n_decided}/{cohort.n} arrivals "
                f"({len(waiting)} still waiting) — the engine lost requests"
            )
        oracle = greedy_allocation(
            scores, cohort.tau_c, budget, rewards=cohort.tau_r
        )
        return ReplayResult(
            n_events=cohort.n,
            n_treated=int(np.sum(treated)),
            budget=float(budget),
            spend=float(pacer.spent),
            incremental_revenue=float(np.sum(cohort.tau_r[treated])),
            oracle_n_treated=oracle.n_selected,
            oracle_spend=oracle.total_cost,
            oracle_revenue=oracle.total_reward,
            elapsed_seconds=elapsed,
            events_per_second=cohort.n / max(elapsed, 1e-12),
            spend_trajectory=trajectory,
            treated=treated,
            engine_stats=dict(self.engine.stats),
            pacing_history=list(pacer.history),
        )

"""Replay platform traffic through the online serving stack.

:class:`TrafficReplay` is the end-to-end harness tying the subsystem
together: a :class:`~repro.ab.platform.Platform` cohort is streamed
event-by-event (random arrival order), every arrival is scored through
the :class:`~repro.serving.engine.ScoringEngine`'s micro-batching path,
and the :class:`~repro.serving.pacing.BudgetPacer` decides treat/skip
as scores become available.  The result reports throughput, the spend
trajectory against the pacing curve, and — the number that matters —
incremental revenue relative to the *offline greedy oracle*: Algorithm
1 run on the same scores with the whole day visible at once.  An
online policy can at best match the oracle; the replay quantifies the
price of streaming.

Two runtime-layer features thread through the replay:

* **Simulated time** — when the engine carries a
  :class:`~repro.runtime.ManualClock` and ``interarrival_s`` is set,
  the replay advances the clock by that gap before each arrival, so
  deadline-driven flushing (``max_latency_ms``) runs under exact,
  deterministic time and the engine's ``latencies`` record the true
  submit→score waits.
* **Multi-day campaigns** — :meth:`TrafficReplay.replay_days` chains
  days through a :class:`~repro.serving.pacing.MultiDayPacer`, so day
  *d*'s under-spend tilts day *d+1*'s pacing, and returns the
  campaign-level accounting alongside each day's
  :class:`ReplayResult`.
* **Challenger lifecycle** — given an :class:`~repro.serving.promotion
  .AutoPromoter`, every decided arrival's realised outcome is
  attributed to the registry version whose score drove the decision
  (:meth:`ScoringEngine.version_of`) and fed to the promoter, and the
  promoter is polled once per arrival so its ramp deadlines fire on
  schedule under the replay's clock.  A multi-day campaign then runs
  the full promote-or-kill lifecycle end-to-end: ramp, significance
  verdict, post-promotion hold.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.ab.platform import Platform
from repro.core.allocation import greedy_allocation
from repro.obs import NULL_REGISTRY, HistogramSnapshot
from repro.runtime import ManualClock
from repro.serving.engine import ScoringEngine
from repro.serving.pacing import BudgetPacer, MultiDayPacer
from repro.serving.promotion import AutoPromoter
from repro.serving.retraining import Retrainer
from repro.utils.rng import as_generator

__all__ = ["MultiDayReplayResult", "TrafficReplay", "ReplayResult"]


@dataclass
class ReplayResult:
    """Outcome of one replayed day.

    ``spend_trajectory[i]`` is cumulative spend after the i-th decision
    — plotted against ``budget * curve(i / n_events)`` it shows how
    tightly the pacer tracked its target.  ``oracle_*`` fields hold the
    offline greedy solution on identical scores; ``revenue_ratio`` is
    online / oracle incremental revenue (1.0 = no price of streaming).
    ``engine_stats``, ``latencies``, ``latency_hist`` and
    ``metrics_delta`` cover *this replay only* (an engine reused across
    days reports per-day deltas, not cumulative counters).

    ``latencies`` is the raw per-request log, which the engine caps at
    ``latency_log_size`` entries: once eviction starts, the array holds
    only the newest requests and ``latencies_dropped`` counts this
    replay's evicted entries.  Quantiles therefore come from
    ``latency_hist`` — the engine's log-bucket sketch delta, which saw
    every request of the replay — whenever it is available.
    """

    n_events: int
    n_treated: int
    budget: float
    spend: float
    incremental_revenue: float
    oracle_n_treated: int
    oracle_spend: float
    oracle_revenue: float
    elapsed_seconds: float
    events_per_second: float
    spend_trajectory: np.ndarray
    treated: np.ndarray
    engine_stats: dict = field(default_factory=dict)
    pacing_history: list = field(default_factory=list)
    latencies: np.ndarray | None = None
    latencies_dropped: int = 0
    latency_hist: HistogramSnapshot | None = None
    metrics_delta: dict | None = None

    @property
    def revenue_ratio(self) -> float:
        """Online incremental revenue as a fraction of the oracle's."""
        return self.incremental_revenue / max(self.oracle_revenue, 1e-12)

    def latency_quantile(self, q: float) -> float:
        """Submit→score latency quantile in clock seconds (needs a
        clocked engine; see :class:`~repro.serving.engine.ScoringEngine`).

        Served from :attr:`latency_hist` (~1% relative error, sees every
        request) so the answer stays unbiased even when the engine's
        ``latency_log_size`` cap evicted part of :attr:`latencies`.
        """
        if self.latency_hist is not None and self.latency_hist.count > 0:
            return self.latency_hist.quantile(q)
        if self.latencies is None or self.latencies.size == 0:
            raise ValueError("no latencies recorded — run with a clocked engine")
        return float(np.quantile(self.latencies, q))

    def summary(self) -> dict:
        """Headline numbers for logs and examples."""
        return {
            "n_events": self.n_events,
            "n_treated": self.n_treated,
            "spend": round(self.spend, 2),
            "budget": round(self.budget, 2),
            "incremental_revenue": round(self.incremental_revenue, 2),
            "oracle_revenue": round(self.oracle_revenue, 2),
            "revenue_ratio": round(self.revenue_ratio, 4),
            "events_per_second": round(self.events_per_second, 1),
            "latencies_dropped": self.latencies_dropped,
        }


@dataclass
class MultiDayReplayResult:
    """A multi-day campaign replayed with cross-day budget carryover.

    ``days[d]`` is an ordinary per-day :class:`ReplayResult` whose
    ``budget`` already includes the carry rolled in from day ``d``'s
    predecessors; ``ledger`` mirrors
    :attr:`~repro.serving.pacing.MultiDayPacer.ledger` — one
    ``(base_budget, day_budget, spent, carry_out)`` row per day.
    """

    days: list[ReplayResult] = field(default_factory=list)
    ledger: list = field(default_factory=list)

    @property
    def n_days(self) -> int:
        return len(self.days)

    @property
    def total_base_budget(self) -> float:
        """The campaign plan: sum of per-day base allowances."""
        return float(sum(base for base, _b, _s, _c in self.ledger))

    @property
    def total_spend(self) -> float:
        """Realised campaign spend (``<= total_base_budget`` always)."""
        return float(sum(day.spend for day in self.days))

    @property
    def total_incremental_revenue(self) -> float:
        return float(sum(day.incremental_revenue for day in self.days))

    @property
    def carryovers(self) -> list[float]:
        """Residual rolled out of each day into the next."""
        return [carry for _base, _b, _s, carry in self.ledger]

    def summary(self) -> dict:
        return {
            "n_days": self.n_days,
            "total_spend": round(self.total_spend, 2),
            "total_base_budget": round(self.total_base_budget, 2),
            "total_incremental_revenue": round(self.total_incremental_revenue, 2),
            "carryovers": [round(c, 2) for c in self.carryovers],
        }


class TrafficReplay:
    """Stream platform cohorts through the engine + pacer, event by event.

    Parameters
    ----------
    platform:
        The simulated traffic source.
    engine:
        A configured :class:`ScoringEngine` (its registry's champion —
        and challenger, if staged — serve the scores).  Give it a
        :class:`~repro.runtime.ManualClock` and ``max_latency_ms`` to
        exercise deadline flushing under simulated time.
    feedback:
        When True, realised outcomes of decided users are fed back to
        the pacer (:meth:`BudgetPacer.observe_outcome`), enabling its
        ``roi*`` profitability floor.
    interarrival_s:
        Simulated gap between consecutive arrivals.  Requires the
        engine's clock to be a :class:`~repro.runtime.ManualClock`;
        the replay advances it by this gap before each submit.
    promoter:
        An :class:`~repro.serving.promotion.AutoPromoter` operating the
        engine's registry.  Every decided arrival's realised outcome is
        attributed to the version that scored it and recorded via
        :meth:`AutoPromoter.observe`; the promoter is polled once per
        arrival, so its ramp schedule runs on the replay's (possibly
        simulated) time.  Outcome realisation shares the feedback
        draws, so adding a promoter does not perturb the pacer's
        ``roi*`` stream.
    retrainer:
        A :class:`~repro.serving.retraining.Retrainer` closing the
        loop: every decided arrival's feature row and realised outcome
        are buffered via :meth:`Retrainer.observe`, and the retrainer
        is polled once per arrival so its periodic trigger and fit
        collection run on the replay's clock.  Refits stage themselves
        into the engine's registry, where the ``promoter`` (if any)
        ramps them.
    paired_outcomes:
        When True, the per-user outcome uniforms are drawn as one
        cohort-indexed block up front instead of sequentially per
        decision.  User ``i`` then realises the same ``(y_r, y_c)``
        draws whatever order decisions happen in — the common-random-
        numbers hook that makes two replays with identically-seeded
        platforms *paired* even when their policies admit different
        users (the same coupling
        :meth:`~repro.ab.platform.Platform.realize_arms` uses).
        Default False preserves the bit-identical legacy sequential
        stream.
    random_state:
        Seed/generator for realising feedback/promotion outcomes.
    """

    def __init__(
        self,
        platform: Platform,
        engine: ScoringEngine,
        feedback: bool = False,
        interarrival_s: float | None = None,
        promoter: AutoPromoter | None = None,
        retrainer: Retrainer | None = None,
        paired_outcomes: bool = False,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        if interarrival_s is not None:
            if not interarrival_s >= 0:
                raise ValueError(f"interarrival_s must be >= 0, got {interarrival_s}")
            if not isinstance(engine.clock, ManualClock):
                raise ValueError(
                    "interarrival_s needs an engine with a ManualClock "
                    "(simulated time cannot advance a system clock)"
                )
        if promoter is not None and promoter.registry is not engine.registry:
            raise ValueError(
                "promoter must operate the engine's registry — attributing "
                "outcomes across two registries would corrupt both ledgers"
            )
        if (
            promoter is not None
            and interarrival_s is not None
            and promoter.clock is not engine.clock
        ):
            raise ValueError(
                "promoter must share the engine's ManualClock when replaying "
                "on simulated time — on its own clock the ramp schedule "
                "would silently run on wall time instead"
            )
        if retrainer is not None and retrainer.registry is not engine.registry:
            raise ValueError(
                "retrainer must stage into the engine's registry — refits "
                "registered elsewhere would never serve traffic"
            )
        if (
            retrainer is not None
            and interarrival_s is not None
            and retrainer.clock is not engine.clock
        ):
            raise ValueError(
                "retrainer must share the engine's ManualClock when replaying "
                "on simulated time — on its own clock the periodic trigger "
                "would silently run on wall time instead"
            )
        self.platform = platform
        self.engine = engine
        self.feedback = bool(feedback)
        self.interarrival_s = interarrival_s
        self.promoter = promoter
        self.retrainer = retrainer
        self.paired_outcomes = bool(paired_outcomes)
        self._rng = as_generator(random_state)

    def replay_day(
        self,
        n_users: int,
        day: int = 1,
        budget: float | None = None,
        budget_fraction: float = 0.3,
        pacer: BudgetPacer | None = None,
        pacer_params: dict | None = None,
    ) -> ReplayResult:
        """Stream one day's cohort and return the full accounting.

        Parameters
        ----------
        n_users:
            Cohort size (the day's traffic volume).
        day:
            1-based day index (drives the platform's day-of-week wobble).
        budget:
            Absolute budget; defaults to ``budget_fraction`` of the
            cohort's full-treatment expected cost (the A/B convention).
        pacer:
            Pre-built pacer (its own budget wins); by default a
            :class:`BudgetPacer` is constructed from ``pacer_params``.
        """
        cohort = self.platform.daily_cohort(n_users, day)
        if budget is None:
            budget = budget_fraction * float(np.sum(cohort.tau_c))
        if pacer is None:
            pacer = BudgetPacer(budget, n_users, **(pacer_params or {}))
        else:
            budget = pacer.budget
        return self._stream_cohort(cohort, pacer, budget)

    def replay_days(
        self,
        n_days: int,
        n_users: int,
        budget_fraction: float = 0.3,
        daily_budget: float | None = None,
        pacer_params: dict | None = None,
        carryover: float = 1.0,
        carryover_mode: str = "spread",
        plan_budgets: bool = False,
    ) -> MultiDayReplayResult:
        """Stream a multi-day campaign with cross-day budget carryover.

        Each day's *base* allowance is ``daily_budget`` (or
        ``budget_fraction`` of that day's full-treatment expected
        cost); a :class:`~repro.serving.pacing.MultiDayPacer` rolls
        every day's residual into the next day's pacing, so the
        campaign spend converges on the cumulative plan while each
        day's pacer keeps its single-day invariants.

        ``plan_budgets=True`` switches days 2+ to *day-ahead planning*
        (:meth:`~repro.serving.pacing.MultiDayPacer.plan_next_day`):
        day ``d+1``'s base budget is ``budget_fraction`` of day ``d``'s
        observed offered cost, its horizon is day ``d``'s arrival
        count, and its pacing curve is day ``d``'s empirical demand
        shape — no oracle cohort sums, which is how a live system must
        budget.  Day 1 (no history yet) keeps the oracle sizing.
        """
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {n_days}")
        multi = MultiDayPacer(
            daily_budget=daily_budget,
            horizon=n_users,
            carryover=carryover,
            carryover_mode=carryover_mode,
            pacer_params=pacer_params,
        )
        result = MultiDayReplayResult()
        for day in range(1, n_days + 1):
            cohort = self.platform.daily_cohort(n_users, day)
            if plan_budgets and day > 1:
                plan = multi.plan_next_day(budget_fraction)
                pacer = multi.start_day(
                    plan.base_budget, plan.horizon, plan.target_curve
                )
            else:
                if daily_budget is None:
                    base = budget_fraction * float(np.sum(cohort.tau_c))
                else:
                    base = float(daily_budget)
                pacer = multi.start_day(base_budget=base)
            result.days.append(self._stream_cohort(cohort, pacer, pacer.budget))
            multi.end_day()
        result.ledger = list(multi.ledger)
        return result

    def _stream_cohort(self, cohort, pacer: BudgetPacer, budget: float) -> ReplayResult:
        """The shared streaming core: score every arrival, pace every spend.

        Used by :meth:`replay_day` (one pacer, one day) and
        :meth:`replay_days` (each day's pacer handed in by the
        :class:`MultiDayPacer`); the cohort already carries its
        day-of-week effects, so no day index is needed here.
        """
        scores = np.full(cohort.n, np.nan)
        treated = np.zeros(cohort.n, dtype=bool)
        trajectory = np.zeros(cohort.n)
        n_decided = 0
        # absolute index into the engine's (possibly size-capped) log
        latency_start = self.engine.latencies_dropped + len(self.engine.latencies)
        stats_before = dict(self.engine.stats)  # engines may serve many days
        hist_before = self.engine.latency_hist.snapshot()
        instrumented = self.engine.metrics is not NULL_REGISTRY
        metrics_before = self.engine.metrics.snapshot() if instrumented else None
        waiting: deque[tuple[int, int]] = deque()  # (request_id, cohort index)
        realise = (
            self.feedback or self.promoter is not None or self.retrainer is not None
        )
        # paired mode: one cohort-indexed uniform block, so user i's
        # draws are independent of decision order (CRN across replays)
        uniforms = self._rng.random((cohort.n, 2)) if self.paired_outcomes else None

        def drain(force: bool = False) -> None:
            nonlocal n_decided
            if force:
                self.engine.flush()
                self.engine.join()
            while waiting and self.engine.has_result(waiting[0][0]):
                rid, i = waiting.popleft()
                # which version's score drives this decision (read
                # before take() releases the attribution)
                vid = self.engine.version_of(rid) if self.promoter is not None else None
                score = self.engine.take(rid)
                scores[i] = score
                admit = pacer.offer(score, float(cohort.tau_c[i]))
                treated[i] = admit
                trajectory[n_decided] = pacer.spent
                n_decided += 1
                if realise:
                    # realised Bernoulli incremental outcomes: skipped
                    # users realise none, mirroring Platform.realize_arm
                    draw = uniforms[i] if uniforms is not None else self._rng.random(2)
                    y_r = float(draw[0] < cohort.tau_r[i]) if admit else 0.0
                    y_c = float(draw[1] < cohort.tau_c[i]) if admit else 0.0
                    if self.feedback:
                        pacer.observe_outcome(int(admit), y_r, y_c)
                    if self.promoter is not None:
                        self.promoter.observe(vid, bool(admit), y_r, y_c)
                    if self.retrainer is not None:
                        self.retrainer.observe(cohort.x[i], bool(admit), y_r, y_c)

        clock = self.engine.clock if self.interarrival_s is not None else None
        # real wall time on purpose: replay *measures* achieved host
        # throughput; the simulated timeline stays on the injected clock
        start = time.perf_counter()  # repro: allow[RPR001]
        for i, x_row in self.platform.iter_events(cohort):
            if clock is not None:
                # a flush deadline inside this inter-arrival gap must
                # fire *at* the deadline, not when the next arrival
                # happens to look — stop the clock there and poll, so
                # the latency bound is exact for any gap size
                target = clock.now() + self.interarrival_s
                due = self.engine.next_deadline()
                if due is not None and due < target:
                    clock.advance(max(0.0, due - clock.now()))
                    self.engine.poll()
                    drain()
                clock.advance(max(0.0, target - clock.now()))
            if self.promoter is not None:
                # ramp deadlines fire at arrival granularity: the first
                # arrival after a step boundary sees the widened split
                self.promoter.poll()
            if self.retrainer is not None:
                # periodic refit triggers + async fit collection run at
                # the same arrival granularity
                self.retrainer.poll()
            waiting.append((self.engine.submit(x_row), i))
            self.engine.poll()
            drain()
        drain(force=True)
        if self.promoter is not None:
            self.promoter.poll()  # day's end: fire any boundary that landed on it
        if self.retrainer is not None:
            self.retrainer.poll()
        elapsed = time.perf_counter() - start  # repro: allow[RPR001]

        if waiting or n_decided != cohort.n:
            raise RuntimeError(
                f"replay decided {n_decided}/{cohort.n} arrivals "
                f"({len(waiting)} still waiting) — the engine lost requests"
            )
        oracle = greedy_allocation(
            scores, cohort.tau_c, budget, rewards=cohort.tau_r
        )
        latencies = (
            np.asarray(
                self.engine.latencies[
                    max(0, latency_start - self.engine.latencies_dropped):
                ],
                dtype=float,
            )
            if self.engine.clock is not None
            else None
        )
        # entries this replay recorded that the size cap already evicted
        dropped = max(0, self.engine.latencies_dropped - latency_start)
        latency_hist = (
            self.engine.latency_hist.snapshot().delta(hist_before)
            if self.engine.clock is not None
            else None
        )
        metrics_delta = (
            self.engine.metrics.snapshot().delta(metrics_before).to_dict()
            if instrumented
            else None
        )
        return ReplayResult(
            n_events=cohort.n,
            n_treated=int(np.sum(treated)),
            budget=float(budget),
            spend=float(pacer.spent),
            incremental_revenue=float(np.sum(cohort.tau_r[treated])),
            oracle_n_treated=oracle.n_selected,
            oracle_spend=oracle.total_cost,
            oracle_revenue=oracle.total_reward,
            elapsed_seconds=elapsed,
            events_per_second=cohort.n / max(elapsed, 1e-12),
            spend_trajectory=trajectory,
            treated=treated,
            engine_stats={
                k: v - stats_before.get(k, 0) for k, v in self.engine.stats.items()
            },
            pacing_history=list(pacer.history),
            latencies=latencies,
            latencies_dropped=dropped,
            latency_hist=latency_hist,
            metrics_delta=metrics_delta,
        )

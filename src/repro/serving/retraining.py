"""Streaming retraining: close the loop from outcomes back to models.

Everything upstream of this module reacts to a *given* model: the
engine scores with it, the pacer spends against its scores, the
promoter ramps a challenger somebody staged.  Nobody refreshes the
model — under concept drift the whole stack keeps confidently serving
a scorer whose ranking is wrong, and the only fix is a human noticing.

:class:`Retrainer` closes that loop.  It drains realised outcomes
(the same ``(treated, y_r, y_c)`` stream the promoter's ledgers see,
plus the arrival's features) into a rolling training window, refits a
:class:`~repro.causal.base.TrainableModel` clone when a trigger fires,
and stages the refit as a challenger through
:meth:`~repro.serving.registry.ModelRegistry.register` — from where the
ordinary :class:`~repro.serving.promotion.AutoPromoter` lifecycle takes
over (ramp, significance gate, promote-or-kill, hold).  A refit
therefore never touches live traffic directly: it earns its promotion
through the same gate as any hand-staged model, and a bad refit is
killed by the same gate.

Triggers (any combination; the first to fire wins, then the window
keeps accumulating toward the next):

* **periodic** — ``every_n_days``: a clock-driven
  :class:`~repro.runtime.DeadlineLoop` deadline, resolved against the
  same (possibly simulated) clock the engine runs on;
* **outcome count** — ``every_outcomes``: every N buffered outcomes;
* **drift score** — ``drift_threshold``: the mean standardised shift
  of the rolling window's feature means against a reference frozen at
  the last refit.  Covariate drift is the observable *symptom*; the
  refit is cheap insurance whether the cause turns out to be benign
  (covariate shift) or malignant (concept drift).

Refits run off the serving path: the clone is fitted via
:func:`~repro.causal.base.refit_model` on an
:class:`~repro.runtime.ExecutionBackend` future (fresh forest/meta
fits fan out to workers; warm-startable linear models make the fit
itself cheap), and :meth:`Retrainer.poll` collects the result on a
later tick.  While an experiment is already running the fitted model is
*held*, not staged — registering over a live challenger would archive
it mid-ramp and poison the experiment — and the freshest held fit wins
once the slot frees up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.causal.base import TrainableModel, refit_model
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.runtime import Clock, DeadlineLoop, ExecutionBackend, SystemClock
from repro.serving.registry import ModelRegistry

__all__ = ["RetrainEvent", "Retrainer"]

_TIMER_KEY = "retrain-timer"
_DAY_S = 86_400.0


def _fit_clone(model: TrainableModel, x, t, y_r, y_c) -> TrainableModel:
    """Module-level so a ProcessBackend can pickle the work item."""
    return refit_model(model, x, t, y_r, y_c)


@dataclass(frozen=True)
class RetrainEvent:
    """One entry of the retrainer's audit trail.

    ``kind`` is ``"trigger"`` (a policy fired), ``"fit"`` (a refit
    finished training), ``"stage"`` (a refit was registered as
    challenger; ``version`` holds its registry id) or ``"hold"`` (a
    finished refit found the challenger slot occupied and waits).
    """

    at: float
    kind: str
    reason: str
    n_outcomes: int
    version: int | None = None


class Retrainer:
    """Refit a model template on streamed outcomes and stage the result.

    Parameters
    ----------
    registry:
        The serving registry refits are staged into.  Must be the same
        registry the engine scores from (the simulator validates this).
    template:
        The unfitted-cloneable :class:`TrainableModel` each refit
        clones via :meth:`~repro.causal.base.TrainableModel.clone_unfit`
        (hyperparameters carry over, learned state never does).  When
        ``None``, the registry champion's model is used — it must then
        be a :class:`TrainableModel`.
    clock:
        Time source for the periodic trigger; pass the engine's
        :class:`~repro.runtime.ManualClock` under simulated time.
    window:
        Rolling training-window capacity in outcomes (oldest drop out).
    min_outcomes:
        Outcomes required in the window before any refit may run —
        refitting on a handful of rows stages noise.
    every_n_days:
        Periodic trigger interval in (simulated) days, or ``None``.
    every_outcomes:
        Outcome-count trigger: refit every N observed outcomes, or
        ``None``.
    drift_threshold:
        Drift-score trigger: refit when :meth:`drift_score` reaches
        this value, or ``None``.  The score is the mean per-feature
        ``|mean_window - mean_reference| / std_reference``; the
        reference freezes at construction time's first full window and
        at every refit launch.
    backend:
        :class:`~repro.runtime.ExecutionBackend` the fit runs on;
        ``None`` fits inline (still off the scoring hot path — fits
        happen inside :meth:`poll`/:meth:`observe`, between arrivals).
        The retrainer never shuts a passed backend down.
    name:
        Stem for staged versions (``"<name>-<k>"``).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`: counters
        ``retrainer.outcomes`` / ``retrainer.refits`` /
        ``retrainer.staged``, gauge ``retrainer.window_fill``.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        template: TrainableModel | None = None,
        *,
        clock: Clock | None = None,
        window: int = 5_000,
        min_outcomes: int = 500,
        every_n_days: float | None = None,
        every_outcomes: int | None = None,
        drift_threshold: float | None = None,
        backend: ExecutionBackend | None = None,
        name: str = "retrained",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if min_outcomes < 2 or min_outcomes > window:
            raise ValueError(
                f"min_outcomes must be in [2, window={window}], got {min_outcomes}"
            )
        if every_n_days is not None and not every_n_days > 0:
            raise ValueError(f"every_n_days must be > 0, got {every_n_days}")
        if every_outcomes is not None and every_outcomes < 1:
            raise ValueError(f"every_outcomes must be >= 1, got {every_outcomes}")
        if drift_threshold is not None and not drift_threshold > 0:
            raise ValueError(f"drift_threshold must be > 0, got {drift_threshold}")
        if every_n_days is None and every_outcomes is None and drift_threshold is None:
            raise ValueError(
                "no trigger configured — set at least one of every_n_days, "
                "every_outcomes, drift_threshold (or drive refit_now() yourself)"
            )
        if template is not None and not isinstance(template, TrainableModel):
            raise TypeError("template must be a TrainableModel (clone_unfit/fit)")
        self.registry = registry
        self.template = template
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.window = int(window)
        self.min_outcomes = int(min_outcomes)
        self.every_s = None if every_n_days is None else float(every_n_days) * _DAY_S
        self.every_outcomes = None if every_outcomes is None else int(every_outcomes)
        self.drift_threshold = (
            None if drift_threshold is None else float(drift_threshold)
        )
        self.backend = backend
        self.name = name

        self._buffer: deque[tuple[np.ndarray, int, float, float]] = deque(
            maxlen=self.window
        )
        self._loop = DeadlineLoop(self.clock)
        if self.every_s is not None:
            self._loop.schedule_in(_TIMER_KEY, self.every_s, self._on_timer)
        self._since_count_trigger = 0
        self._reference: tuple[np.ndarray, np.ndarray] | None = None  # (mean, std)
        self._fit_future = None
        self._fit_reason: str | None = None
        self._held: TrainableModel | None = None
        self._held_reason: str | None = None
        self._n_staged = 0
        self.n_observed = 0
        self.n_refits = 0
        #: lifecycle audit trail, in order
        self.events: list[RetrainEvent] = []
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_outcomes = self.metrics.counter("retrainer.outcomes")
        self._c_refits = self.metrics.counter("retrainer.refits")
        self._c_staged = self.metrics.counter("retrainer.staged")
        self._g_fill = self.metrics.gauge("retrainer.window_fill")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_buffered(self) -> int:
        """Outcomes currently in the rolling window."""
        return len(self._buffer)

    @property
    def n_staged(self) -> int:
        """Refits registered as challengers so far."""
        return self._n_staged

    @property
    def refit_pending(self) -> bool:
        """A fit is in flight or a finished fit awaits the challenger slot."""
        return self._fit_future is not None or self._held is not None

    def next_deadline(self) -> float | None:
        """Clock time of the next periodic trigger, or None."""
        return self._loop.next_deadline()

    def drift_score(self) -> float:
        """Mean standardised shift of window feature means vs the reference.

        0 when no reference is frozen yet or the window is empty.
        """
        if self._reference is None or not self._buffer:
            return 0.0
        ref_mean, ref_std = self._reference
        x = np.stack([row[0] for row in self._buffer])
        return float(np.mean(np.abs(x.mean(axis=0) - ref_mean) / ref_std))

    def _event(self, kind: str, reason: str, version: int | None = None) -> None:
        self.events.append(
            RetrainEvent(
                at=self.clock.now(),
                kind=kind,
                reason=reason,
                n_outcomes=len(self._buffer),
                version=version,
            )
        )

    # ------------------------------------------------------------------
    # the observe → trigger path
    # ------------------------------------------------------------------
    def observe(self, x_row, treated: bool, y_r: float, y_c: float) -> None:
        """Buffer one decided request's features and realised outcome.

        The same attribution stream :meth:`AutoPromoter.observe`
        consumes, with the arrival's feature row alongside — treated
        rows carry their realised incremental revenue/cost, skipped
        rows are the zero-outcome control the uplift refit contrasts
        against.
        """
        x_row = np.asarray(x_row, dtype=float).ravel()
        self._buffer.append((x_row, int(bool(treated)), float(y_r), float(y_c)))
        self.n_observed += 1
        self._since_count_trigger += 1
        self._c_outcomes.inc()
        self._g_fill.set(len(self._buffer))
        if self._reference is None and len(self._buffer) >= self.min_outcomes:
            self._freeze_reference()
        if (
            self.every_outcomes is not None
            and self._since_count_trigger >= self.every_outcomes
        ):
            self._since_count_trigger = 0
            self._trigger("every_outcomes")
        elif self.drift_threshold is not None and not self.refit_pending:
            # drift check only at count-trigger granularity would lag;
            # checking every arrival on a full window is O(window·d) —
            # amortise by sampling every 64 observations
            if self.n_observed % 64 == 0 and self.drift_score() >= self.drift_threshold:
                self._trigger("drift")
        self.poll()

    def poll(self) -> int:
        """Advance the retrainer: fire due periodic triggers, collect a
        finished fit, stage a held refit once the challenger slot frees.
        Returns the number of deadline callbacks fired (call once per
        arrival, like :meth:`AutoPromoter.poll`)."""
        fired = self._loop.poll()
        self._collect_fit()
        self._stage_if_free()
        return fired

    def refit_now(self, reason: str = "manual") -> bool:
        """Force a refit launch (same window/min-outcome rules).

        Returns True when a fit was actually launched.
        """
        return self._trigger(reason)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _on_timer(self) -> None:
        # re-arm first: a trigger that declines (window too small) must
        # not silence the periodic policy forever
        self._loop.schedule_in(_TIMER_KEY, self.every_s, self._on_timer)
        self._trigger("every_n_days")

    def _freeze_reference(self) -> None:
        x = np.stack([row[0] for row in self._buffer])
        self._reference = (x.mean(axis=0), np.maximum(x.std(axis=0), 1e-9))

    def _template(self) -> TrainableModel:
        if self.template is not None:
            return self.template
        model = self.registry.champion.model
        if not isinstance(model, TrainableModel):
            raise TypeError(
                "no template given and the champion model is not a "
                "TrainableModel — pass template= explicitly"
            )
        return model

    def _trigger(self, reason: str) -> bool:
        if len(self._buffer) < self.min_outcomes:
            return False
        if self.refit_pending:
            # one refit in flight at a time; the window keeps rolling
            # and the next trigger sees fresher data anyway
            return False
        self._event("trigger", reason)
        x = np.stack([row[0] for row in self._buffer])
        t = np.array([row[1] for row in self._buffer], dtype=np.int64)
        y_r = np.array([row[2] for row in self._buffer])
        y_c = np.array([row[3] for row in self._buffer])
        clone = self._template().clone_unfit()
        self._fit_reason = reason
        self._freeze_reference()  # drift is now measured against this window
        if self.backend is not None:
            self._fit_future = self.backend.submit(_fit_clone, clone, x, t, y_r, y_c)
        else:
            fitted = _fit_clone(clone, x, t, y_r, y_c)
            self._finish_fit(fitted)
        return True

    def _collect_fit(self) -> None:
        if self._fit_future is None or not self._fit_future.done():
            return
        future, self._fit_future = self._fit_future, None
        self._finish_fit(future.result())

    def _finish_fit(self, fitted: TrainableModel) -> None:
        self.n_refits += 1
        self._c_refits.inc()
        reason = self._fit_reason or "manual"
        self._fit_reason = None
        self._event("fit", reason)
        # freshest fit wins a held slot: it saw strictly newer outcomes
        self._held = fitted
        self._held_reason = reason
        self._stage_if_free()
        if self._held is not None:
            self._event("hold", reason)

    def _stage_if_free(self) -> None:
        if self._held is None or self.registry.challenger is not None:
            return
        fitted, self._held = self._held, None
        reason, self._held_reason = self._held_reason or "manual", None
        self._n_staged += 1
        version = self.registry.register(fitted, name=f"{self.name}-{self._n_staged}")
        self._c_staged.inc()
        self._event("stage", reason, version=version)

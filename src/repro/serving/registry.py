"""Versioned model registry with staged champion/challenger rollout.

A deployed allocation system never swaps models atomically: a freshly
calibrated challenger first takes a small slice of live traffic, its
online metrics are compared against the incumbent champion, and only
then is it promoted.  :class:`ModelRegistry` implements that lifecycle
for any scorer exposing ``predict_roi(x)`` (``DRPModel``,
``RobustDRP``, TPM baselines, or a plain callable wrapper).

Routing is deterministic per user key — the same user always sees the
same model version at a fixed split, which keeps online metrics
comparable — and falls back to a seeded random draw for keyless
requests.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["ModelRegistry", "ModelVersion"]

CHAMPION = "champion"
CHALLENGER = "challenger"
ARCHIVED = "archived"


@dataclass
class ModelVersion:
    """One registered model and its rollout state.

    Attributes
    ----------
    version:
        Monotonically increasing integer id assigned at registration.
    name:
        Human label (defaults to ``"model-v<version>"``).
    model:
        The scorer; must expose ``predict_roi(x)``.
    stage:
        ``"champion"``, ``"challenger"`` or ``"archived"``.
    requests:
        Number of requests routed to this version so far.
    """

    version: int
    name: str
    model: object
    stage: str
    requests: int = field(default=0)


class ModelRegistry:
    """Holds model versions and routes requests across the active pair.

    Parameters
    ----------
    traffic_split:
        Fraction of traffic routed to the challenger when one is
        staged (0 disables the challenger without unstaging it).
    random_state:
        Seed/generator for routing requests that carry no user key.
    """

    def __init__(
        self,
        traffic_split: float = 0.1,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        self._versions: dict[int, ModelVersion] = {}
        self._next_version = 1
        self._champion: int | None = None
        self._challenger: int | None = None
        self._previous_champion: int | None = None
        self._rng = as_generator(random_state)
        self.traffic_split = traffic_split

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def traffic_split(self) -> float:
        return self._traffic_split

    @traffic_split.setter
    def traffic_split(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"traffic_split must be in [0, 1], got {value}")
        self._traffic_split = float(value)

    def register(
        self, model: object, name: str | None = None, promote: bool = False
    ) -> int:
        """Add a model; it becomes the challenger (or champion if first).

        Parameters
        ----------
        model:
            Any object with a ``predict_roi(x)`` method.
        name:
            Optional display name.
        promote:
            When True the model becomes champion immediately (initial
            deployment / emergency hotfix path).

        Returns
        -------
        int
            The assigned version id.
        """
        if not callable(getattr(model, "predict_roi", None)):
            raise TypeError("model must expose a callable predict_roi(x)")
        version = self._next_version
        self._next_version += 1
        name = name or f"model-v{version}"
        if self._champion is None or promote:
            stage = CHAMPION
        else:
            stage = CHALLENGER
        entry = ModelVersion(version=version, name=name, model=model, stage=stage)
        self._versions[version] = entry
        if stage == CHAMPION:
            if self._champion is not None:
                self._archive(self._champion)
                self._previous_champion = self._champion
            self._champion = version
        else:
            if self._challenger is not None:
                self._archive(self._challenger)
            self._challenger = version
        return version

    def promote(self, version: int | None = None) -> int:
        """Make the (given or current) challenger the champion.

        The displaced champion is archived but kept for
        :meth:`rollback`.  Returns the promoted version id.
        """
        version = self._challenger if version is None else version
        if version is None or version not in self._versions:
            raise ValueError("no challenger staged to promote")
        entry = self._versions[version]
        if entry.stage == CHAMPION:
            return version
        old_champion = self._champion
        if old_champion is not None:
            self._archive(old_champion)
        self._previous_champion = old_champion
        entry.stage = CHAMPION
        self._champion = version
        if self._challenger == version:
            self._challenger = None
        return version

    def rollback(self) -> int:
        """Restore the champion displaced by the last :meth:`promote`."""
        if self._previous_champion is None:
            raise RuntimeError("no previous champion to roll back to")
        bad = self._champion
        restored = self._previous_champion
        self._versions[restored].stage = CHAMPION
        self._champion = restored
        self._previous_champion = None
        if bad is not None:
            self._archive(bad)
        return restored

    def _archive(self, version: int) -> None:
        self._versions[version].stage = ARCHIVED

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def champion(self) -> ModelVersion:
        if self._champion is None:
            raise RuntimeError("registry has no champion; register a model first")
        return self._versions[self._champion]

    @property
    def challenger(self) -> ModelVersion | None:
        return self._versions[self._challenger] if self._challenger is not None else None

    def get(self, version: int) -> ModelVersion:
        """Look up a version id (KeyError if unknown)."""
        return self._versions[version]

    def versions(self) -> list[ModelVersion]:
        """All registered versions, oldest first."""
        return [self._versions[v] for v in sorted(self._versions)]

    def route(self, key: str | int | None = None) -> ModelVersion:
        """Pick the version serving one request.

        Keyed requests hash deterministically into the split (stable
        user→version assignment for the *current* challenger; the hash
        is salted with the challenger version so successive experiments
        draw different user slices); keyless requests draw from the
        registry's RNG.
        """
        champion = self.champion  # raises if none
        chosen = champion
        if self._challenger is not None and self._traffic_split > 0.0:
            if key is None:
                u = float(self._rng.random())
            else:
                salted = f"{key}:{self._challenger}".encode()
                u = (zlib.crc32(salted) % 10_000) / 10_000.0
            if u < self._traffic_split:
                chosen = self._versions[self._challenger]
        chosen.requests += 1
        return chosen

"""Versioned model registry with staged champion/challenger rollout.

A deployed allocation system never swaps models atomically: a freshly
calibrated challenger first takes a small slice of live traffic, its
online metrics are compared against the incumbent champion, and only
then is it promoted.  :class:`ModelRegistry` implements that lifecycle
for any scorer exposing ``predict_roi(x)`` (``DRPModel``,
``RobustDRP``, TPM baselines, or a plain callable wrapper).

Routing is deterministic per user key — the same user always sees the
same model version at a fixed split, which keeps online metrics
comparable — and falls back to a seeded random draw for keyless
requests.

Every version carries an :class:`OutcomeLedger` of the realised
outcomes attributed to it (one entry per *decided* request: treated or
skipped, realised incremental revenue and cost).  The ledger keeps
streaming first and second moments, which is exactly what
:func:`repro.utils.stats.welch_ci_from_moments` needs, so the
:class:`~repro.serving.promotion.AutoPromoter` can run a significance
test over millions of outcomes without storing any of them.

Lifecycle invariant (pinned in the tests): **a champion transition
archives any staged challenger unless that challenger is itself the
model being promoted.**  A hotfix ``register(promote=True)`` or a
``promote(<archived id>)`` invalidates a running experiment — its
baseline champion is gone — so the stale challenger must stop taking
split traffic instead of silently running against a model it was never
compared to.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["ModelRegistry", "ModelVersion", "OutcomeLedger"]

CHAMPION = "champion"
CHALLENGER = "challenger"
ARCHIVED = "archived"

# keyed routing buckets: 64-bit hash space, so splits far below 1e-4
# (a cautious first ramp step) still route the right traffic fraction
_BUCKET_SPACE = float(2**64)


@dataclass
class OutcomeLedger:
    """Streaming account of one version's realised online outcomes.

    One :meth:`record` per decided request attributed to the version
    (skipped users count with zero realised outcomes — the ledger
    measures the *policy's* per-request value, not just the treated
    subset).  First and second moments of both candidate metrics are
    kept so a Welch interval needs no raw samples:

    * ``net``  — realised incremental revenue minus realised
      incremental cost per request (the campaign profit objective);
    * ``revenue`` — realised incremental revenue per request.
    """

    n: int = 0
    n_treated: int = 0
    spend: float = 0.0
    revenue: float = 0.0
    _net_sumsq: float = 0.0
    _revenue_sumsq: float = 0.0

    def record(self, treated: bool, y_r: float, y_c: float) -> None:
        """Add one decided request's realised (revenue, cost) outcome."""
        self.n += 1
        self.n_treated += int(treated)
        self.revenue += y_r
        self.spend += y_c
        net = y_r - y_c
        self._net_sumsq += net * net
        self._revenue_sumsq += y_r * y_r

    def reset(self) -> None:
        """Zero the ledger (a fresh comparison window)."""
        self.n = 0
        self.n_treated = 0
        self.spend = 0.0
        self.revenue = 0.0
        self._net_sumsq = 0.0
        self._revenue_sumsq = 0.0

    def merge(self, other: "OutcomeLedger") -> "OutcomeLedger":
        """Fold another ledger into this one, exactly.

        Every field is a raw sum (counts, totals, raw second moments),
        so folding is plain addition — no mean/variance recombination,
        no float error beyond the additions themselves.  This is what
        lets retraining and fleet accounting ship per-shard ledgers
        across processes (pickled) and fold them on the parent with
        :class:`~repro.obs.Snapshot`-merge semantics: ``merge`` is
        commutative and associative, and ``moments()`` of the fold
        equals ``moments()`` of the union stream.
        """
        self.n += other.n
        self.n_treated += other.n_treated
        self.spend += other.spend
        self.revenue += other.revenue
        self._net_sumsq += other._net_sumsq
        self._revenue_sumsq += other._revenue_sumsq
        return self

    def moments(self, metric: str = "net") -> tuple[float, float, int]:
        """``(mean, sample variance, n)`` of the per-request metric."""
        if metric == "net":
            total, sumsq = self.revenue - self.spend, self._net_sumsq
        elif metric == "revenue":
            total, sumsq = self.revenue, self._revenue_sumsq
        else:
            raise ValueError(f"metric must be 'net' or 'revenue', got {metric!r}")
        if self.n == 0:
            return 0.0, 0.0, 0
        mean = total / self.n
        if self.n < 2:
            return mean, 0.0, self.n
        # sample variance from the raw moments; clip the tiny negative
        # float residue a constant stream can leave
        var = max(0.0, (sumsq - self.n * mean * mean) / (self.n - 1))
        return mean, var, self.n


@dataclass
class ModelVersion:
    """One registered model and its rollout state.

    Attributes
    ----------
    version:
        Monotonically increasing integer id assigned at registration.
    name:
        Human label (defaults to ``"model-v<version>"``).
    model:
        The scorer; must expose ``predict_roi(x)``.
    stage:
        ``"champion"``, ``"challenger"`` or ``"archived"``.
    requests:
        Requests whose score this version's **model actually computed**
        (counted when the scoring engine reaps the batch).  Cache-hit
        serves are deliberately excluded — they land in
        :attr:`cache_hits` instead — so per-version online metrics
        normalised by ``requests`` measure what the model did, not what
        the cache replayed.
    cache_hits:
        Requests served from this version's cached scores without
        touching the model.
    ledger:
        Realised online outcomes attributed to this version (see
        :class:`OutcomeLedger`).
    """

    version: int
    name: str
    model: object
    stage: str
    requests: int = field(default=0)
    cache_hits: int = field(default=0)
    ledger: OutcomeLedger = field(default_factory=OutcomeLedger)

    @property
    def served(self) -> int:
        """Requests this version answered, by model or by cache."""
        return self.requests + self.cache_hits


class ModelRegistry:
    """Holds model versions and routes requests across the active pair.

    Parameters
    ----------
    traffic_split:
        Fraction of traffic routed to the challenger when one is
        staged (0 disables the challenger without unstaging it).
    random_state:
        Seed/generator for routing requests that carry no user key.
    """

    def __init__(
        self,
        traffic_split: float = 0.1,
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        #: lifecycle revision: bumped by every mutation a routing
        #: replica must see (register/promote/demote/rollback and
        #: ``traffic_split`` changes).  A sharded engine compares this
        #: against the revision it last shipped to its shards and
        #: re-syncs when they diverge; per-request accounting
        #: (``record_outcome``, counters) deliberately does not bump it.
        self.revision = 0
        self._versions: dict[int, ModelVersion] = {}
        self._next_version = 1
        self._champion: int | None = None
        self._challenger: int | None = None
        self._previous_champion: int | None = None
        self._rng = as_generator(random_state)
        self.traffic_split = traffic_split

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def traffic_split(self) -> float:
        return self._traffic_split

    @traffic_split.setter
    def traffic_split(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"traffic_split must be in [0, 1], got {value}")
        self._traffic_split = float(value)
        self.revision += 1

    def register(
        self, model: object, name: str | None = None, promote: bool = False
    ) -> int:
        """Add a model; it becomes the challenger (or champion if first).

        Parameters
        ----------
        model:
            Any object with a ``predict_roi(x)`` method.
        name:
            Optional display name.
        promote:
            When True the model becomes champion immediately (initial
            deployment / emergency hotfix path).  A staged challenger
            is archived: its experiment baseline is the champion being
            displaced, so letting it keep its traffic split against the
            new champion would poison both versions' online metrics.

        Returns
        -------
        int
            The assigned version id.
        """
        if not callable(getattr(model, "predict_roi", None)):
            raise TypeError("model must expose a callable predict_roi(x)")
        version = self._next_version
        self._next_version += 1
        name = name or f"model-v{version}"
        if self._champion is None or promote:
            stage = CHAMPION
        else:
            stage = CHALLENGER
        entry = ModelVersion(version=version, name=name, model=model, stage=stage)
        self._versions[version] = entry
        if stage == CHAMPION:
            if self._champion is not None:
                self._archive(self._champion)
                self._previous_champion = self._champion
            self._champion = version
            self._unstage_challenger()
        else:
            if self._challenger is not None:
                self._archive(self._challenger)
            self._challenger = version
        self.revision += 1
        return version

    def promote(self, version: int | None = None) -> int:
        """Make the (given or current) challenger the champion.

        The displaced champion is archived but kept for
        :meth:`rollback`.  Promoting any model other than the staged
        challenger (e.g. re-promoting an archived version) archives the
        staged challenger — see the lifecycle invariant in the module
        docstring.  Returns the promoted version id.
        """
        version = self._challenger if version is None else version
        if version is None or version not in self._versions:
            raise ValueError("no challenger staged to promote")
        entry = self._versions[version]
        if entry.stage == CHAMPION:
            return version
        old_champion = self._champion
        if old_champion is not None:
            self._archive(old_champion)
        self._previous_champion = old_champion
        entry.stage = CHAMPION
        self._champion = version
        if self._challenger == version:
            self._challenger = None
        else:
            self._unstage_challenger()
        self.revision += 1
        return version

    def demote(self, version: int | None = None) -> int:
        """Archive the staged challenger without promoting it.

        The experiment-over path: the challenger failed to beat the
        champion (or degraded it significantly), so it leaves the
        split without touching the champion.  Returns the demoted
        version id; raises when the given version is not the staged
        challenger.
        """
        version = self._challenger if version is None else version
        if version is None or version != self._challenger:
            raise ValueError("no such challenger staged to demote")
        self._archive(version)
        self._challenger = None
        self.revision += 1
        return version

    def rollback(self) -> int:
        """Restore the champion displaced by the last :meth:`promote`.

        The bad champion is archived, and so is any staged challenger
        (its baseline was the champion being rolled away)."""
        if self._previous_champion is None:
            raise RuntimeError("no previous champion to roll back to")
        bad = self._champion
        restored = self._previous_champion
        self._versions[restored].stage = CHAMPION
        self._champion = restored
        self._previous_champion = None
        if bad is not None:
            self._archive(bad)
        self._unstage_challenger()
        self.revision += 1
        return restored

    # ------------------------------------------------------------------
    # replica sync (sharded serving)
    # ------------------------------------------------------------------
    def lifecycle_state(self, known: set[int] | frozenset[int] = frozenset()) -> dict:
        """Portable snapshot of the routing-relevant lifecycle state.

        Everything a routing replica needs to serve exactly like this
        registry: stages, active pointers, split, and — for versions the
        replica has not seen yet (``known``) — the model objects
        themselves.  Per-version counters and ledgers are deliberately
        excluded: replicas account locally and the fleet folds their
        snapshots, so shipping parent counters would double-count.
        """
        return {
            "revision": self.revision,
            "next_version": self._next_version,
            "champion": self._champion,
            "challenger": self._challenger,
            "previous_champion": self._previous_champion,
            "traffic_split": self._traffic_split,
            "stages": {v: mv.stage for v, mv in self._versions.items()},
            "names": {v: mv.name for v, mv in self._versions.items()},
            "models": {
                v: mv.model for v, mv in self._versions.items() if v not in known
            },
        }

    def apply_lifecycle_state(self, state: dict) -> None:
        """Adopt a :meth:`lifecycle_state` snapshot (replica side).

        Versions unknown locally are created from the shipped models;
        known versions only have their stage updated, keeping the
        replica's local request counters and ledgers intact.
        """
        for vid in sorted(state["stages"]):
            if vid in self._versions:
                self._versions[vid].stage = state["stages"][vid]
            else:
                if vid not in state["models"]:
                    raise KeyError(
                        f"lifecycle state references unknown version {vid} "
                        "and ships no model for it"
                    )
                self._versions[vid] = ModelVersion(
                    version=vid,
                    name=state["names"][vid],
                    model=state["models"][vid],
                    stage=state["stages"][vid],
                )
        self._next_version = state["next_version"]
        self._champion = state["champion"]
        self._challenger = state["challenger"]
        self._previous_champion = state["previous_champion"]
        self._traffic_split = float(state["traffic_split"])
        self.revision = state["revision"]

    def _archive(self, version: int) -> None:
        self._versions[version].stage = ARCHIVED

    def _unstage_challenger(self) -> None:
        """Archive the staged challenger on a champion transition."""
        if self._challenger is not None:
            self._archive(self._challenger)
            self._challenger = None

    # ------------------------------------------------------------------
    # per-version outcome attribution
    # ------------------------------------------------------------------
    def record_outcome(
        self, version: int, treated: bool, y_r: float, y_c: float
    ) -> None:
        """Attribute one decided request's realised outcome to a version.

        ``version`` is the id whose score drove the decision (the
        engine's :meth:`~repro.serving.engine.ScoringEngine.version_of`
        tells the caller which); ``y_r`` / ``y_c`` are the realised
        incremental revenue and cost (both 0 for skipped users).
        """
        self._versions[version].ledger.record(bool(treated), float(y_r), float(y_c))

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def champion(self) -> ModelVersion:
        if self._champion is None:
            raise RuntimeError("registry has no champion; register a model first")
        return self._versions[self._champion]

    @property
    def challenger(self) -> ModelVersion | None:
        return self._versions[self._challenger] if self._challenger is not None else None

    def get(self, version: int) -> ModelVersion:
        """Look up a version id (KeyError if unknown)."""
        return self._versions[version]

    def versions(self) -> list[ModelVersion]:
        """All registered versions, oldest first."""
        return [self._versions[v] for v in sorted(self._versions)]

    @property
    def routing_is_static(self) -> bool:
        """True when :meth:`route` returns the champion for *every* key
        without touching the RNG (no challenger staged, or a zero
        split).  This is the predicate behind the engine's vectorised
        ``submit_batch`` fast path: one ``route(None)`` call stands in
        for N per-row calls *exactly* — same result, same RNG stream —
        only while this holds.
        """
        return self._challenger is None or self._traffic_split <= 0.0

    def route(self, key: str | int | None = None) -> ModelVersion:
        """Pick the version serving one request (a pure routing decision;
        request accounting happens where the request is actually served,
        so cache hits and model scores are told apart — see
        :class:`ModelVersion`).

        Keyed requests hash deterministically into the split (stable
        user→version assignment for the *current* challenger; the hash
        is salted with the challenger version so successive experiments
        draw different user slices).  The hash lands in a 64-bit bucket
        space, so even a ``traffic_split`` of 1e-6 — a cautious first
        ramp step on heavy traffic — routes the right fraction instead
        of quantising to zero.  Keyless requests draw from the
        registry's RNG.
        """
        champion = self.champion  # raises if none
        chosen = champion
        if self._challenger is not None and self._traffic_split > 0.0:
            if key is None:
                u = float(self._rng.random())
            else:
                salted = f"{key}:{self._challenger}".encode()
                digest = hashlib.blake2b(salted, digest_size=8).digest()
                u = int.from_bytes(digest, "big") / _BUCKET_SPACE
            if u < self._traffic_split:
                chosen = self._versions[self._challenger]
        return chosen

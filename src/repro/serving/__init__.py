"""Online scoring and budget-paced allocation (the serving layer).

The offline pipeline — fit DRP/rDRP, solve C-BTAP with Algorithm 1 —
assumes the whole day's cohort is visible at once.  The platform the
paper deploys on does not work that way: users arrive one at a time
and the treat/skip decision happens *in-request*, under a budget that
has to survive until midnight.  This package is that online half:

* :class:`ModelRegistry` — versioned models with champion/challenger
  staged rollout, deterministic per-user traffic splitting, and a
  per-version :class:`OutcomeLedger` of realised online outcomes;
* :class:`AutoPromoter` — the lifecycle control loop: staged traffic
  ramp on a :class:`~repro.runtime.DeadlineLoop`, Welch significance
  gate over the per-version ledgers, auto-promote / kill / rollback;
* :class:`Retrainer` — closes the loop: drains realised outcomes into
  a rolling training window, refits a
  :class:`~repro.causal.base.TrainableModel` clone on a trigger policy
  (periodic / outcome-count / drift-score) and auto-stages the refit
  as a challenger for the promoter to ramp (see
  :mod:`repro.serving.retraining`);
* :class:`ScoringEngine` — micro-batching request scorer (one
  vectorised model call per flush) with an LRU score cache;
* :class:`ShardedScoringEngine` / :class:`ShardedBudgetPacer` — the
  same engine and pacer surfaces over N per-process shards on an
  execution backend's affinity lanes, with budget-slice rebalancing
  and snapshot-merge fleet accounting (see
  :mod:`repro.serving.sharding` and ``docs/SERVING.md``);
* :class:`BudgetPacer` — streaming C-BTAP admission via an adaptive
  score threshold fit on a sliding traffic window with the Algorithm-2
  bisection primitive, tracking a target pacing curve and optionally
  floored at the live ``roi*`` break-even;
* :class:`MultiDayPacer` — chains pacer days with under/over-spend
  carryover, so a campaign converges on its cumulative plan instead
  of leaking each day's residual at midnight;
* :class:`GreedyROIPolicy` / :class:`ConformalGatedPolicy` — pluggable
  decision scores (point estimate vs conformal lower bound);
* :class:`TrafficReplay` — stream :class:`~repro.ab.platform.Platform`
  cohorts through the stack and report throughput, spend trajectory,
  and incremental revenue against the offline greedy oracle; its
  multi-day mode exercises the cross-day carryover.

Execution concerns — on which workers a flush runs, whose clock a
deadline reads — live in :mod:`repro.runtime`; every component here
takes a backend/clock rather than owning one.

Quickstart
----------
>>> from repro.serving import ModelRegistry, ScoringEngine, TrafficReplay
>>> registry = ModelRegistry()
>>> registry.register(fitted_model, promote=True)  # doctest: +SKIP
>>> engine = ScoringEngine(registry, batch_size=64)  # doctest: +SKIP
>>> replay = TrafficReplay(platform, engine)  # doctest: +SKIP
>>> result = replay.replay_day(10_000)  # doctest: +SKIP
>>> result.revenue_ratio  # online vs offline-oracle revenue  # doctest: +SKIP
"""

from repro.serving.engine import EngineCore, ScoringEngine
from repro.serving.pacing import BudgetPacer, DayPlan, EmpiricalCurve, MultiDayPacer
from repro.serving.policy import ConformalGatedPolicy, DecisionPolicy, GreedyROIPolicy
from repro.serving.promotion import AutoPromoter, PromotionEvent
from repro.serving.registry import ModelRegistry, ModelVersion, OutcomeLedger
from repro.serving.retraining import RetrainEvent, Retrainer
from repro.serving.sharding import ShardedBudgetPacer, ShardedScoringEngine
from repro.serving.simulator import MultiDayReplayResult, ReplayResult, TrafficReplay

__all__ = [
    "AutoPromoter",
    "BudgetPacer",
    "ConformalGatedPolicy",
    "DayPlan",
    "DecisionPolicy",
    "EmpiricalCurve",
    "EngineCore",
    "GreedyROIPolicy",
    "ModelRegistry",
    "ModelVersion",
    "MultiDayPacer",
    "MultiDayReplayResult",
    "OutcomeLedger",
    "PromotionEvent",
    "ReplayResult",
    "RetrainEvent",
    "Retrainer",
    "ScoringEngine",
    "ShardedBudgetPacer",
    "ShardedScoringEngine",
    "TrafficReplay",
]

"""Challenger auto-promotion: the registry lifecycle driven by online evidence.

A freshly calibrated ROI model must *earn* its way to champion on live
traffic, not be swapped in blindly.  :class:`AutoPromoter` is the
control loop that makes the :class:`~repro.serving.registry
.ModelRegistry` operate itself:

1. **Staged rollout ramp** — when a challenger is staged, its
   ``traffic_split`` walks a configurable ramp (default 1% → 5% → 25%
   → 95%), advanced on a :class:`~repro.runtime.DeadlineLoop` under
   any :class:`~repro.runtime.Clock`.  Under a
   :class:`~repro.runtime.ManualClock` the schedule is exact, so tests
   pin precisely which arrival sees each split.  The default final
   step keeps a 5% champion *holdback* rather than going to 100%: at
   a full split the baseline arm stops accruing outcomes, so the gate
   would be comparing a live challenger window against a frozen
   snapshot — under intra-day drift that manufactures spurious
   verdicts.  A ramp ending at 1.0 is allowed, but loses the
   concurrent control arm from that step on.
2. **Significance gating** — realised per-version outcomes (treated /
   spend / incremental revenue, attributed via the engine's
   ``version_of`` and the registry's per-version
   :class:`~repro.serving.registry.OutcomeLedger`) feed a Welch
   two-sample t-interval (:func:`repro.utils.stats
   .welch_ci_from_moments`).  Champion and challenger serve *disjoint*
   keyed user slices, so the paired per-day interval of
   :meth:`~repro.ab.replay.PolicyReplay.delta_ci` does not apply — the
   unpaired Welch variant on the two arms' streaming moments does.
3. **Lifecycle actions** — the challenger auto-``promote()``s once its
   uplift delta is significantly positive at the configured level,
   auto-``demote()``s (is killed) on significant degradation during
   the ramp, and a *promoted* challenger that then degrades
   significantly below the displaced champion's frozen baseline is
   auto-``rollback()``ed during the post-promotion hold window.

The evaluation cadence is every ``check_every`` observations plus
every ramp boundary.  Repeated peeking at a fixed level inflates the
false-promotion rate above ``1 - level`` (no alpha-spending here);
``min_decided`` and a conservative default level keep it small, and
the false-promotion test pins the realised rate under the default
configuration.

Typical wiring — :class:`~repro.serving.simulator.TrafficReplay` does
all of this when given a ``promoter``::

    registry = ModelRegistry(random_state=0)
    registry.register(current_model, promote=True)
    registry.register(candidate)                 # staged challenger
    promoter = AutoPromoter(registry, clock=clock)
    # per decided request:
    vid = engine.version_of(rid); score = engine.take(rid)
    ...decide, realise (y_r, y_c)...
    promoter.observe(vid, treated, y_r, y_c)
    promoter.poll()                              # fire due ramp steps
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.runtime import Clock, DeadlineLoop, SystemClock
from repro.serving.registry import ModelRegistry
from repro.utils.stats import MeanCI, welch_ci_from_moments

__all__ = ["AutoPromoter", "PromotionEvent"]

IDLE = "idle"
RAMPING = "ramping"
HOLDING = "holding"

_RAMP_KEY = "ramp"  # the promoter's single deadline-loop slot

#: every PromotionEvent.kind the promoter can emit — the per-kind event
#: counters are pre-adopted from this set so the lifecycle path never
#: touches the metrics registry (the obs hot-path contract, RPR005)
EVENT_KINDS = ("start", "ramp", "promote", "kill", "confirm", "rollback", "abort")


@dataclass(frozen=True)
class PromotionEvent:
    """One lifecycle action taken (or observed) by the promoter.

    ``kind`` is one of ``"start"`` (ramp opened), ``"ramp"`` (split
    advanced), ``"promote"``, ``"kill"`` (challenger demoted),
    ``"confirm"`` (post-promotion hold passed), ``"rollback"``, or
    ``"abort"`` (the watched experiment was invalidated externally).
    ``ci`` carries the Welch interval that triggered a verdict, when
    one did.
    """

    at: float
    kind: str
    version: int
    traffic_split: float
    ci: MeanCI | None = None


class AutoPromoter:
    """Drive a registry's champion/challenger lifecycle from online metrics.

    Parameters
    ----------
    registry:
        The registry to operate.  The promoter owns its
        ``traffic_split`` while an experiment runs (and parks it at 0
        between experiments).
    clock:
        Time source for the ramp schedule; defaults to
        :class:`~repro.runtime.SystemClock`.  Pass the engine's
        :class:`~repro.runtime.ManualClock` to pin schedules in tests.
    ramp:
        Increasing challenger traffic fractions in ``(0, 1]``; the
        rollout starts at ``ramp[0]`` and advances one step per
        ``step_every_s`` until the last (where it parks until the
        significance gate decides).  The default ends at 0.95 — a 5%
        champion holdback keeps both arms accruing concurrent
        outcomes, which the Welch comparison needs (see the module
        docstring before ramping to 1.0).
    step_every_s:
        Seconds between ramp advances (e.g. one simulated day).
    level:
        Confidence level of the Welch gate; promotion requires the
        delta interval's *lower* bound above zero, kill/rollback its
        *upper* bound below zero.
    metric:
        Per-request ledger metric the arms are compared on: ``"net"``
        (realised incremental revenue minus cost, default) or
        ``"revenue"``.
    min_decided:
        Decided requests required on **each** arm before any verdict —
        a significance call on a handful of outcomes is noise.
    check_every:
        Evaluate the gate every this many observations (plus at every
        ramp boundary).
    hold_decided:
        Post-promotion: decided requests the new champion must
        accumulate, without significant degradation below the displaced
        champion's frozen baseline, to confirm the promotion; reaching
        it ends the hold, significant degradation before it triggers
        :meth:`~repro.serving.registry.ModelRegistry.rollback`.
    auto_start:
        When True (default), :meth:`poll` / :meth:`observe` open the
        ramp by themselves whenever the registry has a challenger
        staged and no experiment is running.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` recording the lifecycle:
        one counter per event kind (``promoter.start`` /
        ``promoter.ramp`` / ``promoter.promote`` / ``promoter.kill``
        / ``promoter.rollback`` / ``promoter.confirm`` /
        ``promoter.abort`` — ramp-stage transitions and gate verdicts),
        counter ``promoter.observations``, and gauges
        ``promoter.traffic_split`` / ``promoter.ramp_stage``.  ``None``
        (default) records nothing; :attr:`events` is always kept.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        clock: Clock | None = None,
        ramp: Sequence[float] = (0.01, 0.05, 0.25, 0.95),
        step_every_s: float = 86_400.0,
        level: float = 0.95,
        metric: str = "net",
        min_decided: int = 200,
        check_every: int = 100,
        hold_decided: int = 2_000,
        auto_start: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        ramp = tuple(float(f) for f in ramp)
        if not ramp:
            raise ValueError("ramp must have at least one step")
        if not all(0.0 < f <= 1.0 for f in ramp):
            raise ValueError(f"ramp fractions must be in (0, 1], got {ramp}")
        if not all(a < b for a, b in zip(ramp, ramp[1:])):
            raise ValueError(f"ramp must be strictly increasing, got {ramp}")
        if not step_every_s > 0:
            raise ValueError(f"step_every_s must be > 0, got {step_every_s}")
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        if metric not in ("net", "revenue"):
            raise ValueError(f"metric must be 'net' or 'revenue', got {metric!r}")
        if min_decided < 2:
            raise ValueError(f"min_decided must be >= 2, got {min_decided}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        if hold_decided < 2:
            raise ValueError(f"hold_decided must be >= 2, got {hold_decided}")
        if hold_decided < min_decided:
            # else the hold could confirm before the rollback gate ever
            # evaluates once (evaluate() is None below min_decided)
            raise ValueError(
                f"hold_decided must be >= min_decided ({min_decided}), "
                f"got {hold_decided}"
            )
        self.registry = registry
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.ramp = ramp
        self.step_every_s = float(step_every_s)
        self.level = float(level)
        self.metric = metric
        self.min_decided = int(min_decided)
        self.check_every = int(check_every)
        self.hold_decided = int(hold_decided)
        self.auto_start = bool(auto_start)

        self._loop = DeadlineLoop(self.clock)
        self._state = IDLE
        self._ramp_idx = 0
        self._next_ramp_at: float | None = None  # absolute boundary time
        self._watching: int | None = None  # challenger under ramp / champion on hold
        self._baseline: int | None = None  # champion under ramp / displaced on hold
        self._baseline_moments: tuple[float, float, int] | None = None  # hold only
        self._since_check = 0
        #: every lifecycle action, in order (the audit trail)
        self.events: list[PromotionEvent] = []
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_observations = self.metrics.counter("promoter.observations")
        self._g_split = self.metrics.gauge("promoter.traffic_split")
        self._g_stage = self.metrics.gauge("promoter.ramp_stage")
        self._c_events = {
            kind: self.metrics.counter(f"promoter.{kind}")
            for kind in EVENT_KINDS
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"idle"``, ``"ramping"`` or ``"holding"``."""
        return self._state

    @property
    def watching(self) -> int | None:
        """Version under evaluation: the ramping challenger, or the
        freshly promoted champion during its hold window."""
        return self._watching

    def next_deadline(self) -> float | None:
        """Clock time of the pending ramp advance, or None."""
        return self._loop.next_deadline()

    def _event(self, kind: str, version: int, ci: MeanCI | None = None) -> None:
        self.events.append(
            PromotionEvent(
                at=self.clock.now(),
                kind=kind,
                version=version,
                traffic_split=self.registry.traffic_split,
                ci=ci,
            )
        )
        self._c_events[kind].inc()
        self._g_split.set(self.registry.traffic_split)
        self._g_stage.set(self._ramp_idx)

    # ------------------------------------------------------------------
    # lifecycle drive
    # ------------------------------------------------------------------
    def start(self) -> bool:
        """Open the rollout ramp for the staged challenger.

        Resets both arms' outcome ledgers (the comparison windows must
        be concurrent), sets ``traffic_split = ramp[0]`` and schedules
        the first advance.  Returns False (no-op) when no challenger is
        staged or an experiment is already running.
        """
        challenger = self.registry.challenger
        if challenger is None or self._state != IDLE:
            return False
        champion = self.registry.champion
        challenger.ledger.reset()
        champion.ledger.reset()
        self._watching = challenger.version
        self._baseline = champion.version
        self._baseline_moments = None
        self._ramp_idx = 0
        self._since_check = 0
        self._state = RAMPING
        self.registry.traffic_split = self.ramp[0]
        if len(self.ramp) > 1:
            self._next_ramp_at = self.clock.now() + self.step_every_s
            self._loop.schedule(_RAMP_KEY, self._next_ramp_at, self._advance_ramp)
        self._event("start", challenger.version)
        return True

    def observe(self, version: int, treated: bool, y_r: float, y_c: float) -> None:
        """Record one decided request's realised outcome and, every
        ``check_every`` observations, run the significance gate."""
        if self._state == IDLE and self.auto_start:
            # start (and reset the ledgers) *before* recording, so the
            # observation that opens the experiment is not discarded by
            # the reset one line later
            self.start()
        self._c_observations.inc()
        self.registry.record_outcome(version, treated, y_r, y_c)
        if self._state == IDLE:
            return
        self._since_check += 1
        if self._since_check >= self.check_every:
            self._since_check = 0
            self._check()

    def poll(self) -> int:
        """Advance the promoter without an observation: abort an
        invalidated experiment, auto-start a fresh challenger, and fire
        any due ramp advance.  Returns the number of deadline callbacks
        fired (the simulator calls this once per arrival)."""
        self._abort_if_invalidated()
        if self._state == IDLE and self.auto_start:
            self.start()
        return self._loop.poll()

    # ------------------------------------------------------------------
    # the significance gate
    # ------------------------------------------------------------------
    def evaluate(self) -> MeanCI | None:
        """Welch interval for (watched − baseline) mean per-request
        outcome, or None while either arm is under ``min_decided``."""
        if self._state == IDLE or self._watching is None:
            return None
        watched = self.registry.get(self._watching).ledger.moments(self.metric)
        if self._state == HOLDING:
            baseline = self._baseline_moments
        else:
            baseline = self.registry.get(self._baseline).ledger.moments(self.metric)
        if baseline is None:
            return None
        if watched[2] < self.min_decided or baseline[2] < self.min_decided:
            return None
        return welch_ci_from_moments(*watched, *baseline, level=self.level)

    def _check(self) -> None:
        """Evaluate and act: promote / kill during the ramp, confirm /
        roll back during the hold."""
        self._abort_if_invalidated()
        if self._state == RAMPING:
            ci = self.evaluate()
            if ci is None:
                return
            if ci.lo > 0.0:
                self._promote(ci)
            elif ci.hi < 0.0:
                self._kill(ci)
        elif self._state == HOLDING:
            ci = self.evaluate()
            if ci is not None and ci.hi < 0.0:
                self._rollback(ci)
            elif self.registry.get(self._watching).ledger.n >= self.hold_decided:
                self._confirm(ci)

    def _abort_if_invalidated(self) -> None:
        """Registry surgery behind our back (hotfix register, manual
        promote/rollback) ends the running experiment."""
        if self._state == RAMPING:
            challenger = self.registry.challenger
            if (
                challenger is None
                or challenger.version != self._watching
                or self.registry.champion.version != self._baseline
            ):
                version = self._watching
                self._finish()
                self._event("abort", version)
        elif self._state == HOLDING:
            if self.registry.champion.version != self._watching:
                version = self._watching
                self._finish()
                self._event("abort", version)

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def _advance_ramp(self) -> None:
        if self._state != RAMPING:
            return
        # gate before widening exposure: a significantly worse
        # challenger is killed instead of ramped up
        self._check()
        if self._state != RAMPING:
            return
        if self._ramp_idx + 1 < len(self.ramp):
            self._ramp_idx += 1
            self.registry.traffic_split = self.ramp[self._ramp_idx]
            self._event("ramp", self._watching)
        if self._ramp_idx + 1 < len(self.ramp):
            # anchor on the *previous boundary*, not the fire time: a
            # poll arriving late must not push every later step out, or
            # sparse polling compounds into cumulative schedule drift
            self._next_ramp_at += self.step_every_s
            self._loop.schedule(_RAMP_KEY, self._next_ramp_at, self._advance_ramp)

    def _promote(self, ci: MeanCI) -> None:
        promoted = self._watching
        displaced = self._baseline
        # freeze the displaced champion's window as the hold baseline,
        # then give the new champion a *fresh* window: degradation after
        # promotion must not be averaged away by its winning ramp data
        self._baseline_moments = self.registry.get(displaced).ledger.moments(self.metric)
        self.registry.promote(promoted)
        self.registry.get(promoted).ledger.reset()
        self.registry.traffic_split = 0.0
        self._loop.cancel(_RAMP_KEY)
        self._state = HOLDING
        self._baseline = displaced
        self._since_check = 0
        self._event("promote", promoted, ci)

    def _kill(self, ci: MeanCI) -> None:
        killed = self._watching
        self.registry.demote(killed)
        self._finish()
        self._event("kill", killed, ci)

    def _rollback(self, ci: MeanCI) -> None:
        bad = self._watching
        self.registry.rollback()
        self._finish()
        self._event("rollback", bad, ci)

    def _confirm(self, ci: MeanCI | None) -> None:
        confirmed = self._watching
        self._finish()
        self._event("confirm", confirmed, ci)

    def _finish(self) -> None:
        """Common experiment teardown: park the split, clear the watch."""
        self.registry.traffic_split = 0.0
        self._loop.cancel(_RAMP_KEY)
        self._next_ramp_at = None
        self._state = IDLE
        self._watching = None
        self._baseline = None
        self._baseline_moments = None
        self._since_check = 0

"""Micro-batching scoring engine with an LRU score cache.

Online traffic arrives one user at a time, but every model in this
codebase is dramatically faster when scored in vectorised batches (an
MLP forward pass amortises its Python overhead across rows).  The
:class:`ScoringEngine` bridges the two: requests are buffered per model
version and scored with **one** vectorised policy call per flush,
triggered automatically when the buffer reaches ``batch_size`` (and
manually at stream end).  Identical feature rows — retargeted users,
bot bursts — short-circuit through an LRU cache keyed by the feature
hash and the model version, skipping the model entirely.

The request lifecycle is ``submit → (auto)flush → take``; ``score``
wraps it for synchronous single-request use.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.serving.policy import DecisionPolicy, GreedyROIPolicy
from repro.serving.registry import ModelRegistry

__all__ = ["ScoringEngine"]


class ScoringEngine:
    """Accumulate scoring requests and serve them in vectorised micro-batches.

    Parameters
    ----------
    models:
        A :class:`ModelRegistry` or a bare scorer with ``predict_roi``
        (wrapped into a single-champion registry).
    policy:
        The :class:`DecisionPolicy` producing scores from a model and a
        feature batch (default greedy-ROI point estimates).
    batch_size:
        Buffered requests that trigger an automatic flush.  ``1``
        degenerates to synchronous per-request scoring.
    cache_size:
        Maximum number of ``(version, feature-hash)`` entries in the
        LRU score cache; ``0`` disables caching.
    """

    def __init__(
        self,
        models: ModelRegistry | object,
        policy: DecisionPolicy | None = None,
        batch_size: int = 32,
        cache_size: int = 4096,
    ) -> None:
        if isinstance(models, ModelRegistry):
            self.registry = models
        else:
            self.registry = ModelRegistry()
            self.registry.register(models, promote=True)
        self.policy = policy if policy is not None else GreedyROIPolicy()
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self.batch_size = int(batch_size)
        self.cache_size = int(cache_size)
        self._cache: OrderedDict[tuple[int, bytes], float] = OrderedDict()
        # pending rows grouped by model version: version -> [(rid, row)]
        self._pending: dict[int, list[tuple[int, np.ndarray]]] = {}
        self._n_pending = 0
        self._ready: dict[int, float] = {}
        self._next_id = 0
        self.stats = {
            "requests": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "flushes": 0,
            "model_calls": 0,
            "rows_scored": 0,
        }

    # ------------------------------------------------------------------
    # request lifecycle
    # ------------------------------------------------------------------
    def submit(self, x_row: np.ndarray, key: str | int | None = None) -> int:
        """Enqueue one request; returns its id (auto-flushes when full)."""
        row = np.ascontiguousarray(np.asarray(x_row, dtype=float).ravel())
        rid = self._next_id
        self._next_id += 1
        self.stats["requests"] += 1
        version = self.registry.route(key)
        if self.cache_size > 0:
            cache_key = (version.version, row.tobytes())
            hit = self._cache.get(cache_key)
            if hit is not None:
                self._cache.move_to_end(cache_key)
                self.stats["cache_hits"] += 1
                self._ready[rid] = hit
                return rid
        self.stats["cache_misses"] += 1
        self._pending.setdefault(version.version, []).append((rid, row))
        self._n_pending += 1
        if self._n_pending >= self.batch_size:
            self.flush()
        return rid

    def flush(self) -> int:
        """Score every pending request (one policy call per version).

        Returns the number of requests scored.
        """
        scored = 0
        if self._n_pending:
            self.stats["flushes"] += 1
        # pop each batch before scoring so a raising policy/model leaves
        # the engine consistent (the failed batch is dropped, not re-run)
        while self._pending:
            version_id, batch = self._pending.popitem()
            self._n_pending -= len(batch)
            model = self.registry.get(version_id).model
            rows = np.stack([row for _rid, row in batch])
            scores = np.asarray(
                self.policy.score_batch(model, rows), dtype=float
            ).ravel()
            if scores.shape[0] != rows.shape[0]:
                raise ValueError(
                    f"policy returned {scores.shape[0]} scores for "
                    f"{rows.shape[0]} rows"
                )
            self.stats["model_calls"] += 1
            self.stats["rows_scored"] += rows.shape[0]
            for (rid, row), score in zip(batch, scores):
                self._ready[rid] = float(score)
                if self.cache_size > 0:
                    self._remember((version_id, row.tobytes()), float(score))
            scored += rows.shape[0]
        return scored

    def has_result(self, request_id: int) -> bool:
        """True once the request's score is available."""
        return request_id in self._ready

    def take(self, request_id: int) -> float:
        """Pop a finished score (KeyError when still pending/unknown)."""
        return self._ready.pop(request_id)

    def score(self, x_row: np.ndarray, key: str | int | None = None) -> float:
        """Synchronous convenience path: submit, force a flush, return."""
        rid = self.submit(x_row, key=key)
        if rid not in self._ready:
            self.flush()
        return self.take(rid)

    def score_batch(self, x: np.ndarray, key: str | int | None = None) -> np.ndarray:
        """Score a pre-assembled batch through one routed version.

        The offline-parity path: routes once and applies the policy in
        a single call, bypassing both the micro-batch buffer and the
        LRU cache (cache hit/miss counters are untouched).
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        version = self.registry.route(key)
        version.requests += x.shape[0] - 1  # route() counted one
        scores = np.asarray(
            self.policy.score_batch(version.model, x), dtype=float
        ).ravel()
        self.stats["requests"] += x.shape[0]
        self.stats["model_calls"] += 1
        self.stats["rows_scored"] += x.shape[0]
        return scores

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def _remember(self, cache_key: tuple[int, bytes], score: float) -> None:
        if self.cache_size <= 0:
            return
        self._cache[cache_key] = score
        self._cache.move_to_end(cache_key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    @property
    def n_pending(self) -> int:
        """Requests buffered and not yet flushed."""
        return self._n_pending

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests served from the LRU cache."""
        total = self.stats["cache_hits"] + self.stats["cache_misses"]
        return self.stats["cache_hits"] / total if total else 0.0

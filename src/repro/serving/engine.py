"""Micro-batching scoring engine with deadline flushing and an LRU cache.

Online traffic arrives one user at a time, but every model in this
codebase is dramatically faster when scored in vectorised batches (an
MLP forward pass amortises its Python overhead across rows).  The
:class:`ScoringEngine` bridges the two: requests are buffered per model
version and scored with **one** vectorised policy call per flush.  A
flush happens for one of three reasons, tallied in
``stats["flush_batch_full"/"flush_deadline"/"flush_manual"]``:

* **batch_full** — the buffer reached ``batch_size`` (the throughput
  path);
* **deadline** — ``max_latency_ms`` elapsed since the oldest buffered
  request (the latency path: a lonely request on a quiet stream is
  never stranded waiting for a batch that won't fill).  Deadlines run
  on a :class:`~repro.runtime.Clock` through a pull-based
  :class:`~repro.runtime.DeadlineLoop`: ``submit`` and :meth:`poll`
  check it, so under a :class:`~repro.runtime.ManualClock` the
  behaviour is exact and simulator-testable;
* **manual** — an explicit :meth:`flush` call (stream end).

Where the scoring itself runs is delegated to an
:class:`~repro.runtime.ExecutionBackend`: the default
:class:`~repro.runtime.SerialBackend` keeps the historical synchronous
semantics bit-identical (same scores, same stats, same exception
points), while a :class:`~repro.runtime.ThreadBackend` makes flushes
genuinely asynchronous — ``flush`` dispatches the policy call to a
worker and returns; results land via :meth:`poll`/:meth:`join` (numpy
releases the GIL inside the vectorised call, so scoring overlaps the
caller).

Identical feature rows — retargeted users, bot bursts —
short-circuit through an LRU cache keyed by the feature hash and the
model version, skipping the model entirely.

The request lifecycle is ``submit → (auto)flush → take``; ``score``
wraps it for synchronous single-request use.  When a clock is present
the engine also records every *scored* request's submit→score latency
in ``latencies`` (asynchronous batches stamp the moment scoring
*completed*, not when the caller reaped the result), which is what the
latency benchmarks and the deadline acceptance tests read.  Cache hits
never enter the latency log: they are tallied in ``cache_hits``
instead, so the p95 the deadline-bound claims are measured on reflects
requests the model actually scored rather than being silently deflated
by zero-cost replays.

For outcome attribution the engine remembers which registry version's
score serves each request — :meth:`version_of` — until the result is
taken; the traffic simulator uses it to credit realised outcomes to
the right :class:`~repro.serving.registry.OutcomeLedger`.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from itertools import repeat

import numpy as np

from repro.obs import NULL_REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from repro.runtime import Clock, DeadlineLoop, ExecutionBackend, SerialBackend, SystemClock
from repro.serving.policy import DecisionPolicy, GreedyROIPolicy
from repro.serving.registry import ModelRegistry

__all__ = ["EngineCore", "ScoringEngine"]

_FLUSH_KEY = "flush"  # the engine's single deadline-loop slot

# the engine's counter vocabulary; ``stats`` renders these, and a real
# registry exports them as ``engine.<name>``
_STAT_NAMES = (
    "requests",
    "cache_hits",
    "cache_misses",
    "flushes",
    "flush_batch_full",
    "flush_deadline",
    "flush_manual",
    "model_calls",
    "rows_scored",
)


def _score_rows(policy: DecisionPolicy, model: object, rows: np.ndarray) -> np.ndarray:
    """The unit of backend work: one vectorised policy call."""
    return policy.score_batch(model, rows)


class _PendingBlock:
    """One version's buffered requests, stored columnar.

    A preallocated ``(cap, d)`` feature block plus an aligned request-id
    vector, grown geometrically — the flush slices **one contiguous
    array** instead of stacking a deque of per-row copies.  The block
    object travels whole into the in-flight queue when dispatched (a
    fresh block starts the next batch), so the view handed to the
    backend can never alias rows appended later.

    ``record`` / ``mixed`` are the fast-path bookkeeping: a block fed
    only by ``submit_batch`` slices carries one :class:`_RidRange`
    covering its (contiguous) ids, letting the reap skip per-rid dict
    writes entirely; any scalar ``submit`` landing on the block flips
    ``mixed`` and the reap degrades to exact per-rid accounting.
    """

    __slots__ = ("rows", "rids", "n", "record", "mixed")

    def __init__(self, d: int, cap: int) -> None:
        cap = max(1, cap)
        self.rows = np.empty((cap, d), dtype=float)
        self.rids = np.empty(cap, dtype=np.int64)
        self.n = 0
        self.record: _RidRange | None = None
        self.mixed = False

    def _grow_to(self, need: int) -> None:
        cap = self.rows.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        self.rows = np.concatenate([self.rows, np.empty((cap - self.rows.shape[0], self.rows.shape[1]))])
        self.rids = np.concatenate([self.rids, np.empty(cap - self.rids.shape[0], dtype=np.int64)])

    def append(self, rid: int, row: np.ndarray) -> None:
        if self.record is not None:
            self.mixed = True
        self._grow_to(self.n + 1)
        self.rows[self.n] = row
        self.rids[self.n] = rid
        self.n += 1

    def append_block(self, rids: np.ndarray, block: np.ndarray) -> None:
        take = block.shape[0]
        self._grow_to(self.n + take)
        self.rows[self.n : self.n + take] = block
        self.rids[self.n : self.n + take] = rids
        self.n += take

    def view(self) -> np.ndarray:
        """The buffered rows as one contiguous slice (no copy)."""
        return self.rows[: self.n]


class _RidRange:
    """One contiguous run of fast-path request ids, bookkept as a range.

    ``submit_batch``'s vectorised path never touches the per-rid dicts
    on submit *or* on reap: the block's ids are ``[start, stop)``, the
    version is single, the submit stamp is single, and once scored the
    whole result array hangs off :attr:`scores`.  ``take_block`` then
    pops an entire record in O(1); only callers probing individual ids
    (``take``/``version_of``) force a lazy materialisation into the
    dicts — pay-per-use, never on the block path.
    """

    __slots__ = ("start", "stop", "version_id", "scores", "submitted_at")

    def __init__(self, start: int, stop: int, version_id: int, submitted_at: float | None) -> None:
        self.start = start
        self.stop = stop
        self.version_id = version_id
        self.scores: np.ndarray | None = None
        self.submitted_at = submitted_at


@dataclass
class EngineCore:
    """The picklable half of a scoring engine: state, not plumbing.

    Everything a fresh process needs to rebuild this engine's hot path
    — the registry (models and lifecycle pointers included), the
    decision policy, and the micro-batch/cache geometry — with none of
    the process-bound machinery (clock, backend, metrics registry with
    its locks, live buffers).  ``pickle(engine.core())`` is how
    :class:`~repro.serving.sharding.ShardedScoringEngine` ships a shard
    to a worker; :meth:`build` reconstitutes an engine around the core
    on the other side.  Models must round-trip through pickle with
    bit-identical predictions (pinned in ``tests/test_pickling.py``).
    """

    registry: ModelRegistry
    policy: DecisionPolicy
    batch_size: int
    cache_size: int
    latency_log_size: int | None

    def build(
        self,
        *,
        max_latency_ms: float | None = None,
        clock: Clock | None = None,
        backend: ExecutionBackend | None = None,
        metrics: MetricsRegistry | None = None,
        score_cache: object | None = None,
    ) -> "ScoringEngine":
        """Reconstitute a live engine around this core."""
        return ScoringEngine(
            self.registry,
            policy=self.policy,
            batch_size=self.batch_size,
            cache_size=self.cache_size,
            max_latency_ms=max_latency_ms,
            clock=clock,
            backend=backend,
            latency_log_size=self.latency_log_size,
            metrics=metrics,
            score_cache=score_cache,
        )


class ScoringEngine:
    """Accumulate scoring requests and serve them in vectorised micro-batches.

    Parameters
    ----------
    models:
        A :class:`ModelRegistry` or a bare scorer with ``predict_roi``
        (wrapped into a single-champion registry).
    policy:
        The :class:`DecisionPolicy` producing scores from a model and a
        feature batch (default greedy-ROI point estimates).
    batch_size:
        Buffered requests that trigger an automatic flush.  ``1``
        degenerates to synchronous per-request scoring.
    cache_size:
        Maximum number of ``(version, feature-hash)`` entries in the
        LRU score cache; ``0`` disables caching.
    max_latency_ms:
        Deadline flushing: at most this many milliseconds may pass
        (on ``clock``) between a request entering the buffer and the
        flush that scores it, however empty the batch is.  ``None``
        (default) keeps pure batch-full flushing.
    clock:
        Time source for deadlines and latency accounting.  Defaults to
        :class:`~repro.runtime.SystemClock` when ``max_latency_ms`` is
        set; pass a :class:`~repro.runtime.ManualClock` to drive time
        explicitly (simulation/tests).  When present, submit→score
        latencies are appended to :attr:`latencies`.
    backend:
        Execution backend for the flush's policy call.  The default
        :class:`~repro.runtime.SerialBackend` is bit-identical to the
        pre-runtime engine; :class:`~repro.runtime.ThreadBackend`
        makes flushes truly asynchronous (reap results with
        :meth:`poll`, :meth:`join`, or blocking :meth:`score`).
    latency_log_size:
        Keep at most this many recent entries in :attr:`latencies`
        (oldest dropped in blocks; :attr:`latencies_dropped` counts
        them) so a long-lived clocked engine doesn't grow without
        bound.  ``None`` disables the cap.  Quantiles are *not*
        affected by the cap: :meth:`latency_quantile` reads
        :attr:`latency_hist`, a bounded-memory log-bucket sketch that
        sees every recorded latency.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to export this engine's
        metrics into (counters ``engine.<stat>``, gauge
        ``engine.queue_depth``, histogram ``engine.latency_seconds``,
        span ``span.engine.flush.seconds``).  ``None`` (default) keeps
        them engine-local: the engine always *keeps* its own real
        counters (they are what :attr:`stats` renders), the registry
        only decides whether anything collects them — so enabling
        observability costs nothing on the hot path and the scoring
        results are bit-identical either way.  Use one registry per
        engine (a second engine adopting into the same registry
        replaces the first's metrics); shard-level registries merge
        via :meth:`~repro.obs.Snapshot.merge`.
    score_cache:
        Pluggable score-cache backend: an object with
        ``get(version, row_bytes) -> float | None`` and
        ``put(version, row_bytes, score)`` (the
        :class:`~repro.runtime.SharedScoreCache` contract).  ``None``
        (default) keeps the engine's private LRU dict.  ``cache_size``
        still gates whether caching happens at all (``0`` disables the
        probe either way); capacity/eviction of an external cache are
        its own — a shared fixed-capacity table is what the sharded
        fleet plugs in so a hit on any shard is a hit on all.
    """

    def __init__(
        self,
        models: ModelRegistry | object,
        policy: DecisionPolicy | None = None,
        batch_size: int = 32,
        cache_size: int = 4096,
        max_latency_ms: float | None = None,
        clock: Clock | None = None,
        backend: ExecutionBackend | None = None,
        latency_log_size: int | None = 1_000_000,
        metrics: MetricsRegistry | None = None,
        score_cache: object | None = None,
    ) -> None:
        if isinstance(models, ModelRegistry):
            self.registry = models
        else:
            self.registry = ModelRegistry()
            self.registry.register(models, promote=True)
        self.policy = policy if policy is not None else GreedyROIPolicy()
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if max_latency_ms is not None and not max_latency_ms > 0:
            raise ValueError(f"max_latency_ms must be > 0, got {max_latency_ms}")
        if latency_log_size is not None and latency_log_size < 1:
            raise ValueError(f"latency_log_size must be >= 1, got {latency_log_size}")
        self.batch_size = int(batch_size)
        self.cache_size = int(cache_size)
        self.max_latency_ms = None if max_latency_ms is None else float(max_latency_ms)
        if clock is None and max_latency_ms is not None:
            clock = SystemClock()
        self.clock = clock
        self.backend: ExecutionBackend = backend if backend is not None else SerialBackend()
        self._deadlines = (
            DeadlineLoop(clock) if (clock is not None and max_latency_ms is not None) else None
        )
        self._cache: OrderedDict[tuple[int, bytes], float] = OrderedDict()
        self._score_cache = score_cache
        # pending rows grouped by model version, stored columnar:
        # version -> _PendingBlock (rows + rids, one contiguous slab)
        self._pending: dict[int, _PendingBlock] = {}
        self._n_pending = 0
        # dispatched-but-unreaped batches, in dispatch order; the dict
        # holds the clock time the batch's scoring completed (stamped
        # by a done-callback, so async batches measure true completion
        # rather than whenever the caller happens to reap)
        self._inflight: deque[tuple[object, int, _PendingBlock, dict]] = deque()
        self._ready: dict[int, float] = {}
        # fast-path id runs (pending, in-flight, or scored), oldest
        # first; scan is linear but the list holds one entry per
        # undrained submit_batch block, not per request
        self._ranges: list[_RidRange] = []
        self._submitted_at: dict[int, float] = {}
        # rid -> registry version whose score serves the request
        # (cache hits included); alive from submit until take
        self._version_by_rid: dict[int, int] = {}
        self._next_id = 0
        self.latency_log_size = latency_log_size
        #: submit→score latency (seconds) per request, when a clock is
        #: set (most recent ``latency_log_size`` entries)
        self.latencies: list[float] = []
        #: entries evicted from :attr:`latencies` by the size cap
        self.latencies_dropped = 0
        # the engine's metrics are real whether or not a registry
        # collects them — ``stats`` renders the counters, so the hot
        # path costs the same with observability on or off
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._counters: dict[str, Counter] = {
            name: self.metrics.adopt(Counter(f"engine.{name}")) for name in _STAT_NAMES
        }
        self._c_requests = self._counters["requests"]
        self._c_cache_hits = self._counters["cache_hits"]
        self._c_cache_misses = self._counters["cache_misses"]
        self._c_flushes = self._counters["flushes"]
        self._c_model_calls = self._counters["model_calls"]
        self._c_rows_scored = self._counters["rows_scored"]
        self._c_flush_reason = {
            reason: self._counters["flush_" + reason]
            for reason in ("batch_full", "deadline", "manual")
        }
        self._g_queue = self.metrics.adopt(Gauge("engine.queue_depth"))
        #: bounded-memory latency sketch over **every** recorded
        #: submit→score latency (the quantile source; never evicted,
        #: unlike the capped :attr:`latencies` list)
        self.latency_hist: Histogram = self.metrics.adopt(
            Histogram("engine.latency_seconds")
        )

    # ------------------------------------------------------------------
    # request lifecycle
    # ------------------------------------------------------------------
    def submit(self, x_row: np.ndarray, key: str | int | None = None) -> int:
        """Enqueue one request; returns its id.

        Auto-flushes when the buffer fills; first checks the deadline
        loop, so an overdue batch flushes *before* this request starts
        a fresh one (its own deadline is armed when it is the first
        pending request).
        """
        if self._deadlines is not None:
            self._deadlines.poll()
        row = np.ascontiguousarray(np.asarray(x_row, dtype=float).ravel())
        rid = self._next_id
        self._next_id += 1
        self._c_requests.inc()
        version = self.registry.route(key)
        self._version_by_rid[rid] = version.version
        if self.cache_size > 0:
            hit = self._cache_probe(version.version, row.tobytes())
            if hit is not None:
                self._c_cache_hits.inc()
                version.cache_hits += 1
                self._ready[rid] = hit
                # deliberately NOT logged into ``latencies``: a cache
                # replay costs nothing and would deflate the scored p95
                return rid
        self._c_cache_misses.inc()
        if self.clock is not None:
            self._submitted_at[rid] = self.clock.now()
        block = self._pending.get(version.version)
        if block is None:
            block = self._pending[version.version] = _PendingBlock(
                row.shape[0], min(self.batch_size, 64)
            )
        block.append(rid, row)
        self._n_pending += 1
        self._g_queue.set(self._n_pending)
        if self._n_pending == 1 and self._deadlines is not None:
            self._deadlines.schedule_in(
                _FLUSH_KEY, self.max_latency_ms / 1000.0, self._flush_on_deadline
            )
        if self._n_pending >= self.batch_size:
            self.flush(reason="batch_full")
        return rid

    def submit_batch(
        self, x: np.ndarray, keys: "list[str | int] | None" = None
    ) -> "list[int] | range":
        """Enqueue a block of requests; returns their ids in row order
        (a ``range`` on the fast path, a list otherwise — both are
        sequences of ints; hand either to :meth:`take_block`).

        Semantically **exactly** N :meth:`submit` calls — same scores,
        stats, cache hits, version attribution, flush counters, and
        latency sketch (pinned under a
        :class:`~repro.runtime.ManualClock`; under a wall clock the
        per-row submit stamps drift apart by however long N calls
        take, which a single block stamp legitimately doesn't).  The
        difference is the constant factor: when the registry's routing
        is static (:attr:`~repro.serving.registry.ModelRegistry.
        routing_is_static`) and the cache is off, the block takes a
        vectorised fast path — one route call, one clock stamp,
        C-level id bookkeeping, and rows landing in the columnar
        buffer as slab copies — which is what the ≥2M scores/s batched
        target is measured on.  With a cache or an active challenger
        the rows fall back to the per-row loop (each row must probe /
        draw exactly as ``submit`` would).

        Mid-block ``batch_size`` boundaries flush exactly as they
        would per-row, so flush counters and batch shapes are
        identical to the scalar path.
        """
        x = np.ascontiguousarray(np.asarray(x, dtype=float))
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        n = x.shape[0]
        if keys is not None and len(keys) != n:
            raise ValueError(f"got {len(keys)} keys for {n} rows")
        if n == 0:
            return []
        if self.cache_size > 0 or not self.registry.routing_is_static:
            # per-row semantics genuinely needed: cache probes and RNG
            # routing must happen once per row, in order
            if keys is None:
                return [self.submit(x[i]) for i in range(n)]
            return [self.submit(x[i], key=keys[i]) for i in range(n)]
        # ---- vectorised fast path ----------------------------------
        if self._deadlines is not None:
            self._deadlines.poll()
        version = self.registry.route(None)  # static: champion, no RNG
        vid = version.version
        rid0 = self._next_id
        self._next_id += n
        self._c_requests.inc(n)
        self._c_cache_misses.inc(n)
        now = self.clock.now() if self.clock is not None else None
        start = 0
        while start < n:
            # stop at every batch_size boundary exactly as the scalar
            # path would (flush counters stay identical)
            take = min(max(self.batch_size - self._n_pending, 1), n - start)
            slice_rid0 = rid0 + start
            block = self._pending.get(vid)
            if block is None:
                block = self._pending[vid] = _PendingBlock(
                    x.shape[1], min(self.batch_size, max(take, 64))
                )
            rec = block.record
            if rec is not None and not block.mixed and rec.stop == slice_rid0:
                rec.stop += take  # same block, contiguous ids: extend
            elif rec is None and not block.mixed and block.n == 0:
                rec = block.record = _RidRange(slice_rid0, slice_rid0 + take, vid, now)
                self._ranges.append(rec)
            else:
                # the block already holds scalar rows (or ids that are
                # no longer contiguous) — bookkeep this slice per-rid
                # so the reap's exact path covers everything
                slice_ids = range(slice_rid0, slice_rid0 + take)
                self._version_by_rid.update(zip(slice_ids, repeat(vid)))
                if now is not None:
                    self._submitted_at.update(zip(slice_ids, repeat(now)))
                block.mixed = True
            was_empty = self._n_pending == 0
            block.append_block(
                np.arange(slice_rid0, slice_rid0 + take, dtype=np.int64),
                x[start : start + take],
            )
            self._n_pending += take
            start += take
            if was_empty and self._deadlines is not None:
                self._deadlines.schedule_in(
                    _FLUSH_KEY, self.max_latency_ms / 1000.0, self._flush_on_deadline
                )
            if self._n_pending >= self.batch_size:
                self.flush(reason="batch_full")
        self._g_queue.set(self._n_pending)
        return range(rid0, rid0 + n)

    def _flush_on_deadline(self) -> None:
        self.flush(reason="deadline")

    def flush(self, reason: str = "manual") -> int:
        """Dispatch every pending request (one policy call per version).

        Returns the number of requests dispatched.  On the serial
        backend scoring happens inline, so results are ready (and any
        model failure raises) before ``flush`` returns — the
        historical semantics.  On an asynchronous backend the policy
        calls run on workers; results (and deferred failures) surface
        once the worker finishes, at the next :meth:`poll` or a
        blocking :meth:`join` (non-blocking probes like
        :meth:`has_result` / :meth:`take` only see batches that have
        already completed).
        """
        if reason not in self._c_flush_reason:
            raise ValueError(
                f"reason must be 'manual', 'batch_full' or 'deadline', got {reason!r}"
            )
        dispatched = 0
        if self._n_pending:
            self._c_flushes.inc()
            self._c_flush_reason[reason].inc()
        if self._deadlines is not None:
            self._deadlines.cancel(_FLUSH_KEY)
        # pop each batch before dispatching so a raising policy/model
        # leaves the engine consistent (the failed batch is dropped,
        # not re-run)
        try:
            with self.metrics.span("engine.flush", clock=self.clock):
                while self._pending:
                    version_id, batch = self._pending.popitem()
                    self._n_pending -= batch.n
                    model = self.registry.get(version_id).model
                    # one contiguous slice of the columnar block — the
                    # block is retired with this dispatch, so the view
                    # cannot alias later appends
                    rows = batch.view()
                    future = self.backend.submit(_score_rows, self.policy, model, rows)
                    done_stamp: dict = {}
                    if self.clock is not None:
                        clock = self.clock

                        def _stamp(_f, _d=done_stamp, _c=clock):
                            _d["at"] = _c.now()

                        # serial futures are already done: fires inline now,
                        # preserving the historical flush-time measurement
                        future.add_done_callback(_stamp)  # type: ignore[attr-defined]
                    self._inflight.append((future, version_id, batch, done_stamp))
                    dispatched += rows.shape[0]
                    if future.done():  # type: ignore[attr-defined]
                        # serial backend: score (or raise) per batch, exactly
                        # the pre-runtime sequence — a failing batch stops the
                        # flush with the remaining batches pending and unscored
                        self._reap(wait=False)
                self._reap(wait=False)
        finally:
            self._g_queue.set(self._n_pending)
            if self._n_pending and self._deadlines is not None:
                # a raising batch aborted the flush with other versions'
                # requests still buffered — they are already overdue, so
                # re-arm to fire at the very next poll (never leave
                # survivors without a deadline)
                self._deadlines.schedule_in(_FLUSH_KEY, 0.0, self._flush_on_deadline)
        return dispatched

    def _reap(self, wait: bool) -> None:
        """Collect finished backend futures into ``_ready`` (dispatch order).

        ``wait=True`` blocks until every in-flight batch has resolved.
        A failed batch re-raises here and is dropped; later in-flight
        batches stay queued and resolve on subsequent reaps.
        """
        while self._inflight:
            future, version_id, batch, done_stamp = self._inflight[0]
            if not wait and not future.done():  # type: ignore[attr-defined]
                break
            self._inflight.popleft()
            nb = batch.n
            try:
                scores = np.asarray(
                    future.result(), dtype=float  # type: ignore[attr-defined]
                ).ravel()
                if scores.shape[0] != nb:
                    raise ValueError(
                        f"policy returned {scores.shape[0]} scores for {nb} rows"
                    )
            except BaseException:
                # the failed batch is dropped whole — forget its stamps,
                # its version attribution, and its id run (those ids
                # never resolve)
                if batch.record is not None:
                    try:
                        self._ranges.remove(batch.record)
                    # idempotent cleanup: the range may have been reaped
                    # concurrently; nothing was lost, so nothing to record
                    except ValueError:  # pragma: no cover - already gone  # repro: allow[RPR007]
                        pass
                for rid in batch.rids[:nb].tolist():
                    self._submitted_at.pop(rid, None)
                    self._version_by_rid.pop(rid, None)
                raise
            self._c_model_calls.inc()
            self._c_rows_scored.inc(nb)
            # the model really scored these rows — credit the version
            # (cache hits were credited separately at submit)
            self.registry.get(version_id).requests += nb
            if self.clock is not None:
                # scoring-completion time from the done-callback; the
                # tiny race where done() flips before callbacks run
                # falls back to the reap time
                now = done_stamp.get("at", self.clock.now())
            else:
                now = None
            rec = batch.record
            if rec is not None and not batch.mixed and now is None and self.cache_size <= 0:
                # pure fast-path block: the scores array *is* the
                # bookkeeping — O(1) reap, served by take_block (or
                # lazily materialised if someone probes single ids)
                rec.scores = scores
            elif now is None and self.cache_size <= 0:
                # nothing per-row to book — land the whole batch in one
                # C-level update
                if rec is not None:
                    self._ranges.remove(rec)
                    self._version_by_rid.update(
                        zip(batch.rids[:nb].tolist(), repeat(version_id))
                    )
                self._ready.update(zip(batch.rids[:nb].tolist(), scores.tolist()))
            else:
                fallback = rec.submitted_at if rec is not None else None
                if rec is not None:
                    # degrade to exact per-rid accounting (clock and/or
                    # cache writes need every row anyway)
                    self._ranges.remove(rec)
                    self._version_by_rid.update(
                        zip(batch.rids[:nb].tolist(), repeat(version_id))
                    )
                rows = batch.rows
                for i, rid in enumerate(batch.rids[:nb].tolist()):
                    score = float(scores[i])
                    self._ready[rid] = score
                    if now is not None:
                        sub = self._submitted_at.pop(
                            rid, fallback if fallback is not None else now
                        )
                        self._log_latency(now - sub)
                    if self.cache_size > 0:
                        self._remember(version_id, rows[i].tobytes(), score)

    def _log_latency(self, seconds: float) -> None:
        # the sketch sees everything (bounded memory, no eviction) —
        # quantiles stay unbiased however long the engine lives
        self.latency_hist.record(max(0.0, seconds))
        self.latencies.append(seconds)
        cap = self.latency_log_size
        if cap is not None and len(self.latencies) > 2 * cap:
            # drop the oldest half-block; amortised O(1) per append
            drop = len(self.latencies) - cap
            del self.latencies[:drop]
            self.latencies_dropped += drop

    def latency_quantile(self, q: float) -> float:
        """Submit→score latency quantile (clock seconds) over **every**
        latency this engine ever recorded.

        Reads :attr:`latency_hist`, so unlike ``np.quantile(engine.
        latencies, q)`` the answer is not silently biased toward recent
        traffic once the ``latency_log_size`` cap starts evicting; the
        sketch's relative error is ~1%.  Raises :class:`ValueError`
        when nothing was recorded (no clock, or cache-only traffic).
        """
        if self.latency_hist.count == 0:
            raise ValueError("no latencies recorded — run with a clocked engine")
        return self.latency_hist.quantile(q)

    def poll(self) -> int:
        """Advance the engine without submitting: fire any overdue
        deadline flush and reap finished asynchronous batches.

        Returns the number of deadline flushes fired.  The idle-stream
        hook: callers with their own event loop (the traffic
        simulator, a server's timer tick) call this between arrivals
        so a quiet stream still honours ``max_latency_ms``.
        """
        fired = self._deadlines.poll() if self._deadlines is not None else 0
        self._reap(wait=False)
        return fired

    def join(self) -> None:
        """Block until every dispatched batch has been scored.

        No-op on the serial backend (nothing is ever left in flight).
        """
        self._reap(wait=True)

    def next_deadline(self) -> float | None:
        """Clock time of the pending flush deadline, or None.

        Lets an event loop driving a :class:`~repro.runtime.ManualClock`
        stop *at* the deadline instead of jumping past it — the traffic
        simulator uses this to keep the latency bound exact for any
        inter-arrival gap.
        """
        return self._deadlines.next_deadline() if self._deadlines is not None else None

    def has_result(self, request_id: int) -> bool:
        """True once the request's score is available.

        Advances the engine like :meth:`poll` does — overdue deadline
        flushes fire and finished asynchronous batches are reaped — so
        a waiter spinning on ``has_result`` alone still gets the
        ``max_latency_ms`` guarantee.
        """
        if self._deadlines is not None:
            self._deadlines.poll()
        if self._inflight:
            self._reap(wait=False)
        if request_id in self._ready:
            return True
        rec = self._find_range(request_id)
        return rec is not None and rec.scores is not None

    def version_of(self, request_id: int) -> int:
        """Registry version id whose score serves this request.

        Valid from :meth:`submit` until the result is taken (cache hits
        report the version whose cached score answered); KeyError for
        unknown ids or batches dropped by a failed flush.  Read it
        *before* :meth:`take` — outcome attribution needs to know which
        model's score drove the decision being realised.
        """
        version = self._version_by_rid.get(request_id)
        if version is not None:
            return version
        rec = self._find_range(request_id)
        if rec is not None:
            return rec.version_id
        return self._version_by_rid[request_id]  # KeyError with the rid

    def _find_range(self, rid: int) -> _RidRange | None:
        for rec in self._ranges:
            if rec.start <= rid < rec.stop:
                return rec
        return None

    def _materialize(self, rec: _RidRange) -> None:
        """Expand one scored fast-path run into the per-rid dicts (the
        price of probing block results id-by-id; ``take_block`` never
        pays it)."""
        ids = range(rec.start, rec.stop)
        self._ready.update(zip(ids, rec.scores.tolist()))
        self._version_by_rid.update(zip(ids, repeat(rec.version_id)))
        self._ranges.remove(rec)

    def take(self, request_id: int) -> float:
        """Pop a finished score (KeyError when still pending/unknown)."""
        if request_id not in self._ready:
            if self._deadlines is not None:
                self._deadlines.poll()
            if self._inflight:
                self._reap(wait=False)
            if request_id not in self._ready:
                rec = self._find_range(request_id)
                if rec is not None and rec.scores is not None:
                    self._materialize(rec)
        score = self._ready.pop(request_id)
        self._version_by_rid.pop(request_id, None)
        return score

    def take_block(self, rids: "list[int] | range") -> np.ndarray:
        """Pop a whole ``submit_batch`` worth of scores as one array.

        The bulk companion to :meth:`take`: hand back exactly what
        ``submit_batch`` returned and the scores come out in row
        order.  When the ids are a fast-path run whose records tile
        the span, this is O(1) per dispatched block (array slices, no
        per-rid dicts); any other id sequence falls back to per-rid
        :meth:`take` calls — same result, scalar cost.
        """
        n = len(rids)
        if n == 0:
            return np.empty(0, dtype=float)
        self.poll()
        start, stop = int(rids[0]), int(rids[-1]) + 1
        if stop - start == n:
            recs = sorted(
                (
                    r
                    for r in self._ranges
                    if r.start >= start and r.stop <= stop and r.scores is not None
                ),
                key=lambda r: r.start,
            )
            if (
                recs
                and recs[0].start == start
                and recs[-1].stop == stop
                and all(a.stop == b.start for a, b in zip(recs, recs[1:]))
            ):
                for rec in recs:
                    self._ranges.remove(rec)
                if len(recs) == 1:
                    return recs[0].scores
                return np.concatenate([rec.scores for rec in recs])
        return np.array([self.take(rid) for rid in rids], dtype=float)

    def drain(self) -> list[tuple[int, int, float]]:
        """Pop every finished result as ``(request_id, version_id, score)``.

        Advances the engine first (deadline flushes, finished async
        batches), then empties the ready set in request-id order.  The
        bulk companion to :meth:`take` for callers that track requests
        themselves — a sharded routing layer reaps a whole dispatch in
        one call instead of probing ids one by one.
        """
        self.poll()
        for rec in [r for r in self._ranges if r.scores is not None]:
            self._materialize(rec)
        out = []
        for rid in sorted(self._ready):
            score = self._ready.pop(rid)
            out.append((rid, self._version_by_rid.pop(rid, -1), score))
        return out

    def core(self) -> EngineCore:
        """This engine's picklable per-shard core (see :class:`EngineCore`).

        The core *shares* the live registry and policy objects — it is
        a view, not a copy; pickling it is what snapshots the state.
        """
        return EngineCore(
            registry=self.registry,
            policy=self.policy,
            batch_size=self.batch_size,
            cache_size=self.cache_size,
            latency_log_size=self.latency_log_size,
        )

    def score(self, x_row: np.ndarray, key: str | int | None = None) -> float:
        """Synchronous convenience path: submit, force a flush, return."""
        rid = self.submit(x_row, key=key)
        if rid not in self._ready:
            self.flush()
            self.join()
        return self.take(rid)

    def score_batch(self, x: np.ndarray, key: str | int | None = None) -> np.ndarray:
        """Score a pre-assembled batch through one routed version.

        The offline-parity path: routes once and applies the policy in
        a single call, bypassing both the micro-batch buffer and the
        LRU cache (cache hit/miss counters are untouched).
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        version = self.registry.route(key)
        scores = np.asarray(
            self.policy.score_batch(version.model, x), dtype=float
        ).ravel()
        # credited only after the call returns: a raising model scored
        # nothing, and ``requests`` counts what the model actually did
        version.requests += x.shape[0]
        self._c_requests.inc(x.shape[0])
        self._c_model_calls.inc()
        self._c_rows_scored.inc(x.shape[0])
        return scores

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def _cache_probe(self, version_id: int, row_bytes: bytes) -> float | None:
        """One cache lookup through whichever backend is plugged in."""
        if self._score_cache is not None:
            return self._score_cache.get(version_id, row_bytes)
        cache_key = (version_id, row_bytes)
        hit = self._cache.get(cache_key)
        if hit is not None:
            self._cache.move_to_end(cache_key)
        return hit

    def _remember(self, version_id: int, row_bytes: bytes, score: float) -> None:
        if self.cache_size <= 0:
            return
        if self._score_cache is not None:
            self._score_cache.put(version_id, row_bytes, score)
            return
        cache_key = (version_id, row_bytes)
        self._cache[cache_key] = score
        self._cache.move_to_end(cache_key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    @property
    def stats(self) -> dict[str, int]:
        """Lifetime request/flush/cache counters, as a plain dict.

        Rendered from the engine's :class:`~repro.obs.Counter`\\ s (the
        same objects an attached registry exports), so the dict is a
        fresh copy each access — mutate away, the counters are the
        source of truth.
        """
        return {name: int(self._counters[name].value) for name in _STAT_NAMES}

    @property
    def n_pending(self) -> int:
        """Requests buffered and not yet dispatched."""
        return self._n_pending

    @property
    def n_inflight(self) -> int:
        """Dispatched batches not yet reaped (asynchronous backends)."""
        return len(self._inflight)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests served from the LRU cache."""
        hits = self._c_cache_hits.value
        total = hits + self._c_cache_misses.value
        return hits / total if total else 0.0

"""Streaming budget pacing: admit users online without exhausting B early.

Offline, Algorithm 1 sees the whole day at once — it sorts by ROI and
spends down the budget.  Online, users arrive one at a time and a
naive "treat while budget remains" policy exhausts B in the first hour
on mediocre users.  :class:`BudgetPacer` solves the streaming version
of C-BTAP with an *adaptive admission threshold*:

1. every arrival's ``(score, cost)`` lands in a sliding window — a
   live sample of the day's traffic distribution;
2. the pacer periodically derives the per-event spend rate that keeps
   cumulative spend on a target pacing curve (uniform by default), and
3. locates, with the same bisection primitive as Algorithm 2
   (:func:`repro.core.roi_star.bisect_monotone`), the score threshold
   whose expected admitted cost over the window matches that rate.

When realised outcomes are fed back via :meth:`observe_outcome`, the
pacer additionally computes the break-even ``roi*`` of recent traffic
with :func:`repro.core.roi_star.binary_search_roi_star` and uses it as
a profitability floor under the pacing threshold — the paper's "treat
only when ROI clears roi*" rule, applied to the live stream.

Two invariants hold by construction: cumulative spend never exceeds
the budget, and never exceeds the pacing curve by more than
``curve_slack`` of the budget.

Days chain through :class:`MultiDayPacer`: each day is a plain
:class:`BudgetPacer` (both invariants intact), and the day's realised
under/over-spend rolls into the next day's budget — and, in ``"early"``
mode, tilts its pacing curve — so a multi-day campaign converges on
its cumulative plan instead of leaking every day's residual.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.roi_star import binary_search_roi_star, bisect_monotone
from repro.obs import NULL_REGISTRY, MetricsRegistry

__all__ = ["BudgetPacer", "DayPlan", "EmpiricalCurve", "MultiDayPacer"]


class EmpiricalCurve:
    """Monotone piecewise-linear spend curve fitted to observed demand.

    Built from a completed day's ``(n_seen, offered_cost)`` trace: the
    fraction of the day's total *offered* cost that had arrived by each
    fraction of its arrivals.  Used as the next day's ``target_curve``
    so the pacer releases budget when demand historically showed up
    instead of uniformly.  Plain object (not a closure) so planned
    pacers stay picklable.
    """

    def __init__(self, progress: np.ndarray, fraction: np.ndarray) -> None:
        progress = np.asarray(progress, dtype=float)
        fraction = np.asarray(fraction, dtype=float)
        if progress.shape != fraction.shape or progress.ndim != 1 or progress.size < 2:
            raise ValueError("progress and fraction must be equal-length 1-d, size >= 2")
        if progress[0] != 0.0 or progress[-1] != 1.0 or fraction[-1] != 1.0:
            raise ValueError("curve must span progress [0, 1] and end at fraction 1")
        if np.any(np.diff(progress) < 0) or np.any(np.diff(fraction) < 0):
            raise ValueError("curve knots must be non-decreasing")
        self.progress = progress
        self.fraction = fraction

    @classmethod
    def from_trace(
        cls, trace: list[tuple[int, float]], n_total: int, offered_total: float
    ) -> "EmpiricalCurve":
        """Build from a :attr:`BudgetPacer.offered_trace` of a finished day."""
        if n_total <= 0 or offered_total <= 0 or len(trace) < 1:
            raise ValueError("need a non-empty day (arrivals and offered cost > 0)")
        xs = [0.0] + [min(1.0, n / n_total) for n, _ in trace] + [1.0]
        ys = [0.0] + [min(1.0, c / offered_total) for _, c in trace] + [1.0]
        return cls(np.maximum.accumulate(xs), np.maximum.accumulate(ys))

    def __call__(self, progress: float) -> float:
        return float(np.interp(progress, self.progress, self.fraction))


@dataclass(frozen=True)
class DayPlan:
    """Day-ahead plan: the next day's pacer sizing, derived from the
    last observed day by :meth:`MultiDayPacer.plan_next_day`."""

    base_budget: float
    horizon: int
    target_curve: EmpiricalCurve | None = None


def _uniform_curve(progress: float) -> float:
    """Default pacing target: spend linearly across the day."""
    return progress


class BudgetPacer:
    """Admit streaming users under a budget that must last the horizon.

    Parameters
    ----------
    budget:
        Total (expected-cost) budget B for the horizon.
    horizon:
        Expected number of arrivals; progress along the pacing curve is
        ``n_seen / horizon`` (capped at 1 — extra traffic spends
        whatever remains).
    window:
        Sliding-window length for the traffic sample.
    refresh_every:
        Re-derive the threshold every this many arrivals.
    lookahead:
        Events ahead used to convert the curve into a spend rate;
        smaller tracks the curve tighter, larger smooths noise.
    warmup:
        Arrivals before the first threshold fit; during warmup
        admission is purely curve-gated (score-blind), which buys the
        window an unbiased traffic sample.  The arrival that completes
        warmup triggers the fit and is the first to be threshold-gated.
        Capped at a quarter of the horizon so short days still engage
        the threshold.
    target_curve:
        Monotone callable ``progress ∈ [0,1] → fraction of B`` with
        ``curve(1) == 1``; default uniform.
    curve_slack:
        Admissions may run ahead of the curve by at most this fraction
        of B (absorbs cost granularity without losing pacing).
    use_roi_floor:
        Apply the ``roi*`` profitability floor when outcome feedback is
        available (see :meth:`observe_outcome`).
    min_arm_outcomes:
        Treated *and* control outcomes required in the feedback window
        before the floor activates.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to record pacing health
        into: counters ``pacer.offers`` / ``pacer.admits`` /
        ``pacer.refreshes`` / ``pacer.lockouts`` (refreshes that found
        spend ahead of the curve and locked admission out), gauges
        ``pacer.threshold`` / ``pacer.roi_floor`` / ``pacer.spend``
        and ``pacer.spend_vs_curve`` (signed distance of cumulative
        spend from the curve target — the pacing-error signal worth
        alerting on).  ``None`` (default) records nothing.
    """

    def __init__(
        self,
        budget: float,
        horizon: int,
        *,
        window: int = 1024,
        refresh_every: int = 64,
        lookahead: int = 256,
        warmup: int = 128,
        target_curve: Callable[[float], float] | None = None,
        curve_slack: float = 0.05,
        use_roi_floor: bool = True,
        min_arm_outcomes: int = 20,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not budget >= 0:  # rejects NaN too
            raise ValueError(f"budget must be >= 0, got {budget}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        if not 0.0 <= curve_slack <= 1.0:
            raise ValueError(f"curve_slack must be in [0, 1], got {curve_slack}")
        self.budget = float(budget)
        self.horizon = int(horizon)
        self.window = int(window)
        self.refresh_every = int(refresh_every)
        self.lookahead = int(lookahead)
        self.warmup = min(int(warmup), max(2, horizon // 4))
        self.target_curve = target_curve if target_curve is not None else _uniform_curve
        self.curve_slack = float(curve_slack)
        self.use_roi_floor = bool(use_roi_floor)
        self.min_arm_outcomes = int(min_arm_outcomes)

        self._traffic: deque[tuple[float, float]] = deque(maxlen=self.window)
        self._outcomes: deque[tuple[int, float, float]] = deque(maxlen=self.window)
        self.n_seen = 0
        self.n_admitted = 0
        self.spent = 0.0
        #: cumulative expected cost of *all* offers seen (admitted or
        #: not) — the day's observed demand, which day-ahead planning
        #: sizes the next day's base budget from
        self.offered_cost = 0.0
        #: (n_seen, offered_cost) at each refresh — the within-day
        #: demand shape, which day-ahead planning turns into a curve
        self.offered_trace: list[tuple[int, float]] = []
        self.threshold_ = 0.0
        self.roi_floor_ = 0.0
        self._last_refresh = -(10**9)
        # (n_seen, spent, threshold) at each refresh — the pacing trace
        self.history: list[tuple[int, float, float]] = []
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_offers = self.metrics.counter("pacer.offers")
        self._c_admits = self.metrics.counter("pacer.admits")
        self._c_refreshes = self.metrics.counter("pacer.refreshes")
        self._c_lockouts = self.metrics.counter("pacer.lockouts")
        self._g_threshold = self.metrics.gauge("pacer.threshold")
        self._g_roi_floor = self.metrics.gauge("pacer.roi_floor")
        self._g_spend = self.metrics.gauge("pacer.spend")
        self._g_spend_vs_curve = self.metrics.gauge("pacer.spend_vs_curve")

    # ------------------------------------------------------------------
    # the admission decision
    # ------------------------------------------------------------------
    def offer(self, score: float, cost: float) -> bool:
        """Record one arrival and decide treat (True) / skip (False)."""
        score = float(score)
        cost = float(cost)
        if cost <= 0:
            raise ValueError(f"cost must be > 0 (Assumption 4), got {cost}")
        self.n_seen += 1
        self._c_offers.inc()
        self.offered_cost += cost
        self._traffic.append((score, cost))
        if (
            self.n_seen >= self.warmup
            and self.n_seen - self._last_refresh >= self.refresh_every
        ):
            self._refresh()

        progress = min(1.0, self.n_seen / self.horizon)
        curve_cap = self.budget * min(
            1.0, float(self.target_curve(progress)) + self.curve_slack
        )
        cap = min(self.budget, curve_cap)
        if self.spent + cost > cap:
            return False
        # same boundary as the _refresh trigger above: the arrival that
        # completes warmup fits the first threshold and is already
        # gated by it (a fresh fit must never be ignored)
        if self.n_seen >= self.warmup and score < self.threshold_:
            return False
        self.n_admitted += 1
        self.spent += cost
        self._c_admits.inc()
        self._g_spend.set(self.spent)
        return True

    def observe_outcome(self, t: int, y_r: float, y_c: float) -> None:
        """Feed back one realised outcome (treated flag, revenue, cost).

        Outcomes power the ``roi*`` profitability floor; without them
        the pacer paces spend but cannot tell whether spending is
        worthwhile at all.
        """
        self._outcomes.append((int(t), float(y_r), float(y_c)))

    def rebudget(self, budget: float) -> None:
        """Reset the budget mid-stream (fleet slice rebalancing).

        The new budget must cover what is already spent — a pacer can
        be given more or less headroom, but never retroactively put
        over budget (that would break the spend invariant without any
        admission having caused it).  Thresholds pick the change up at
        the next refresh; the admission cap uses it immediately.
        """
        budget = float(budget)
        if not budget >= self.spent:
            raise ValueError(
                f"new budget {budget} is below already-realised spend {self.spent}"
            )
        self.budget = budget

    # ------------------------------------------------------------------
    # threshold adaptation
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        self._last_refresh = self.n_seen
        self._c_refreshes.inc()
        traffic = np.asarray(self._traffic, dtype=float)
        scores, costs = traffic[:, 0], traffic[:, 1]

        progress = min(1.0, self.n_seen / self.horizon)
        ahead = min(1.0, (self.n_seen + self.lookahead) / self.horizon)
        events_ahead = max(1, int(round((ahead - progress) * self.horizon)))
        target_cum = self.budget * float(self.target_curve(ahead))
        rate = (target_cum - self.spent) / events_ahead

        if rate <= 0.0:
            # ahead of the curve: admit nothing until spend catches up.
            # The lockout must be unconditional — ``max(scores) + 1``
            # only covers the window's range, so a later arrival scoring
            # above it would pierce the lockout and spend while the
            # pacer believes it is admitting nothing
            self.threshold_ = np.inf
            self._c_lockouts.inc()
        else:
            lo = float(np.min(scores)) - 1e-9
            hi = float(np.max(scores)) + 1e-9

            def pace_gap(thr: float) -> float:
                # relative gap (dimensionless so the bisection tolerance is
                # cost-scale independent); > 0 when admitting above ``thr``
                # spends slower than needed
                admitted = float(np.mean(np.where(scores >= thr, costs, 0.0)))
                return 1.0 - admitted / rate

            if pace_gap(lo) >= 0.0:
                self.threshold_ = lo  # even admitting everyone is too slow
            else:
                self.threshold_ = bisect_monotone(pace_gap, lo, hi, eps=1e-3)

        if self.use_roi_floor and self._outcomes:
            outcomes = np.asarray(self._outcomes, dtype=float)
            t, y_r, y_c = outcomes[:, 0], outcomes[:, 1], outcomes[:, 2]
            n1, n0 = int(np.sum(t == 1)), int(np.sum(t == 0))
            if n1 >= self.min_arm_outcomes and n0 >= self.min_arm_outcomes:
                # Assumption 4 guard: the bisection needs tau_c > 0 in the
                # window, else the derivative never crosses zero and the
                # floor degenerates to the search endpoint
                tau_c = float(y_c[t == 1].mean() - y_c[t == 0].mean())
                if tau_c > 0.0:
                    self.roi_floor_ = binary_search_roi_star(t, y_r, y_c)
                    self.threshold_ = max(self.threshold_, self.roi_floor_)
        self.history.append((self.n_seen, self.spent, self.threshold_))
        self.offered_trace.append((self.n_seen, self.offered_cost))
        self._g_threshold.set(self.threshold_)
        self._g_roi_floor.set(self.roi_floor_)
        # signed pacing error: + means spending ahead of the curve
        self._g_spend_vs_curve.set(
            self.spent - self.budget * float(self.target_curve(progress))
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def progress(self) -> float:
        """Fraction of the horizon consumed (capped at 1)."""
        return min(1.0, self.n_seen / self.horizon)

    @property
    def remaining(self) -> float:
        """Budget left to spend."""
        return max(0.0, self.budget - self.spent)

    @property
    def admit_rate(self) -> float:
        """Fraction of arrivals admitted so far."""
        return self.n_admitted / self.n_seen if self.n_seen else 0.0


class MultiDayPacer:
    """Chain :class:`BudgetPacer` days with under/over-spend carryover.

    A single :class:`BudgetPacer` forgets everything at midnight: day
    *d*'s unspent budget evaporates and day *d+1* starts from its flat
    daily allowance.  Over a campaign that wastes real money — the
    strict budget boundary plus threshold conservatism leave every day
    a little short, and the shortfalls compound.  ``MultiDayPacer``
    rolls the residual forward instead: day *d+1*'s pacer is built
    with budget ``base_{d+1} + (budget_d - spent_d)``, so under-spend
    relative to the plan raises the next day's curve and over-spend
    relative to the *base* allowance (possible exactly when an earlier
    day's carry funded it) lowers it.  Telescoping the recursion gives
    the campaign invariant for free::

        sum_d spent_d  =  sum_d base_d - final_carry  <=  total budget

    with equality only when the final day spends to the boundary —
    each day's own invariants (never over budget, never ahead of curve
    + slack) continue to hold unchanged, because each day *is* a plain
    :class:`BudgetPacer`.

    How the carry lands on the next day's curve is ``carryover_mode``:

    * ``"spread"`` (default) — the enlarged budget keeps the base
      curve shape, spreading the carry evenly across the day;
    * ``"early"`` — the curve is tilted to release the carried amount
      at the start of the day (``curve'(p) = (carry + base *
      curve(p)) / (carry + base)``), catching the campaign up to its
      cumulative plan as fast as traffic allows.

    Drive it one day at a time: :meth:`start_day` → stream
    ``offer``/``observe_outcome`` through the returned (or delegated)
    pacer → :meth:`end_day`.  :class:`~repro.serving.simulator
    .TrafficReplay.replay_days` does exactly this.

    Parameters
    ----------
    daily_budget:
        Default per-day base allowance (override per day via
        :meth:`start_day`).
    horizon:
        Default expected arrivals per day (override per day).
    carryover:
        Fraction of each day's residual rolled into the next day
        (``1`` = full carryover, ``0`` = today's amnesiac behaviour).
    carryover_mode:
        ``"spread"`` or ``"early"`` (see above).
    pacer_params:
        Extra keyword arguments for every day's :class:`BudgetPacer`
        (``window``, ``warmup``, ``target_curve``, ...).
    metrics:
        A :class:`~repro.obs.MetricsRegistry` shared by every day's
        pacer (their counters accumulate across the campaign — a
        per-day view is a snapshot delta), plus campaign-level
        ``pacer.days_completed`` and ``pacer.carry``.
    """

    def __init__(
        self,
        daily_budget: float | None = None,
        horizon: int | None = None,
        *,
        carryover: float = 1.0,
        carryover_mode: str = "spread",
        pacer_params: dict | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if daily_budget is not None and not daily_budget >= 0:
            raise ValueError(f"daily_budget must be >= 0, got {daily_budget}")
        if not 0.0 <= carryover <= 1.0:
            raise ValueError(f"carryover must be in [0, 1], got {carryover}")
        if carryover_mode not in ("spread", "early"):
            raise ValueError(
                f"carryover_mode must be 'spread' or 'early', got {carryover_mode!r}"
            )
        self.daily_budget = daily_budget
        self.horizon = horizon
        self.carryover = float(carryover)
        self.carryover_mode = carryover_mode
        self.pacer_params = dict(pacer_params or {})
        self.carry = 0.0
        self.current: BudgetPacer | None = None
        self.days: list[BudgetPacer] = []
        #: per-completed-day accounting: (base_budget, day_budget, spent, carry_out)
        self.ledger: list[tuple[float, float, float, float]] = []
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._c_days = self.metrics.counter("pacer.days_completed")
        self._g_carry = self.metrics.gauge("pacer.carry")

    # ------------------------------------------------------------------
    # day lifecycle
    # ------------------------------------------------------------------
    def start_day(
        self,
        base_budget: float | None = None,
        horizon: int | None = None,
        target_curve=None,
    ) -> BudgetPacer:
        """Open the next day: a fresh :class:`BudgetPacer` holding
        ``base_budget + carried residual``.

        ``target_curve`` (e.g. a planned :class:`EmpiricalCurve`)
        overrides the default ``pacer_params`` curve for this day only;
        the ``"early"`` carryover tilt still composes on top of it.
        """
        if self.current is not None:
            raise RuntimeError("previous day still open — call end_day() first")
        base = self.daily_budget if base_budget is None else float(base_budget)
        if base is None:
            raise ValueError("no base_budget given and no daily_budget default set")
        if not base >= 0:
            raise ValueError(f"base_budget must be >= 0, got {base}")
        n = self.horizon if horizon is None else int(horizon)
        if n is None:
            raise ValueError("no horizon given and no horizon default set")
        params = dict(self.pacer_params)
        if target_curve is not None:
            params["target_curve"] = target_curve
        budget = base + self.carry
        if self.carryover_mode == "early" and self.carry > 0.0 and budget > 0.0:
            base_curve = params.get("target_curve") or _uniform_curve
            carry, base_b = self.carry, base  # freeze for the closure

            def tilted(progress: float) -> float:
                # release the carried residual up front, then pace the
                # base allowance along its own curve; reaches 1 at p=1
                return (carry + base_b * float(base_curve(progress))) / (carry + base_b)

            params["target_curve"] = tilted
        self._base = base
        # all days share one registry: campaign counters accumulate,
        # per-day views are snapshot deltas
        params.setdefault("metrics", None if self.metrics is NULL_REGISTRY else self.metrics)
        self.current = BudgetPacer(budget, n, **params)
        self.days.append(self.current)
        return self.current

    def end_day(self) -> float:
        """Close the open day and bank its residual; returns the new carry."""
        if self.current is None:
            raise RuntimeError("no open day — call start_day() first")
        residual = self.current.budget - self.current.spent
        carry_out = self.carryover * max(0.0, residual)
        self.ledger.append(
            (self._base, self.current.budget, self.current.spent, carry_out)
        )
        self.carry = carry_out
        self.current = None
        self._c_days.inc()
        self._g_carry.set(carry_out)
        return self.carry

    # ------------------------------------------------------------------
    # day-ahead planning
    # ------------------------------------------------------------------
    def plan_next_day(
        self, budget_fraction: float, *, plan_curve: bool = True
    ) -> DayPlan:
        """Size day *d+1* from day *d*'s observed traffic.

        The seed experiment sizes every day's budget from an oracle
        cohort sum; a live system only sees what arrived.  This uses
        the last completed day's demand instead: the planned base
        budget is ``budget_fraction`` of the total *offered* cost that
        day (what full treatment would have cost), the horizon is that
        day's arrival count, and — when ``plan_curve`` and the day
        refreshed at least once — the target curve is the day's
        empirical within-day demand shape (:class:`EmpiricalCurve`).

        Feed the result to :meth:`start_day`::

            plan = pacer.plan_next_day(0.3)
            pacer.start_day(plan.base_budget, plan.horizon, plan.target_curve)
        """
        if not 0.0 <= budget_fraction:
            raise ValueError(f"budget_fraction must be >= 0, got {budget_fraction}")
        if not self.days or (self.current is not None and len(self.days) == 1):
            raise RuntimeError("no completed day to plan from — finish a day first")
        last = self.days[-1] if self.current is None else self.days[-2]
        if last.n_seen == 0:
            raise RuntimeError("last completed day saw no traffic; cannot plan")
        curve = None
        if plan_curve and last.offered_trace and last.offered_cost > 0:
            curve = EmpiricalCurve.from_trace(
                last.offered_trace, last.n_seen, last.offered_cost
            )
        return DayPlan(
            base_budget=float(budget_fraction) * last.offered_cost,
            horizon=last.n_seen,
            target_curve=curve,
        )

    # ------------------------------------------------------------------
    # in-day delegation (so the pacer can stand in for a BudgetPacer)
    # ------------------------------------------------------------------
    def offer(self, score: float, cost: float) -> bool:
        """Delegate one arrival to the open day's pacer."""
        if self.current is None:
            raise RuntimeError("no open day — call start_day() first")
        return self.current.offer(score, cost)

    def observe_outcome(self, t: int, y_r: float, y_c: float) -> None:
        """Delegate outcome feedback to the open day's pacer."""
        if self.current is None:
            raise RuntimeError("no open day — call start_day() first")
        self.current.observe_outcome(t, y_r, y_c)

    # ------------------------------------------------------------------
    # campaign accounting
    # ------------------------------------------------------------------
    @property
    def n_days_completed(self) -> int:
        return len(self.ledger)

    @property
    def total_base_budget(self) -> float:
        """Sum of completed days' base allowances (the campaign plan)."""
        return float(sum(base for base, _b, _s, _c in self.ledger))

    @property
    def total_spent(self) -> float:
        """Realised spend across completed days.

        Always ``<= total_base_budget`` when ``carryover <= 1``
        (telescoping the carry recursion), strictly below whenever the
        final day left any residual.
        """
        return float(sum(spent for _base, _b, spent, _c in self.ledger))

"""Streaming budget pacing: admit users online without exhausting B early.

Offline, Algorithm 1 sees the whole day at once — it sorts by ROI and
spends down the budget.  Online, users arrive one at a time and a
naive "treat while budget remains" policy exhausts B in the first hour
on mediocre users.  :class:`BudgetPacer` solves the streaming version
of C-BTAP with an *adaptive admission threshold*:

1. every arrival's ``(score, cost)`` lands in a sliding window — a
   live sample of the day's traffic distribution;
2. the pacer periodically derives the per-event spend rate that keeps
   cumulative spend on a target pacing curve (uniform by default), and
3. locates, with the same bisection primitive as Algorithm 2
   (:func:`repro.core.roi_star.bisect_monotone`), the score threshold
   whose expected admitted cost over the window matches that rate.

When realised outcomes are fed back via :meth:`observe_outcome`, the
pacer additionally computes the break-even ``roi*`` of recent traffic
with :func:`repro.core.roi_star.binary_search_roi_star` and uses it as
a profitability floor under the pacing threshold — the paper's "treat
only when ROI clears roi*" rule, applied to the live stream.

Two invariants hold by construction: cumulative spend never exceeds
the budget, and never exceeds the pacing curve by more than
``curve_slack`` of the budget.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.core.roi_star import binary_search_roi_star, bisect_monotone

__all__ = ["BudgetPacer"]


def _uniform_curve(progress: float) -> float:
    """Default pacing target: spend linearly across the day."""
    return progress


class BudgetPacer:
    """Admit streaming users under a budget that must last the horizon.

    Parameters
    ----------
    budget:
        Total (expected-cost) budget B for the horizon.
    horizon:
        Expected number of arrivals; progress along the pacing curve is
        ``n_seen / horizon`` (capped at 1 — extra traffic spends
        whatever remains).
    window:
        Sliding-window length for the traffic sample.
    refresh_every:
        Re-derive the threshold every this many arrivals.
    lookahead:
        Events ahead used to convert the curve into a spend rate;
        smaller tracks the curve tighter, larger smooths noise.
    warmup:
        Arrivals before the first threshold fit; during warmup
        admission is purely curve-gated (score-blind), which buys the
        window an unbiased traffic sample.  The arrival that completes
        warmup triggers the fit and is the first to be threshold-gated.
        Capped at a quarter of the horizon so short days still engage
        the threshold.
    target_curve:
        Monotone callable ``progress ∈ [0,1] → fraction of B`` with
        ``curve(1) == 1``; default uniform.
    curve_slack:
        Admissions may run ahead of the curve by at most this fraction
        of B (absorbs cost granularity without losing pacing).
    use_roi_floor:
        Apply the ``roi*`` profitability floor when outcome feedback is
        available (see :meth:`observe_outcome`).
    min_arm_outcomes:
        Treated *and* control outcomes required in the feedback window
        before the floor activates.
    """

    def __init__(
        self,
        budget: float,
        horizon: int,
        *,
        window: int = 1024,
        refresh_every: int = 64,
        lookahead: int = 256,
        warmup: int = 128,
        target_curve: Callable[[float], float] | None = None,
        curve_slack: float = 0.05,
        use_roi_floor: bool = True,
        min_arm_outcomes: int = 20,
    ) -> None:
        if not budget >= 0:  # rejects NaN too
            raise ValueError(f"budget must be >= 0, got {budget}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        if not 0.0 <= curve_slack <= 1.0:
            raise ValueError(f"curve_slack must be in [0, 1], got {curve_slack}")
        self.budget = float(budget)
        self.horizon = int(horizon)
        self.window = int(window)
        self.refresh_every = int(refresh_every)
        self.lookahead = int(lookahead)
        self.warmup = min(int(warmup), max(2, horizon // 4))
        self.target_curve = target_curve if target_curve is not None else _uniform_curve
        self.curve_slack = float(curve_slack)
        self.use_roi_floor = bool(use_roi_floor)
        self.min_arm_outcomes = int(min_arm_outcomes)

        self._traffic: deque[tuple[float, float]] = deque(maxlen=self.window)
        self._outcomes: deque[tuple[int, float, float]] = deque(maxlen=self.window)
        self.n_seen = 0
        self.n_admitted = 0
        self.spent = 0.0
        self.threshold_ = 0.0
        self.roi_floor_ = 0.0
        self._last_refresh = -(10**9)
        # (n_seen, spent, threshold) at each refresh — the pacing trace
        self.history: list[tuple[int, float, float]] = []

    # ------------------------------------------------------------------
    # the admission decision
    # ------------------------------------------------------------------
    def offer(self, score: float, cost: float) -> bool:
        """Record one arrival and decide treat (True) / skip (False)."""
        score = float(score)
        cost = float(cost)
        if cost <= 0:
            raise ValueError(f"cost must be > 0 (Assumption 4), got {cost}")
        self.n_seen += 1
        self._traffic.append((score, cost))
        if (
            self.n_seen >= self.warmup
            and self.n_seen - self._last_refresh >= self.refresh_every
        ):
            self._refresh()

        progress = min(1.0, self.n_seen / self.horizon)
        curve_cap = self.budget * min(
            1.0, float(self.target_curve(progress)) + self.curve_slack
        )
        cap = min(self.budget, curve_cap)
        if self.spent + cost > cap:
            return False
        # same boundary as the _refresh trigger above: the arrival that
        # completes warmup fits the first threshold and is already
        # gated by it (a fresh fit must never be ignored)
        if self.n_seen >= self.warmup and score < self.threshold_:
            return False
        self.n_admitted += 1
        self.spent += cost
        return True

    def observe_outcome(self, t: int, y_r: float, y_c: float) -> None:
        """Feed back one realised outcome (treated flag, revenue, cost).

        Outcomes power the ``roi*`` profitability floor; without them
        the pacer paces spend but cannot tell whether spending is
        worthwhile at all.
        """
        self._outcomes.append((int(t), float(y_r), float(y_c)))

    # ------------------------------------------------------------------
    # threshold adaptation
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        self._last_refresh = self.n_seen
        traffic = np.asarray(self._traffic, dtype=float)
        scores, costs = traffic[:, 0], traffic[:, 1]

        progress = min(1.0, self.n_seen / self.horizon)
        ahead = min(1.0, (self.n_seen + self.lookahead) / self.horizon)
        events_ahead = max(1, int(round((ahead - progress) * self.horizon)))
        target_cum = self.budget * float(self.target_curve(ahead))
        rate = (target_cum - self.spent) / events_ahead

        if rate <= 0.0:
            # ahead of the curve: admit nothing until spend catches up
            self.threshold_ = float(np.max(scores)) + 1.0
        else:
            lo = float(np.min(scores)) - 1e-9
            hi = float(np.max(scores)) + 1e-9

            def pace_gap(thr: float) -> float:
                # relative gap (dimensionless so the bisection tolerance is
                # cost-scale independent); > 0 when admitting above ``thr``
                # spends slower than needed
                admitted = float(np.mean(np.where(scores >= thr, costs, 0.0)))
                return 1.0 - admitted / rate

            if pace_gap(lo) >= 0.0:
                self.threshold_ = lo  # even admitting everyone is too slow
            else:
                self.threshold_ = bisect_monotone(pace_gap, lo, hi, eps=1e-3)

        if self.use_roi_floor and self._outcomes:
            outcomes = np.asarray(self._outcomes, dtype=float)
            t, y_r, y_c = outcomes[:, 0], outcomes[:, 1], outcomes[:, 2]
            n1, n0 = int(np.sum(t == 1)), int(np.sum(t == 0))
            if n1 >= self.min_arm_outcomes and n0 >= self.min_arm_outcomes:
                # Assumption 4 guard: the bisection needs tau_c > 0 in the
                # window, else the derivative never crosses zero and the
                # floor degenerates to the search endpoint
                tau_c = float(y_c[t == 1].mean() - y_c[t == 0].mean())
                if tau_c > 0.0:
                    self.roi_floor_ = binary_search_roi_star(t, y_r, y_c)
                    self.threshold_ = max(self.threshold_, self.roi_floor_)
        self.history.append((self.n_seen, self.spent, self.threshold_))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def progress(self) -> float:
        """Fraction of the horizon consumed (capped at 1)."""
        return min(1.0, self.n_seen / self.horizon)

    @property
    def remaining(self) -> float:
        """Budget left to spend."""
        return max(0.0, self.budget - self.spent)

    @property
    def admit_rate(self) -> float:
        """Fraction of arrivals admitted so far."""
        return self.n_admitted / self.n_seen if self.n_seen else 0.0

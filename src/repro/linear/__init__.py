"""Linear-model substrate: ridge and logistic regression.

These serve as base learners for the meta-learner uplift baselines
(S-/T-/X-learner) and as propensity models.
"""

from repro.linear.logistic import LogisticRegression
from repro.linear.ridge import RidgeRegression

__all__ = ["LogisticRegression", "RidgeRegression"]

"""Closed-form ridge regression."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_2d, check_consistent_length

__all__ = ["RidgeRegression"]


class RidgeRegression:
    """L2-regularised least squares solved in closed form.

    Minimises ``||y - Xw - b||^2 + alpha ||w||^2`` (intercept not
    penalised).  Supports optional sample weights, which the X-learner
    uses for its propensity-weighted blending stage.

    Parameters
    ----------
    alpha:
        Regularisation strength (must be >= 0).
    fit_intercept:
        Whether to fit an unpenalised intercept (default True).
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)
        self.fit_intercept = bool(fit_intercept)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, x, y, sample_weight=None) -> "RidgeRegression":
        x = check_2d(x)
        y = check_1d(y)
        check_consistent_length(x, y, names=("X", "y"))
        n, d = x.shape
        if sample_weight is not None:
            w = check_1d(sample_weight, "sample_weight")
            check_consistent_length(x, w, names=("X", "sample_weight"))
            if np.any(w < 0) or np.sum(w) <= 0:
                raise ValueError("sample_weight must be non-negative with positive sum")
            sw = np.sqrt(w)
            xw = x * sw[:, None]
            yw = y * sw
        else:
            w = None
            xw = x
            yw = y

        if self.fit_intercept:
            if w is None:
                x_mean = x.mean(axis=0)
                y_mean = y.mean()
            else:
                x_mean = np.average(x, axis=0, weights=w)
                y_mean = np.average(y, weights=w)
            xc = xw - np.sqrt(w)[:, None] * x_mean if w is not None else x - x_mean
            yc = yw - np.sqrt(w) * y_mean if w is not None else y - y_mean
        else:
            x_mean = np.zeros(d)
            y_mean = 0.0
            xc = xw
            yc = yw

        gram = xc.T @ xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_) if self.fit_intercept else 0.0
        return self

    def predict(self, x) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("RidgeRegression is not fitted; call fit() first")
        x = check_2d(x)
        if x.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {x.shape[1]} features but the model was fitted with {self.coef_.shape[0]}"
            )
        return x @ self.coef_ + self.intercept_

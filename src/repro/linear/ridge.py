"""Closed-form ridge regression."""

from __future__ import annotations

import numpy as np

from repro.causal.base import TrainableModel
from repro.utils.validation import check_1d, check_2d, check_consistent_length

__all__ = ["RidgeRegression"]


class RidgeRegression(TrainableModel):
    """L2-regularised least squares solved in closed form.

    Minimises ``||y - Xw - b||^2 + alpha ||w||^2`` (intercept not
    penalised).  Supports optional sample weights, which the X-learner
    uses for its propensity-weighted blending stage.

    Parameters
    ----------
    alpha:
        Regularisation strength (must be >= 0).
    fit_intercept:
        Whether to fit an unpenalised intercept (default True).
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)
        self.fit_intercept = bool(fit_intercept)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        # warm-start sufficient statistics (see partial_fit)
        self._sxx: np.ndarray | None = None
        self._sxy: np.ndarray | None = None
        self._swx: np.ndarray | None = None
        self._sw: float = 0.0
        self._swy: float = 0.0

    def fit(self, x, y, sample_weight=None) -> "RidgeRegression":
        x = check_2d(x)
        y = check_1d(y)
        check_consistent_length(x, y, names=("X", "y"))
        n, d = x.shape
        if sample_weight is not None:
            w = check_1d(sample_weight, "sample_weight")
            check_consistent_length(x, w, names=("X", "sample_weight"))
            if np.any(w < 0) or np.sum(w) <= 0:
                raise ValueError("sample_weight must be non-negative with positive sum")
            sw = np.sqrt(w)
            xw = x * sw[:, None]
            yw = y * sw
        else:
            w = None
            xw = x
            yw = y

        if self.fit_intercept:
            if w is None:
                x_mean = x.mean(axis=0)
                y_mean = y.mean()
            else:
                x_mean = np.average(x, axis=0, weights=w)
                y_mean = np.average(y, weights=w)
            xc = xw - np.sqrt(w)[:, None] * x_mean if w is not None else x - x_mean
            yc = yw - np.sqrt(w) * y_mean if w is not None else y - y_mean
        else:
            x_mean = np.zeros(d)
            y_mean = 0.0
            xc = xw
            yc = yw

        gram = xc.T @ xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_) if self.fit_intercept else 0.0
        # a full fit supersedes any accumulated warm-start state
        self._sxx = self._sxy = self._swx = None
        self._sw = self._swy = 0.0
        return self

    def partial_fit(self, x, y, sample_weight=None) -> "RidgeRegression":
        """Warm-start incremental fit: fold a new batch into the solution.

        The closed-form ridge solution is a pure function of weighted
        sufficient statistics — ``Σ w x xᵀ``, ``Σ w x y``, ``Σ w x``,
        ``Σ w y``, ``Σ w`` — which add exactly across batches.  Each
        call folds one batch in (O(k·d²) for k new rows, independent of
        everything already seen) and re-solves the d×d system, so a
        retraining loop refits on a handful of fresh outcomes at a tiny
        fraction of a cold fit over the whole window.  The coefficients
        agree with a single :meth:`fit` on the concatenated batches up
        to floating-point rounding.

        The first call on a fresh (or freshly :meth:`fit`) model starts
        a new accumulation; :meth:`fit` always discards accumulated
        state and solves its own batch alone.
        """
        x = check_2d(x)
        y = check_1d(y)
        check_consistent_length(x, y, names=("X", "y"))
        n, d = x.shape
        if sample_weight is not None:
            w = check_1d(sample_weight, "sample_weight")
            check_consistent_length(x, w, names=("X", "sample_weight"))
            if np.any(w < 0):
                raise ValueError("sample_weight must be non-negative")
        else:
            w = np.ones(n)
        if self._sxx is None:
            self._sxx = np.zeros((d, d))
            self._sxy = np.zeros(d)
            self._swx = np.zeros(d)
            self._sw = 0.0
            self._swy = 0.0
        elif self._sxx.shape[0] != d:
            raise ValueError(
                f"X has {d} features but accumulated statistics have {self._sxx.shape[0]}"
            )
        xw = x * w[:, None]
        self._sxx += xw.T @ x
        self._sxy += xw.T @ y
        self._swx += xw.sum(axis=0)
        self._sw += float(w.sum())
        self._swy += float(w @ y)
        if self._sw <= 0:
            raise ValueError("sample_weight must have positive sum over the batches seen")

        if self.fit_intercept:
            x_mean = self._swx / self._sw
            y_mean = self._swy / self._sw
            gram = self._sxx - self._sw * np.outer(x_mean, x_mean) + self.alpha * np.eye(d)
            rhs = self._sxy - self._sw * x_mean * y_mean
        else:
            x_mean = np.zeros(d)
            y_mean = 0.0
            gram = self._sxx + self.alpha * np.eye(d)
            rhs = self._sxy
        self.coef_ = np.linalg.solve(gram, rhs)
        self.intercept_ = float(y_mean - x_mean @ self.coef_) if self.fit_intercept else 0.0
        return self

    def predict(self, x) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("RidgeRegression is not fitted; call fit() first")
        x = check_2d(x)
        if x.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {x.shape[1]} features but the model was fitted with {self.coef_.shape[0]}"
            )
        return x @ self.coef_ + self.intercept_

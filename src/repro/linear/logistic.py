"""Logistic regression fitted by iteratively reweighted least squares."""

from __future__ import annotations

import numpy as np

from repro.causal.base import TrainableModel
from repro.nn.activations import sigmoid
from repro.utils.validation import check_2d, check_binary, check_consistent_length

__all__ = ["LogisticRegression"]


class LogisticRegression(TrainableModel):
    """Binary logistic regression with L2 penalty, Newton/IRLS solver.

    Used as the propensity model in DragonNet-style diagnostics and as
    a base classifier for meta-learners on binary outcomes (conversion,
    visit, click — the outcome types of all three paper datasets).

    Parameters
    ----------
    alpha:
        L2 penalty on the coefficients (intercept unpenalised).
    max_iter, tol:
        IRLS stopping controls.
    warm_start:
        When True, :meth:`fit` initialises Newton from the previous
        fit's coefficients instead of zeros.  On a refit over data
        whose decision surface moved only a little — the streaming
        retraining case — the solver starts near the optimum and
        converges in a fraction of the cold iterations; the fixed
        point (and hence the solution, within ``tol``) is unchanged.
    """

    def __init__(
        self,
        alpha: float = 1e-4,
        max_iter: int = 100,
        tol: float = 1e-8,
        warm_start: bool = False,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        if max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {max_iter}")
        self.alpha = float(alpha)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.warm_start = bool(warm_start)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, x, y, sample_weight=None) -> "LogisticRegression":
        """Fit by weighted IRLS.

        ``sample_weight`` scales each row's likelihood contribution
        (matching :meth:`RidgeRegression.fit`): a weight-w row is
        exactly equivalent to that row replicated w times.
        """
        x = check_2d(x)
        y = check_binary(y, "y").astype(float)
        check_consistent_length(x, y, names=("X", "y"))
        n, d = x.shape
        if sample_weight is not None:
            sw = np.asarray(sample_weight, dtype=float).ravel()
            check_consistent_length(x, sw, names=("X", "sample_weight"))
            if np.any(sw < 0) or np.sum(sw) <= 0:
                raise ValueError("sample_weight must be non-negative with positive sum")
        else:
            sw = None
        xa = np.hstack([np.ones((n, 1)), x])  # column 0 = intercept
        if self.warm_start and self.coef_ is not None and self.coef_.shape[0] == d:
            beta = np.concatenate(([self.intercept_], self.coef_))
        else:
            beta = np.zeros(d + 1)
        penalty = self.alpha * np.eye(d + 1)
        penalty[0, 0] = 0.0  # never penalise the intercept
        for iteration in range(self.max_iter):
            z = xa @ beta
            p = sigmoid(z)
            w = np.maximum(p * (1.0 - p), 1e-10)
            if sw is not None:
                residual = sw * (p - y)
                w = sw * w
            else:
                residual = p - y
            grad = xa.T @ residual + penalty @ beta
            hess = (xa * w[:, None]).T @ xa + penalty
            try:
                delta = np.linalg.solve(hess, grad)
            except np.linalg.LinAlgError:
                delta = np.linalg.lstsq(hess, grad, rcond=None)[0]
            beta -= delta
            self.n_iter_ = iteration + 1
            if np.max(np.abs(delta)) < self.tol:
                break
        self.intercept_ = float(beta[0])
        self.coef_ = beta[1:]
        return self

    def decision_function(self, x) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LogisticRegression is not fitted; call fit() first")
        x = check_2d(x)
        if x.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {x.shape[1]} features but the model was fitted with {self.coef_.shape[0]}"
            )
        return x @ self.coef_ + self.intercept_

    def predict_proba(self, x) -> np.ndarray:
        """Probability of the positive class, shape ``(n,)``."""
        return sigmoid(self.decision_function(x))

    def predict(self, x) -> np.ndarray:
        """Hard 0/1 labels at the 0.5 threshold."""
        return (self.predict_proba(x) >= 0.5).astype(np.int64)

"""Legacy setup shim.

The grading environment is offline with setuptools 65 and no ``wheel``
package, so PEP-660 editable installs fail at ``bdist_wheel``.  This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517``
fall back to the classic develop-mode install.
"""

from setuptools import setup

setup()

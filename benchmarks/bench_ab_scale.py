"""A/B harness at production scale: 100k-user days, 1M-user days.

The pre-PR offline experiment path realised each arm separately: a
9-array ``subset`` copy per arm, then a ``realize_arm`` that validated
the treatment order with O(n) Python sets and drew full-cohort
Bernoulli outcomes per arm.  The batched path
(:meth:`Platform.realize_arms`) realises every arm of a day with one
cost draw, one reward draw over the treated union, and a searchsorted
spend-down per arm — no cohort copies, no Python-object churn.

Three measurements:

* **realisation stage** — the code this PR replaced, on identical
  partitions/orders/budgets of the same 100k-user cohort.  This is the
  ≥10x claim (the frozen pre-PR implementation is inlined below, with
  its *old* budget-boundary semantics, so the comparison is
  apples-to-apples with what actually shipped).
* **full day evaluation** — partition + score + realise, old loop vs
  :meth:`ABTest.run_day`, cohort generation excluded (both paths share
  the simulator's generation physics).
* **1M-user day end-to-end** — ``ABTest.run(1, 1_000_000)`` through
  chunked cohort generation; the pre-PR path materialised oversample
  pools several times the cohort, the chunked path bounds peak memory
  to ~one chunk + the cohort.
"""

from __future__ import annotations

import time

import numpy as np

from _harness import print_header
from repro.ab.experiment import RANDOM_ARM, ABTest
from repro.ab.platform import Platform

N_DAY = 100_000
N_MILLION = 1_000_000
BUDGET_FRACTION = 0.3
REPEATS = 15


def _policies():
    rng = np.random.default_rng(11)
    w_a, w_b = rng.normal(size=12) * 0.1, rng.normal(size=12) * 0.1
    return {"a": lambda x: x @ w_a, "b": lambda x: x @ w_b}


# ---------------------------------------------------------------------------
# the frozen pre-PR implementation (verbatim semantics, incl. the
# budget-boundary bug this PR fixed: the crossing draw was treated)
# ---------------------------------------------------------------------------
def _prepr_realize_arm(platform, cohort, treat_order, budget):
    n = cohort.n
    order = np.asarray(treat_order, dtype=np.int64).ravel()
    if order.shape[0] != n or set(order.tolist()) != set(range(n)):
        raise ValueError("treat_order must be a permutation of the cohort indices")
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    cost_draw = (platform._rng.random(n) < cohort.tau_c).astype(float)
    reward_draw = (platform._rng.random(n) < cohort.tau_r).astype(float)
    costs_in_order = cost_draw[order]
    cumulative = np.cumsum(costs_in_order)
    exhausted = np.nonzero(cumulative >= budget)[0]
    n_treated = int(exhausted[0]) + 1 if exhausted.size else n
    treated_idx = order[:n_treated]
    spend = float(cumulative[n_treated - 1]) if n_treated > 0 else 0.0
    incremental = float(np.sum(reward_draw[treated_idx]))
    baseline = float(n * platform.base_revenue_rate)
    return {
        "revenue": baseline + incremental,
        "baseline_revenue": baseline,
        "incremental_revenue": incremental,
        "spend": spend,
        "n_treated": n_treated,
    }


def _prepr_run_day(platform, cohort, policies, rng):
    """The pre-PR ABTest.run day body (per-arm subsets + realize_arm)."""
    arms = list(policies) + [RANDOM_ARM]
    per_arm = cohort.n // len(arms)
    perm = rng.permutation(cohort.n)
    out = {}
    for a, arm in enumerate(arms):
        idx = perm[a * per_arm : (a + 1) * per_arm]
        group = cohort.subset(idx)
        budget = BUDGET_FRACTION * float(np.sum(group.tau_c))
        if arm == RANDOM_ARM:
            order = rng.permutation(group.n)
        else:
            scores = np.asarray(policies[arm](group.x), dtype=float).ravel()
            order = np.argsort(-scores, kind="stable")
        out[arm] = _prepr_realize_arm(platform, group, order, budget)
    return out


def _time(fn, repeats=REPEATS):
    fn()  # warm-up
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def test_realisation_stage_10x(benchmark) -> None:
    """Batched realize_arms >= 10x the pre-PR per-arm realisation."""
    platform = Platform(dataset="criteo", random_state=0)
    cohort = platform.daily_cohort(N_DAY, day=1)
    rng = np.random.default_rng(0)
    n_arms = 3
    perm = rng.permutation(cohort.n)
    groups = np.array_split(perm, n_arms)
    local_orders = [rng.permutation(len(g)) for g in groups]
    budgets = [BUDGET_FRACTION * float(np.sum(cohort.tau_c[g])) for g in groups]
    global_orders = [g[lo] for g, lo in zip(groups, local_orders)]

    def old_stage():
        return [
            _prepr_realize_arm(platform, cohort.subset(g), lo, b)
            for g, lo, b in zip(groups, local_orders, budgets)
        ]

    def new_stage():
        return platform.realize_arms(cohort, global_orders, budgets)

    t_old = _time(old_stage)
    t_new = benchmark.pedantic(lambda: (new_stage(), _time(new_stage))[1], rounds=1, iterations=1)
    speedup = t_old / t_new

    print_header(f"A/B realisation stage — {N_DAY:,}-user day, {n_arms} arms")
    print(f"  pre-PR (per-arm subset + realize_arm): {t_old * 1e3:8.2f} ms")
    print(f"  batched realize_arms:                  {t_new * 1e3:8.2f} ms")
    print(f"  speedup: {speedup:.1f}x  (>= 10x required)")

    # same partitions, same budgets: outcomes must agree structurally
    for out, budget in zip(new_stage(), budgets):
        assert out["spend"] <= budget
    assert speedup >= 10.0


def test_full_day_evaluation(benchmark) -> None:
    """Partition + score + realise, old loop vs ABTest.run_day."""
    platform = Platform(dataset="criteo", random_state=0)
    cohort = platform.daily_cohort(N_DAY, day=1)
    policies = _policies()
    ab = ABTest(platform, policies, budget_fraction=BUDGET_FRACTION, random_state=0)
    rng = np.random.default_rng(0)

    t_old = _time(lambda: _prepr_run_day(platform, cohort, policies, rng))
    t_new = benchmark.pedantic(
        lambda: _time(lambda: ab.run_day(cohort, day=1)), rounds=1, iterations=1
    )
    speedup = t_old / t_new

    print_header(f"A/B full-day evaluation — {N_DAY:,}-user day (cohort gen excluded)")
    print(f"  pre-PR day loop:  {t_old * 1e3:8.2f} ms")
    print(f"  ABTest.run_day:   {t_new * 1e3:8.2f} ms")
    print(f"  speedup: {speedup:.1f}x")
    assert speedup >= 2.0


def test_million_user_day_end_to_end(benchmark) -> None:
    """A 1M-user day completes through chunked cohort generation."""
    platform = Platform(dataset="criteo", random_state=0)
    ab = ABTest(platform, _policies(), budget_fraction=BUDGET_FRACTION, random_state=0)

    def run():
        t0 = time.perf_counter()
        result = ab.run(n_days=1, cohort_size=N_MILLION)
        return result, time.perf_counter() - t0

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    day = result.days[0]
    n_treated = sum(day.n_treated.values())

    print_header(f"A/B 1M-user day — end-to-end (chunked generation + batched realisation)")
    print(f"  wall time:  {elapsed:6.2f} s   ({N_MILLION / elapsed:,.0f} users/s)")
    print(f"  treated:    {n_treated:,} users, spend {sum(day.spend.values()):,.0f}")
    assert set(day.revenue) == {"a", "b", RANDOM_ARM}
    assert n_treated > 0
    assert elapsed < 60.0

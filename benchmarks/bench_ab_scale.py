"""A/B harness at production scale: 100k-user days, 1M-user days.

The pre-PR offline experiment path realised each arm separately: a
9-array ``subset`` copy per arm, then a ``realize_arm`` that validated
the treatment order with O(n) Python sets and drew full-cohort
Bernoulli outcomes per arm.  The batched path
(:meth:`Platform.realize_arms`) realises every arm of a day with one
cost draw, one reward draw over the treated union, and a searchsorted
spend-down per arm — no cohort copies, no Python-object churn.

Three measurements:

* **realisation stage** — the code this PR replaced, on identical
  partitions/orders/budgets of the same 100k-user cohort.  This is the
  ≥10x claim (the frozen pre-PR implementation is inlined below, with
  its *old* budget-boundary semantics, so the comparison is
  apples-to-apples with what actually shipped).
* **full day evaluation** — partition + score + realise, old loop vs
  :meth:`ABTest.run_day`, cohort generation excluded (both paths share
  the simulator's generation physics).
* **1M-user day end-to-end** — ``ABTest.run(1, 1_000_000)`` through
  chunked cohort generation; the pre-PR path materialised oversample
  pools several times the cohort, the chunked path bounds peak memory
  to ~one chunk + the cohort.
* **parallel cohort generation** — the same chunked generation fanned
  out across a ``concurrent.futures`` process pool: bit-identical
  cohort, target >= 3x wall-time on 4 workers (asserted only on
  machines that actually have >= 4 CPUs).
* **3-policy CRN replay** — ``PolicyReplay`` shares one cohort and one
  outcome-draw tensor across all policy sets, so comparing three
  policies costs about one generation instead of three.

``--smoke`` shrinks every size to run in seconds and drops the
wall-clock assertions (structure is still checked) so CI can execute
this script on every push.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _harness import print_header, record_result
from repro.ab.experiment import RANDOM_ARM, ABTest
from repro.ab.platform import Platform
from repro.ab.replay import PolicyReplay
from repro.runtime import ProcessBackend

N_DAY = 100_000
N_MILLION = 1_000_000
BUDGET_FRACTION = 0.3
REPEATS = 15

SMOKE_N_DAY = 5_000
SMOKE_N_MILLION = 20_000
SMOKE_REPEATS = 2

#: metrics stashed test-by-test, recorded to the BENCH_ab_scale.json
#: trajectory by the last test in the file (one run per bench invocation)
_TRAJECTORY: dict[str, dict] = {}


def _policies():
    rng = np.random.default_rng(11)
    w_a, w_b = rng.normal(size=12) * 0.1, rng.normal(size=12) * 0.1
    return {"a": lambda x: x @ w_a, "b": lambda x: x @ w_b}


# ---------------------------------------------------------------------------
# the frozen pre-PR implementation (verbatim semantics, incl. the
# budget-boundary bug this PR fixed: the crossing draw was treated)
# ---------------------------------------------------------------------------
def _prepr_realize_arm(platform, cohort, treat_order, budget):
    n = cohort.n
    order = np.asarray(treat_order, dtype=np.int64).ravel()
    if order.shape[0] != n or set(order.tolist()) != set(range(n)):
        raise ValueError("treat_order must be a permutation of the cohort indices")
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    cost_draw = (platform._rng.random(n) < cohort.tau_c).astype(float)
    reward_draw = (platform._rng.random(n) < cohort.tau_r).astype(float)
    costs_in_order = cost_draw[order]
    cumulative = np.cumsum(costs_in_order)
    exhausted = np.nonzero(cumulative >= budget)[0]
    n_treated = int(exhausted[0]) + 1 if exhausted.size else n
    treated_idx = order[:n_treated]
    spend = float(cumulative[n_treated - 1]) if n_treated > 0 else 0.0
    incremental = float(np.sum(reward_draw[treated_idx]))
    baseline = float(n * platform.base_revenue_rate)
    return {
        "revenue": baseline + incremental,
        "baseline_revenue": baseline,
        "incremental_revenue": incremental,
        "spend": spend,
        "n_treated": n_treated,
    }


def _prepr_run_day(platform, cohort, policies, rng):
    """The pre-PR ABTest.run day body (per-arm subsets + realize_arm)."""
    arms = list(policies) + [RANDOM_ARM]
    per_arm = cohort.n // len(arms)
    perm = rng.permutation(cohort.n)
    out = {}
    for a, arm in enumerate(arms):
        idx = perm[a * per_arm : (a + 1) * per_arm]
        group = cohort.subset(idx)
        budget = BUDGET_FRACTION * float(np.sum(group.tau_c))
        if arm == RANDOM_ARM:
            order = rng.permutation(group.n)
        else:
            scores = np.asarray(policies[arm](group.x), dtype=float).ravel()
            order = np.argsort(-scores, kind="stable")
        out[arm] = _prepr_realize_arm(platform, group, order, budget)
    return out


def _time(fn, repeats=REPEATS):
    fn()  # warm-up
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(np.median(samples))


def test_realisation_stage_10x(benchmark, smoke) -> None:
    """Batched realize_arms >= 10x the pre-PR per-arm realisation."""
    n_day = SMOKE_N_DAY if smoke else N_DAY
    repeats = SMOKE_REPEATS if smoke else REPEATS
    platform = Platform(dataset="criteo", random_state=0)
    cohort = platform.daily_cohort(n_day, day=1)
    rng = np.random.default_rng(0)
    n_arms = 3
    perm = rng.permutation(cohort.n)
    groups = np.array_split(perm, n_arms)
    local_orders = [rng.permutation(len(g)) for g in groups]
    budgets = [BUDGET_FRACTION * float(np.sum(cohort.tau_c[g])) for g in groups]
    global_orders = [g[lo] for g, lo in zip(groups, local_orders)]

    def old_stage():
        return [
            _prepr_realize_arm(platform, cohort.subset(g), lo, b)
            for g, lo, b in zip(groups, local_orders, budgets)
        ]

    def new_stage():
        return platform.realize_arms(cohort, global_orders, budgets)

    t_old = _time(old_stage, repeats)
    t_new = benchmark.pedantic(
        lambda: (new_stage(), _time(new_stage, repeats))[1], rounds=1, iterations=1
    )
    speedup = t_old / t_new

    print_header(f"A/B realisation stage — {n_day:,}-user day, {n_arms} arms")
    print(f"  pre-PR (per-arm subset + realize_arm): {t_old * 1e3:8.2f} ms")
    print(f"  batched realize_arms:                  {t_new * 1e3:8.2f} ms")
    print(f"  speedup: {speedup:.1f}x  (>= 10x required)")

    # same partitions, same budgets: outcomes must agree structurally
    for out, budget in zip(new_stage(), budgets):
        assert out["spend"] <= budget
    if not smoke:
        assert speedup >= 10.0

    # same-machine ratio; the wide band still catches the batched path
    # collapsing back to per-arm speed (~1x)
    _TRAJECTORY["realisation_speedup"] = {
        "value": speedup, "unit": "x", "direction": "higher",
        "gated": not smoke, "tolerance": 0.6,
    }


def test_full_day_evaluation(benchmark, smoke) -> None:
    """Partition + score + realise, old loop vs ABTest.run_day."""
    n_day = SMOKE_N_DAY if smoke else N_DAY
    repeats = SMOKE_REPEATS if smoke else REPEATS
    platform = Platform(dataset="criteo", random_state=0)
    cohort = platform.daily_cohort(n_day, day=1)
    policies = _policies()
    ab = ABTest(platform, policies, budget_fraction=BUDGET_FRACTION, random_state=0)
    rng = np.random.default_rng(0)

    t_old = _time(lambda: _prepr_run_day(platform, cohort, policies, rng), repeats)
    t_new = benchmark.pedantic(
        lambda: _time(lambda: ab.run_day(cohort, day=1), repeats), rounds=1, iterations=1
    )
    speedup = t_old / t_new

    print_header(f"A/B full-day evaluation — {n_day:,}-user day (cohort gen excluded)")
    print(f"  pre-PR day loop:  {t_old * 1e3:8.2f} ms")
    print(f"  ABTest.run_day:   {t_new * 1e3:8.2f} ms")
    print(f"  speedup: {speedup:.1f}x")
    if not smoke:
        assert speedup >= 2.0

    _TRAJECTORY["full_day_speedup"] = {
        "value": speedup, "unit": "x", "direction": "higher",
        "gated": not smoke, "tolerance": 0.6,
    }


def test_million_user_day_end_to_end(benchmark, smoke) -> None:
    """A 1M-user day completes through chunked cohort generation."""
    n_users = SMOKE_N_MILLION if smoke else N_MILLION
    chunk_size = 5_000 if smoke else 200_000  # smoke still exercises chunking
    platform = Platform(dataset="criteo", chunk_size=chunk_size, random_state=0)
    ab = ABTest(platform, _policies(), budget_fraction=BUDGET_FRACTION, random_state=0)

    def run():
        t0 = time.perf_counter()
        result = ab.run(n_days=1, cohort_size=n_users)
        return result, time.perf_counter() - t0

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    day = result.days[0]
    n_treated = sum(day.n_treated.values())

    print_header("A/B 1M-user day — end-to-end (chunked generation + batched realisation)")
    print(f"  wall time:  {elapsed:6.2f} s   ({n_users / elapsed:,.0f} users/s)")
    print(f"  treated:    {n_treated:,} users, spend {sum(day.spend.values()):,.0f}")
    assert set(day.revenue) == {"a", "b", RANDOM_ARM}
    assert n_treated > 0
    if not smoke:
        assert elapsed < 60.0

    _TRAJECTORY["million_day_users_per_s"] = {
        "value": n_users / elapsed, "unit": "users/s",
    }


def test_parallel_cohort_generation(benchmark, smoke) -> None:
    """Chunked generation on a 4-worker pool: bit-identical, target >= 3x.

    Generation is ~80% of a serial million-user day, so this is the
    lever that moves end-to-end wall time.  The speedup bar is only
    asserted where it is physically possible (>= 4 CPUs); the
    bit-identity contract is asserted everywhere.
    """
    n_users = SMOKE_N_MILLION if smoke else N_MILLION
    chunk_size = 5_000 if smoke else 125_000
    n_workers = 4
    serial = Platform(dataset="criteo", chunk_size=chunk_size, random_state=0)
    pooled = Platform(dataset="criteo", chunk_size=chunk_size, random_state=0)

    t_serial = _time(
        lambda: serial.daily_cohort(n_users, day=1), SMOKE_REPEATS if smoke else 3
    )
    with ProcessBackend(n_workers) as backend:
        t_parallel = benchmark.pedantic(
            lambda: _time(
                lambda: pooled.daily_cohort(n_users, day=1, backend=backend),
                SMOKE_REPEATS if smoke else 3,
            ),
            rounds=1,
            iterations=1,
        )
        speedup = t_serial / t_parallel

        cohort_serial = serial.daily_cohort(n_users, day=1)
        cohort_parallel = pooled.daily_cohort(n_users, day=1, backend=backend)
    assert np.array_equal(cohort_serial.x, cohort_parallel.x)
    assert np.array_equal(cohort_serial.tau_c, cohort_parallel.tau_c)

    cpus = os.cpu_count() or 1
    print_header(f"parallel cohort generation — {n_users:,} users, {n_workers} workers")
    print(f"  serial:    {t_serial:6.2f} s")
    print(f"  parallel:  {t_parallel:6.2f} s")
    print(f"  speedup:   {speedup:.2f}x on a {cpus}-CPU machine (target >= 3x on >= 4 CPUs)")
    if not smoke and cpus >= n_workers:
        assert speedup >= 3.0

    # CPU-count-bound: a 1-core runner honestly records < 1x, so ungated
    _TRAJECTORY["parallel_generation_speedup"] = {
        "value": speedup, "unit": "x", "direction": "higher",
    }


def test_three_policy_replay_costs_one_generation(benchmark, smoke) -> None:
    """PolicyReplay shares one cohort + one outcome tensor across sets.

    Three independent ABTest runs pay for three cohort generations; a
    three-set replay pays for one plus two extra (cheap) scoring and
    realisation passes, so its wall time must land well under the
    independent total even single-threaded.
    """
    n_users = SMOKE_N_MILLION if smoke else 300_000
    policies = _policies()
    sets = {
        "a": {"m": policies["a"]},
        "b": {"m": policies["b"]},
        "const": {"m": lambda x: np.ones(x.shape[0])},
    }

    def replay_once():
        return PolicyReplay(
            Platform(dataset="criteo", random_state=0),
            sets,
            budget_fraction=BUDGET_FRACTION,
            random_state=0,
        ).run(n_days=1, cohort_size=n_users)

    def independent_once():
        return [
            ABTest(
                Platform(dataset="criteo", random_state=0),
                set_policies,
                budget_fraction=BUDGET_FRACTION,
                random_state=0,
            ).run(n_days=1, cohort_size=n_users)
            for set_policies in sets.values()
        ]

    repeats = SMOKE_REPEATS if smoke else 3
    t_independent = _time(independent_once, repeats)
    t_replay = benchmark.pedantic(
        lambda: _time(replay_once, repeats), rounds=1, iterations=1
    )

    result = replay_once()
    assert result.set_names == ["a", "b", "const"]

    print_header(f"3-policy CRN replay vs 3 independent runs — {n_users:,}-user day")
    print(f"  3 independent ABTest runs: {t_independent * 1e3:8.1f} ms")
    print(f"  3-set PolicyReplay:        {t_replay * 1e3:8.1f} ms")
    print(f"  ratio: {t_replay / t_independent:.2f}x (one generation instead of three)")
    if not smoke:
        assert t_replay < 0.65 * t_independent

    metrics = dict(_TRAJECTORY)
    metrics["replay_over_independent_ratio"] = {
        "value": t_replay / t_independent, "unit": "x", "direction": "lower",
        "gated": not smoke, "tolerance": 0.5,
    }
    record_result("ab_scale", metrics, smoke=smoke)
    _TRAJECTORY.clear()

"""Shared experiment harness for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at a
scaled-down size (the real corpora are 5M–13.9M rows; the analogs run
thousands).  Expensive artifacts — setting splits and fitted models —
are cached per ``(dataset, setting)`` cell so Table II / Fig. 5 reuse
Table I's models instead of retraining.

Absolute AUCC values will not match the paper (different substrate);
what the benches check and print is the *shape*: method ordering,
setting ordering, and the rDRP-vs-DRP deltas.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.causal.tpm import TPM_VARIANTS, make_tpm
from repro.core.calibration import combine_point_and_std
from repro.core.direct_rank import DirectRank
from repro.core.rdrp import RobustDRP
from repro.data.settings import SETTING_NAMES, SettingData, make_setting
from repro.metrics.aucc import aucc

# ---------------------------------------------------------------------------
# scaled-down experiment configuration
# ---------------------------------------------------------------------------
N_SUFFICIENT = 9000
SEED = 0
DRP_PARAMS = dict(hidden=48, epochs=80, n_restarts=2)
MC_SAMPLES = 20
DATASETS = ("criteo", "meituan", "alibaba")

_setting_cache: dict[tuple[str, str], SettingData] = {}
_model_cache: dict[tuple[str, str, str], object] = {}


def get_setting(dataset: str, setting: str) -> SettingData:
    """Cached train/calibration/test triple for one Table-I cell."""
    key = (dataset, setting)
    if key not in _setting_cache:
        _setting_cache[key] = make_setting(
            dataset, setting, n_sufficient=N_SUFFICIENT, random_state=SEED
        )
    return _setting_cache[key]


def get_rdrp(dataset: str, setting: str) -> RobustDRP:
    """Cached fitted+calibrated rDRP (its ``.drp`` is the DRP arm)."""
    key = (dataset, setting, "rdrp")
    if key not in _model_cache:
        data = get_setting(dataset, setting)
        model = RobustDRP(random_state=SEED, mc_samples=MC_SAMPLES, **DRP_PARAMS)
        model.fit(data.train.x, data.train.t, data.train.y_r, data.train.y_c)
        model.calibrate(
            data.calibration.x,
            data.calibration.t,
            data.calibration.y_r,
            data.calibration.y_c,
        )
        _model_cache[key] = model
    return _model_cache[key]


def get_dr(dataset: str, setting: str) -> DirectRank:
    """Cached fitted Direct Rank baseline."""
    key = (dataset, setting, "dr")
    if key not in _model_cache:
        data = get_setting(dataset, setting)
        model = DirectRank(hidden=48, epochs=60, random_state=SEED)
        model.fit(data.train.x, data.train.t, data.train.y_r, data.train.y_c)
        _model_cache[key] = model
    return _model_cache[key]


def evaluate(roi_pred: np.ndarray, data: SettingData) -> float:
    """Test-set AUCC of a ranking."""
    te = data.test
    return aucc(roi_pred, te.t, te.y_r, te.y_c)


# ---------------------------------------------------------------------------
# the ten Table-I methods
# ---------------------------------------------------------------------------
def run_tpm_variant(variant: str, dataset: str, setting: str) -> float:
    data = get_setting(dataset, setting)
    tr = data.train
    tpm = make_tpm(variant, random_state=SEED, fast=True)
    tpm.fit(tr.x, tr.y_r, tr.y_c, tr.t)
    return evaluate(tpm.predict_roi(data.test.x), data)


def run_dr(dataset: str, setting: str) -> float:
    data = get_setting(dataset, setting)
    return evaluate(get_dr(dataset, setting).predict_roi(data.test.x), data)


def run_drp(dataset: str, setting: str) -> float:
    data = get_setting(dataset, setting)
    return evaluate(get_rdrp(dataset, setting).drp.predict_roi(data.test.x), data)


def run_rdrp(dataset: str, setting: str) -> float:
    data = get_setting(dataset, setting)
    return evaluate(get_rdrp(dataset, setting).predict_roi(data.test.x), data)


# ---------------------------------------------------------------------------
# Table II ablation arms
# ---------------------------------------------------------------------------
def run_dr_mc(dataset: str, setting: str) -> float:
    """DR w/ MC: MC-dropout model averaging of the DR scores."""
    data = get_setting(dataset, setting)
    mean, std = get_dr(dataset, setting).predict_roi_mc(
        data.test.x, n_samples=MC_SAMPLES
    )
    return evaluate(combine_point_and_std(mean, std, how="mean"), data)


def run_drp_mc(dataset: str, setting: str) -> float:
    """DRP w/ MC: MC-dropout model averaging of the DRP ROI estimates."""
    data = get_setting(dataset, setting)
    mean, std = get_rdrp(dataset, setting).drp.predict_roi_mc(
        data.test.x, n_samples=MC_SAMPLES
    )
    return evaluate(combine_point_and_std(mean, std, how="mean"), data)


def run_drp_mc_cp(dataset: str, setting: str) -> float:
    """DRP w/ MC w/ CP == rDRP (Table II's full method)."""
    return run_rdrp(dataset, setting)


TABLE1_METHODS = tuple(f"TPM-{v}" for v in TPM_VARIANTS) + ("DR", "DRP", "rDRP")


def run_table1_method(method: str, dataset: str, setting: str) -> float:
    if method.startswith("TPM-"):
        return run_tpm_variant(method[4:], dataset, setting)
    if method == "DR":
        return run_dr(dataset, setting)
    if method == "DRP":
        return run_drp(dataset, setting)
    if method == "rDRP":
        return run_rdrp(dataset, setting)
    raise ValueError(f"Unknown Table-I method {method!r}")


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


__all__ = [
    "DATASETS",
    "MC_SAMPLES",
    "SETTING_NAMES",
    "TABLE1_METHODS",
    "evaluate",
    "get_dr",
    "get_rdrp",
    "get_setting",
    "print_header",
    "run_dr",
    "run_dr_mc",
    "run_drp",
    "run_drp_mc",
    "run_drp_mc_cp",
    "run_rdrp",
    "run_table1_method",
    "run_tpm_variant",
]

"""Shared experiment harness for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at a
scaled-down size (the real corpora are 5M–13.9M rows; the analogs run
thousands).  Expensive artifacts — setting splits and fitted models —
are cached per ``(dataset, setting)`` cell so Table II / Fig. 5 reuse
Table I's models instead of retraining.

Absolute AUCC values will not match the paper (different substrate);
what the benches check and print is the *shape*: method ordering,
setting ordering, and the rDRP-vs-DRP deltas.  See EXPERIMENTS.md.

The harness is itself instrumented: both artifact caches are bounded
LRU :class:`BenchCache`\\ s counting hits/misses/evictions into
:data:`BENCH_METRICS`, and :func:`record_result` appends a run to the
committed ``BENCH_<area>.json`` trajectory (opt-in: set
``REPRO_BENCH_RECORD=1`` to write at the repo root, or
``REPRO_BENCH_DIR=<dir>`` to write elsewhere, as CI does).
"""

from __future__ import annotations

import cProfile
import os
import pstats
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.causal.tpm import TPM_VARIANTS, make_tpm
from repro.core.calibration import combine_point_and_std
from repro.core.direct_rank import DirectRank
from repro.core.rdrp import RobustDRP
from repro.data.settings import SETTING_NAMES, SettingData, make_setting
from repro.metrics.aucc import aucc
from repro.obs import MetricsRegistry
from repro.obs.trajectory import append_run, bench_path

# ---------------------------------------------------------------------------
# scaled-down experiment configuration
# ---------------------------------------------------------------------------
N_SUFFICIENT = 9000
SEED = 0
DRP_PARAMS = dict(hidden=48, epochs=80, n_restarts=2)
MC_SAMPLES = 20
DATASETS = ("criteo", "meituan", "alibaba")

#: one registry shared by every bench process-wide (cache counters,
#: plus whatever the bench itself adopts into it)
BENCH_METRICS = MetricsRegistry()


class BenchCache:
    """A bounded LRU mapping with hit/miss/eviction counters.

    The harness used to keep plain module-level dicts: fine for one
    bench, unbounded for a long bench session that walks every
    ``(dataset, setting, model)`` cell.  ``maxsize`` bounds the resident
    artifacts (LRU eviction); the counters land in
    :data:`BENCH_METRICS` as ``bench.cache.<name>.{hits,misses,
    evictions}`` and a ``bench.cache.<name>.size`` gauge.
    """

    def __init__(self, name: str, maxsize: int = 32, metrics: MetricsRegistry | None = None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self.metrics = metrics if metrics is not None else BENCH_METRICS
        self._data: OrderedDict = OrderedDict()
        self._c_hits = self.metrics.counter(f"bench.cache.{name}.hits")
        self._c_misses = self.metrics.counter(f"bench.cache.{name}.misses")
        self._c_evictions = self.metrics.counter(f"bench.cache.{name}.evictions")
        self._g_size = self.metrics.gauge(f"bench.cache.{name}.size")

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get_or_build(self, key, build):
        """Return the cached value, building (and possibly evicting) on miss."""
        if key in self._data:
            self._data.move_to_end(key)
            self._c_hits.inc()
            return self._data[key]
        self._c_misses.inc()
        value = self._data[key] = build()
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self._c_evictions.inc()
        self._g_size.set(len(self._data))
        return value

    def clear(self) -> None:
        """Drop every cached artifact (counters keep their totals)."""
        self._data.clear()
        self._g_size.set(0)


_setting_cache = BenchCache("settings", maxsize=24)
_model_cache = BenchCache("models", maxsize=48)


def clear_caches() -> None:
    """Release every cached setting and model (e.g. between bench areas)."""
    _setting_cache.clear()
    _model_cache.clear()


def get_setting(dataset: str, setting: str) -> SettingData:
    """Cached train/calibration/test triple for one Table-I cell."""
    return _setting_cache.get_or_build(
        (dataset, setting),
        lambda: make_setting(
            dataset, setting, n_sufficient=N_SUFFICIENT, random_state=SEED
        ),
    )


def get_rdrp(dataset: str, setting: str) -> RobustDRP:
    """Cached fitted+calibrated rDRP (its ``.drp`` is the DRP arm)."""

    def build() -> RobustDRP:
        data = get_setting(dataset, setting)
        model = RobustDRP(random_state=SEED, mc_samples=MC_SAMPLES, **DRP_PARAMS)
        model.fit(data.train.x, data.train.t, data.train.y_r, data.train.y_c)
        model.calibrate(
            data.calibration.x,
            data.calibration.t,
            data.calibration.y_r,
            data.calibration.y_c,
        )
        return model

    return _model_cache.get_or_build((dataset, setting, "rdrp"), build)


def get_dr(dataset: str, setting: str) -> DirectRank:
    """Cached fitted Direct Rank baseline."""

    def build() -> DirectRank:
        data = get_setting(dataset, setting)
        model = DirectRank(hidden=48, epochs=60, random_state=SEED)
        model.fit(data.train.x, data.train.t, data.train.y_r, data.train.y_c)
        return model

    return _model_cache.get_or_build((dataset, setting, "dr"), build)


def evaluate(roi_pred: np.ndarray, data: SettingData) -> float:
    """Test-set AUCC of a ranking."""
    te = data.test
    return aucc(roi_pred, te.t, te.y_r, te.y_c)


# ---------------------------------------------------------------------------
# the ten Table-I methods
# ---------------------------------------------------------------------------
def run_tpm_variant(variant: str, dataset: str, setting: str) -> float:
    data = get_setting(dataset, setting)
    tr = data.train
    tpm = make_tpm(variant, random_state=SEED, fast=True)
    tpm.fit(tr.x, tr.y_r, tr.y_c, tr.t)
    return evaluate(tpm.predict_roi(data.test.x), data)


def run_dr(dataset: str, setting: str) -> float:
    data = get_setting(dataset, setting)
    return evaluate(get_dr(dataset, setting).predict_roi(data.test.x), data)


def run_drp(dataset: str, setting: str) -> float:
    data = get_setting(dataset, setting)
    return evaluate(get_rdrp(dataset, setting).drp.predict_roi(data.test.x), data)


def run_rdrp(dataset: str, setting: str) -> float:
    data = get_setting(dataset, setting)
    return evaluate(get_rdrp(dataset, setting).predict_roi(data.test.x), data)


# ---------------------------------------------------------------------------
# Table II ablation arms
# ---------------------------------------------------------------------------
def run_dr_mc(dataset: str, setting: str) -> float:
    """DR w/ MC: MC-dropout model averaging of the DR scores."""
    data = get_setting(dataset, setting)
    mean, std = get_dr(dataset, setting).predict_roi_mc(
        data.test.x, n_samples=MC_SAMPLES
    )
    return evaluate(combine_point_and_std(mean, std, how="mean"), data)


def run_drp_mc(dataset: str, setting: str) -> float:
    """DRP w/ MC: MC-dropout model averaging of the DRP ROI estimates."""
    data = get_setting(dataset, setting)
    mean, std = get_rdrp(dataset, setting).drp.predict_roi_mc(
        data.test.x, n_samples=MC_SAMPLES
    )
    return evaluate(combine_point_and_std(mean, std, how="mean"), data)


def run_drp_mc_cp(dataset: str, setting: str) -> float:
    """DRP w/ MC w/ CP == rDRP (Table II's full method)."""
    return run_rdrp(dataset, setting)


TABLE1_METHODS = tuple(f"TPM-{v}" for v in TPM_VARIANTS) + ("DR", "DRP", "rDRP")


def run_table1_method(method: str, dataset: str, setting: str) -> float:
    if method.startswith("TPM-"):
        return run_tpm_variant(method[4:], dataset, setting)
    if method == "DR":
        return run_dr(dataset, setting)
    if method == "DRP":
        return run_drp(dataset, setting)
    if method == "rDRP":
        return run_rdrp(dataset, setting)
    raise ValueError(f"Unknown Table-I method {method!r}")


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


# ---------------------------------------------------------------------------
# benchmark trajectory recording (ROADMAP item 4)
# ---------------------------------------------------------------------------
def record_result(
    area: str,
    metrics: dict[str, dict],
    smoke: bool,
    snapshot: dict | None = None,
) -> Path | None:
    """Append one bench run to the area's ``BENCH_<area>.json`` trajectory.

    Opt-in so casual bench runs never dirty the committed files:
    recording happens only when ``REPRO_BENCH_DIR`` names a target
    directory (CI: a scratch dir whose files are diffed against the
    committed baseline and uploaded as artifacts) or
    ``REPRO_BENCH_RECORD=1`` (write at the repo root, refreshing the
    committed trajectory itself).  Returns the path written, or None
    when recording is off.
    """
    bench_dir = os.environ.get("REPRO_BENCH_DIR")
    if not bench_dir and os.environ.get("REPRO_BENCH_RECORD") != "1":
        return None
    root = Path(bench_dir) if bench_dir else Path(__file__).resolve().parent.parent
    root.mkdir(parents=True, exist_ok=True)
    path = bench_path(root, area)
    append_run(
        path,
        area=area,
        metrics=metrics,
        mode="smoke" if smoke else "full",
        snapshot=snapshot,
    )
    print(f"[trajectory] recorded {'smoke' if smoke else 'full'} run -> {path}")
    return path


# ---------------------------------------------------------------------------
# profiling (--profile)
# ---------------------------------------------------------------------------
def profile_dir() -> Path:
    """Where profile dumps land: ``$REPRO_PROFILE_DIR`` or ``profiles/``."""
    return Path(os.environ.get("REPRO_PROFILE_DIR", "profiles"))


@contextmanager
def profile_to(name: str):
    """Run the body under :mod:`cProfile`, writing two artifacts.

    ``<name>.pstats`` is the binary dump (load with
    ``pstats.Stats(path)`` or feed to snakeviz/gprof2dot);
    ``<name>.txt`` is the top of the cumulative-time table for eyeballs
    and CI artifact browsers.  ``name`` should be filesystem-safe —
    the conftest fixture passes the sanitised test id.
    """
    out = profile_dir()
    out.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        dump = out / f"{name}.pstats"
        profiler.dump_stats(dump)
        with open(out / f"{name}.txt", "w") as fh:
            stats = pstats.Stats(str(dump), stream=fh)
            stats.sort_stats("cumulative").print_stats(40)
        print(f"[profile] wrote {dump}")


__all__ = [
    "BENCH_METRICS",
    "BenchCache",
    "DATASETS",
    "MC_SAMPLES",
    "SETTING_NAMES",
    "TABLE1_METHODS",
    "clear_caches",
    "evaluate",
    "get_dr",
    "get_rdrp",
    "get_setting",
    "print_header",
    "profile_dir",
    "profile_to",
    "record_result",
    "run_dr",
    "run_dr_mc",
    "run_drp",
    "run_drp_mc",
    "run_drp_mc_cp",
    "run_rdrp",
    "run_table1_method",
    "run_tpm_variant",
]

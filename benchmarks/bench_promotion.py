"""Auto-promotion lifecycle: overhead and time-to-verdict.

Two numbers quantify what :class:`~repro.serving.promotion.AutoPromoter`
costs and buys on the serving hot path:

* **Observation overhead** — every decided request adds one
  O(1) ledger update plus, every ``check_every`` observations, one
  Welch interval (a handful of ``t_ppf`` bisections).  Measured as raw
  ``observe()`` throughput and as the end-to-end replay slowdown of a
  promoter-driven day versus a plain one; the control loop must stay a
  rounding error next to model scoring (asserted: < 30% replay
  overhead, > 100k observations/s raw).
* **Time-to-verdict** — on a campaign whose challenger truly dominates
  (inverted-probe champion), the decided-request count the Welch gate
  needs before it promotes at level 0.99.  Reported per ramp schedule;
  asserted only to *reach* a promote verdict — the point of the
  significance gate is that an identical-clone campaign (also run)
  never does.
"""

from __future__ import annotations

import time

import numpy as np

from _harness import print_header, record_result
from repro.ab.platform import Platform
from repro.runtime import ManualClock
from repro.serving.engine import ScoringEngine
from repro.serving.promotion import AutoPromoter
from repro.serving.registry import ModelRegistry
from repro.serving.simulator import TrafficReplay

N_USERS = 6000
N_DAYS = 3
N_OBSERVE = 200_000
SMOKE_N_USERS = 600
SMOKE_N_DAYS = 2
SMOKE_N_OBSERVE = 5_000

#: metrics stashed by the first test, recorded to the BENCH_promotion.json
#: trajectory by the last test in the file (one run per bench invocation)
_TRAJECTORY: dict[str, dict] = {}


class _ProbeROI:
    def __init__(self, invert: bool = False) -> None:
        import repro

        probe = repro.criteo_uplift_v2(4000, random_state=5)
        self.w = np.linalg.lstsq(probe.x, probe.roi, rcond=None)[0]
        if invert:
            self.w = -self.w

    def predict_roi(self, x: np.ndarray) -> np.ndarray:
        return np.atleast_2d(np.asarray(x, dtype=float)) @ self.w


def _campaign(champion, challenger, n_days, n_users, seed=0):
    registry = ModelRegistry(random_state=seed)
    registry.register(champion, name="champion")
    registry.register(challenger, name="challenger")
    clock = ManualClock()
    engine = ScoringEngine(registry, batch_size=128, cache_size=0, clock=clock)
    day_s = n_users * 0.001
    promoter = AutoPromoter(
        registry, clock=clock, ramp=(0.05, 0.25, 1.0), step_every_s=day_s / 2,
        level=0.99, min_decided=300, check_every=200, hold_decided=10**9,
    )
    replay = TrafficReplay(
        Platform(dataset="criteo", random_state=seed), engine,
        interarrival_s=0.001, promoter=promoter, random_state=seed + 1,
    )
    start = time.perf_counter()
    replay.replay_days(n_days, n_users, budget_fraction=0.3)
    return promoter, time.perf_counter() - start


def test_observe_throughput_and_replay_overhead(benchmark, smoke) -> None:
    """The control loop must be a rounding error on the hot path."""
    n_observe = SMOKE_N_OBSERVE if smoke else N_OBSERVE
    n_users = SMOKE_N_USERS if smoke else N_USERS

    def run() -> dict:
        # raw observe(): ledger update + periodic Welch evaluation
        registry = ModelRegistry(random_state=0)
        registry.register(_ProbeROI(), name="champion")
        registry.register(_ProbeROI(), name="challenger")
        promoter = AutoPromoter(
            registry, clock=ManualClock(), ramp=(0.1, 1.0), step_every_s=1e9,
            level=0.99, min_decided=200, check_every=200, auto_start=False,
        )
        promoter.start()
        gen = np.random.default_rng(0)
        outcomes = gen.random((n_observe, 2))
        versions = np.where(gen.random(n_observe) < 0.5, 1, 2)
        start = time.perf_counter()
        for v, (y_r, y_c) in zip(versions, outcomes):
            promoter.observe(int(v), True, float(y_r < 0.3), float(y_c < 0.3))
        observe_rate = n_observe / (time.perf_counter() - start)

        # end-to-end: a promoter-driven replay day vs a plain one
        def day(promoted: bool) -> float:
            registry = ModelRegistry(random_state=0)
            registry.register(_ProbeROI(), name="champion")
            registry.register(_ProbeROI(), name="clone")
            engine = ScoringEngine(registry, batch_size=128, cache_size=0)
            promoter = (
                AutoPromoter(registry, ramp=(0.25,), min_decided=10**9, hold_decided=10**9)
                if promoted
                else None
            )
            replay = TrafficReplay(
                Platform(dataset="criteo", random_state=0), engine,
                promoter=promoter, random_state=1,
            )
            start = time.perf_counter()
            replay.replay_day(n_users, budget_fraction=0.3)
            return time.perf_counter() - start

        day(False)  # warm caches
        plain = min(day(False) for _ in range(3))
        driven = min(day(True) for _ in range(3))
        return {
            "observe_rate": observe_rate,
            "plain_s": plain,
            "driven_s": driven,
            "overhead": driven / plain - 1.0,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("AutoPromoter overhead")
    print(f"raw observe() throughput: {out['observe_rate']:>12,.0f} obs/s")
    print(f"replay day, plain:        {out['plain_s'] * 1e3:>12.1f} ms")
    print(f"replay day, promoter:     {out['driven_s'] * 1e3:>12.1f} ms")
    print(f"promoter overhead:        {out['overhead']:>12.1%}")
    if not smoke:
        assert out["observe_rate"] > 100_000
        assert out["overhead"] < 0.30

    _TRAJECTORY.update(
        {
            "observe_rate": {"value": out["observe_rate"], "unit": "obs/s"},
            # ungated context: on a sub-second replay day the ratio's
            # noise floor straddles zero, so a relative band can't gate it
            # (the hard assert above still enforces the < 30% bar on full)
            "promoter_replay_overhead": {
                "value": out["overhead"],
                "direction": "lower",
            },
        }
    )


def test_time_to_verdict(benchmark, smoke) -> None:
    """Decided requests the gate needs to promote a dominant challenger
    — and that an identical clone never promotes on the same traffic."""
    n_users = SMOKE_N_USERS if smoke else N_USERS
    n_days = SMOKE_N_DAYS if smoke else N_DAYS

    def run() -> dict:
        dominant, elapsed_d = _campaign(
            _ProbeROI(invert=True), _ProbeROI(), n_days, n_users
        )
        clone, elapsed_c = _campaign(_ProbeROI(), _ProbeROI(), n_days, n_users)
        promote = [e for e in dominant.events if e.kind == "promote"]
        decided_at_verdict = promote[0].ci.n if promote else None
        return {
            "promoted": bool(promote),
            "decided_at_verdict": decided_at_verdict,
            "clone_promoted": any(e.kind == "promote" for e in clone.events),
            "dominant_s": elapsed_d,
            "clone_s": elapsed_c,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Time-to-verdict (Welch gate at level 0.99)")
    print(f"dominant challenger promoted: {out['promoted']}"
          + (f" after {out['decided_at_verdict']} decided requests"
             if out["promoted"] else ""))
    print(f"identical clone promoted:     {out['clone_promoted']} (must be False)")
    print(f"campaign wall time:           {out['dominant_s']:.2f}s / {out['clone_s']:.2f}s")
    assert out["clone_promoted"] is False
    if not smoke:
        assert out["promoted"] is True

    metrics = dict(_TRAJECTORY)
    metrics.update(
        {
            # the two significance-gate contracts are deterministic
            # (fixed seeds) and machine-portable: both gate
            "clone_promoted": {
                "value": float(out["clone_promoted"]),
                "direction": "lower",
                "gated": True,
                "tolerance": 0.01,
            },
            "dominant_promoted": {
                "value": float(out["promoted"]),
                "direction": "higher",
                "gated": not smoke,  # smoke days are too short to always verdict
                "tolerance": 0.01,
            },
        }
    )
    if out["decided_at_verdict"] is not None:
        metrics["decided_at_verdict"] = {
            "value": float(out["decided_at_verdict"]),
            "unit": "requests",
            "direction": "lower",
        }
    record_result("promotion", metrics, smoke=smoke)
    _TRAJECTORY.clear()

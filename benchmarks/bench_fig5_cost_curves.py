"""Fig. 5: ablation cost curves on the CRITEO analog, four settings.

For each setting, prints the sampled (incremental cost, incremental
reward) polyline of every ablation arm plus the random diagonal — the
exact series Fig. 5 plots — and the area under each.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import (
    MC_SAMPLES,
    SETTING_NAMES,
    get_dr,
    get_rdrp,
    get_setting,
    print_header,
    record_result,
)
from repro.core.calibration import combine_point_and_std
from repro.metrics.aucc import cost_curve

CURVE_POINTS = 11  # decile sampling, like the figure

_AREA_KEYS = {
    "DR": "area_dr_mean",
    "DR w/ MC": "area_dr_mc_mean",
    "DRP": "area_drp_mean",
    "DRP w/ MC": "area_drp_mc_mean",
    "DRP w/ MC w/ CP": "area_drp_mc_cp_mean",
    "Random": "area_random_mean",
}

_SETTINGS: dict[str, dict[str, float]] = {}


def _record_trajectory(smoke: bool) -> None:
    metrics: dict[str, dict] = {
        "settings": {
            "value": float(len(_SETTINGS)),
            "unit": "settings",
            "gated": True,
            "tolerance": 0.01,
        },
    }
    for arm, key in _AREA_KEYS.items():
        metrics[key] = {
            "value": float(np.mean([areas[arm] for areas in _SETTINGS.values()])),
            "direction": "higher",
            "gated": True,
        }
    record_result("fig5_cost_curves", metrics, smoke=smoke)
    _SETTINGS.clear()


def _curves_for_setting(setting: str) -> dict[str, object]:
    data = get_setting("criteo", setting)
    te = data.test
    rdrp = get_rdrp("criteo", setting)
    dr = get_dr("criteo", setting)

    dr_mc_mean, dr_mc_std = dr.predict_roi_mc(te.x, n_samples=MC_SAMPLES)
    drp_mc_mean, drp_mc_std = rdrp.drp.predict_roi_mc(te.x, n_samples=MC_SAMPLES)

    predictions = {
        "DR": dr.predict_roi(te.x),
        "DR w/ MC": combine_point_and_std(dr_mc_mean, dr_mc_std, how="mean"),
        "DRP": rdrp.drp.predict_roi(te.x),
        "DRP w/ MC": combine_point_and_std(drp_mc_mean, drp_mc_std, how="mean"),
        "DRP w/ MC w/ CP": rdrp.predict_roi(te.x),
        "Random": np.random.default_rng(0).random(te.n),
    }
    return {
        name: cost_curve(pred, te.t, te.y_r, te.y_c, n_points=CURVE_POINTS)
        for name, pred in predictions.items()
    }


@pytest.mark.parametrize("setting", SETTING_NAMES)
def test_fig5_panel(benchmark, smoke, setting: str) -> None:
    curves = benchmark.pedantic(_curves_for_setting, args=(setting,), rounds=1, iterations=1)

    print_header(f"Fig. 5 — ablation cost curves, criteo, {setting}")
    for name, curve in curves.items():
        xs = " ".join(f"{v:.2f}" for v in curve.cost)
        ys = " ".join(f"{v:.2f}" for v in curve.reward)
        print(f"  {name:<18s} area={curve.area:.4f}")
        print(f"    cost:   {xs}")
        print(f"    reward: {ys}")

    # every curve starts at the origin and ends at (1, 1)
    for curve in curves.values():
        assert curve.cost[0] == 0.0 and curve.reward[0] == 0.0
        assert curve.cost[-1] == pytest.approx(1.0)
        assert curve.reward[-1] == pytest.approx(1.0)

    _SETTINGS[setting] = {name: float(curve.area) for name, curve in curves.items()}
    if len(_SETTINGS) == len(SETTING_NAMES):
        _record_trajectory(smoke)

"""Runtime-layer leverage: deadline flushing and pool reuse.

Two numbers quantify what ``repro.runtime`` buys:

* **Deadline flush latency** — on a quiet stream (arrivals far slower
  than ``batch_size`` fills), a batch-full-only engine strands early
  requests until the batch finally fills; an engine with
  ``max_latency_ms`` flushes on the deadline.  Measured on a simulated
  clock, p50/p95 submit→score latency must collapse from
  O(batch_size * interarrival) to <= the deadline — and the deadline
  engine's p95 must respect the bound exactly.
* **Pool reuse** — chunked cohort generation used to start (and tear
  down) one ``ProcessPoolExecutor`` per ``daily_cohort`` call; a
  shared :class:`~repro.runtime.ProcessBackend` starts exactly one
  pool for a whole 5-day run.  Same bytes out (asserted), fewer pool
  startups (asserted), less wall time (reported; asserted not to
  regress meaningfully on multi-CPU machines).
"""

from __future__ import annotations

import os
import time

import numpy as np

from _harness import print_header, record_result
from repro.ab.platform import Platform
from repro.runtime import ManualClock, ProcessBackend
from repro.serving.engine import ScoringEngine

N_EVENTS = 4096
SMOKE_N_EVENTS = 512
BATCH_SIZE = 256
MAX_LATENCY_MS = 5.0
INTERARRIVAL_S = 0.001  # 1ms: 256-batch takes 256ms to fill

N_DAYS = 5
COHORT = 30_000
CHUNK = 4_000
SMOKE_N_DAYS = 2
SMOKE_COHORT = 900
SMOKE_CHUNK = 300


class _CheapROI:
    """Near-free scorer so the simulated-latency numbers are pure
    batching policy, not model time."""

    def __init__(self, d: int = 12) -> None:
        self.w = np.linspace(-0.01, 0.01, d)

    def predict_roi(self, x: np.ndarray) -> np.ndarray:
        return np.atleast_2d(np.asarray(x, dtype=float)) @ self.w


def _stream_latencies(n_events: int, max_latency_ms: float | None) -> np.ndarray:
    """Submit ``n_events`` rows at 1ms simulated intervals; return the
    per-request submit→score latencies in simulated seconds."""
    clock = ManualClock()
    engine = ScoringEngine(
        _CheapROI(),
        batch_size=BATCH_SIZE,
        cache_size=0,
        max_latency_ms=max_latency_ms,
        clock=clock,
    )
    rng = np.random.default_rng(0)
    rows = rng.normal(size=(n_events, 12))
    for row in rows:
        clock.advance(INTERARRIVAL_S)
        engine.submit(row)
        engine.poll()
    engine.flush()
    engine.join()
    return np.asarray(engine.latencies)


def test_deadline_flush_latency(benchmark, smoke) -> None:
    """p50/p95 submit→score latency: deadline flush vs batch-full-only."""
    n_events = SMOKE_N_EVENTS if smoke else N_EVENTS

    def run() -> dict[str, np.ndarray]:
        return {
            "batch-full only": _stream_latencies(n_events, None),
            f"deadline {MAX_LATENCY_MS:.0f}ms": _stream_latencies(n_events, MAX_LATENCY_MS),
        }

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header(f"submit→score latency, simulated clock ({n_events} events @ 1ms)")
    print(f"  {'mode':>18s} {'p50':>9s} {'p95':>9s} {'max':>9s}")
    for mode, lat in grid.items():
        p50, p95, mx = (1000 * np.quantile(lat, q) for q in (0.5, 0.95, 1.0))
        print(f"  {mode:>18s} {p50:>8.2f}m {p95:>8.2f}m {mx:>8.2f}m")

    batch_only = grid["batch-full only"]
    deadline = grid[f"deadline {MAX_LATENCY_MS:.0f}ms"]
    bound_s = MAX_LATENCY_MS / 1000.0
    # the deadline is a hard bound on every request, any size
    assert deadline.max() <= bound_s + 1e-9
    ratio = np.quantile(batch_only, 0.95) / max(np.quantile(deadline, 0.95), 1e-9)
    if not smoke:
        # batch-full-only strands requests for most of the fill time
        assert np.quantile(batch_only, 0.95) > 20 * bound_s
        print(f"  p95 improvement: {ratio:.0f}x (bar: >= 20x)")
        assert ratio >= 20.0

    # simulated-clock numbers are deterministic, so gate them tightly
    record_result(
        "runtime",
        {
            "deadline_p95_ms": {
                "value": 1000 * float(np.quantile(deadline, 0.95)),
                "unit": "ms",
                "direction": "lower",
                "gated": True,
                "tolerance": 0.01,
            },
            "deadline_max_ms": {
                "value": 1000 * float(deadline.max()),
                "unit": "ms",
                "direction": "lower",
                "gated": True,
                "tolerance": 0.01,
            },
            "p95_improvement": {
                "value": float(ratio),
                "unit": "x",
                "direction": "higher",
                "gated": True,
                "tolerance": 0.01,
            },
            "batch_only_p95_ms": {
                "value": 1000 * float(np.quantile(batch_only, 0.95)),
                "unit": "ms",
                "direction": "lower",
            },
        },
        smoke=smoke,
    )


def _timed_campaign(platform: Platform, n_days: int, cohort: int, backend) -> tuple[float, list]:
    """Generate ``n_days`` cohorts; return (seconds, per-day checksums)."""
    start = time.perf_counter()
    sums = []
    for day in range(1, n_days + 1):
        c = platform.daily_cohort(cohort, day, backend=backend)
        sums.append((c.n, float(c.x.sum()), float(c.tau_r.sum())))
    return time.perf_counter() - start, sums


def test_pool_reuse_across_days(benchmark, smoke) -> None:
    """One shared pool for a 5-day run vs the old pool-per-day churn."""
    n_days = SMOKE_N_DAYS if smoke else N_DAYS
    cohort = SMOKE_COHORT if smoke else COHORT
    chunk = SMOKE_CHUNK if smoke else CHUNK
    # >= 2 so the fan-out path engages even on single-CPU runners (the
    # perf assertion below still requires real CPUs)
    workers = max(2, min(4, os.cpu_count() or 1))

    def make_platform() -> Platform:
        return Platform(dataset="criteo", chunk_size=chunk, random_state=0)

    def run() -> dict:
        serial_time, serial_sums = _timed_campaign(make_platform(), n_days, cohort, None)
        # churn: a fresh backend per day, torn down after each cohort
        # (what every daily_cohort call did before the runtime layer)
        churn_start = time.perf_counter()
        churn_sums = []
        churn_platform = make_platform()
        for day in range(1, n_days + 1):
            with ProcessBackend(workers) as per_day:
                c = churn_platform.daily_cohort(cohort, day, backend=per_day)
            churn_sums.append((c.n, float(c.x.sum()), float(c.tau_r.sum())))
        churn_time = time.perf_counter() - churn_start
        # reuse: one backend, lazily started once, for the whole run
        with ProcessBackend(workers) as shared:
            shared_time, shared_sums = _timed_campaign(
                make_platform(), n_days, cohort, shared
            )
            starts = shared.start_count
        return dict(
            serial=(serial_time, serial_sums),
            churn=(churn_time, churn_sums),
            shared=(shared_time, shared_sums),
            starts=starts,
        )

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    serial_time, serial_sums = out["serial"]
    churn_time, churn_sums = out["churn"]
    shared_time, shared_sums = out["shared"]
    print_header(
        f"pool reuse — {n_days}-day campaign, {cohort} users/day, {workers} workers"
    )
    print(f"  serial:          {serial_time:8.3f}s")
    print(f"  pool per day:    {churn_time:8.3f}s  ({n_days} pool startups)")
    print(f"  shared pool:     {shared_time:8.3f}s  ({out['starts']} pool startup)")
    print(f"  reuse speedup over churn: {churn_time / max(shared_time, 1e-9):.2f}x")

    # identical cohorts whichever execution path generated them
    assert serial_sums == churn_sums == shared_sums
    # the headline guarantee: one startup for the whole campaign
    assert out["starts"] == 1
    if not smoke and (os.cpu_count() or 1) >= 2:
        # reuse must not be meaningfully slower than churn (it saves
        # n_days-1 pool startups; generous slack absorbs CI noise)
        assert shared_time <= churn_time * 1.10

    record_result(
        "runtime_pool",
        {
            "pool_starts": {
                "value": float(out["starts"]),
                "direction": "lower",
                "gated": True,
                "tolerance": 0.01,
            },
            "reuse_speedup_over_churn": {
                "value": churn_time / max(shared_time, 1e-9),
                "unit": "x",
                "direction": "higher",
            },
            "serial_seconds": {"value": serial_time, "unit": "s", "direction": "lower"},
            "shared_seconds": {"value": shared_time, "unit": "s", "direction": "lower"},
        },
        smoke=smoke,
    )

"""Fig. 6: online A/B tests — DRP vs rDRP vs random control, 5 days.

One benchmark per setting.  The platform simulator mirrors the paper's
protocol: daily cohorts randomly split across the three arms, equal
reward budgets, revenue realised from the ground-truth effects.  The
printed series is each arm's incremental revenue percentage over the
random arm per day — the quantity plotted in Fig. 6.  Paper shape:
both models clearly above 0; rDRP >= DRP except a near-tie in SuNo.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import SETTING_NAMES, get_rdrp, print_header, record_result
from repro.ab.experiment import ABTest
from repro.ab.platform import Platform

N_DAYS = 5
COHORT = 7500

_SETTINGS: dict[str, dict[str, float]] = {}


def _record_trajectory(smoke: bool) -> None:
    record_result(
        "fig6_ab_test",
        {
            "settings": {
                "value": float(len(_SETTINGS)),
                "unit": "settings",
                "gated": True,
                "tolerance": 0.01,
            },
            # uplift percentages hover near zero at this cohort scale,
            # so a relative band cannot gate them — shape context only
            "uplift_drp_mean": {
                "value": float(np.mean([s["DRP"] for s in _SETTINGS.values()])),
                "unit": "%",
                "direction": "higher",
            },
            "uplift_rdrp_mean": {
                "value": float(np.mean([s["rDRP"] for s in _SETTINGS.values()])),
                "unit": "%",
                "direction": "higher",
            },
        },
        smoke=smoke,
    )
    _SETTINGS.clear()


@pytest.mark.parametrize("setting", SETTING_NAMES)
def test_fig6_panel(benchmark, smoke, setting: str) -> None:
    def run_panel() -> dict[str, list[float]]:
        rdrp = get_rdrp("criteo", setting)
        platform = Platform(
            dataset="criteo",
            shifted=setting.endswith("Co"),
            random_state=7,
        )
        ab = ABTest(
            platform,
            {"DRP": rdrp.drp.predict_roi, "rDRP": rdrp.predict_roi},
            budget_fraction=0.3,
            random_state=0,
        )
        result = ab.run(n_days=N_DAYS, cohort_size=COHORT)
        return result.uplift_vs_random

    uplift = benchmark.pedantic(run_panel, rounds=1, iterations=1)

    print_header(f"Fig. 6 — online A/B test, {setting} (incremental revenue % vs random)")
    for arm, series in uplift.items():
        row = " ".join(f"{v:+.2f}%" for v in series)
        print(f"  {arm:<6s} {row}   mean={np.mean(series):+.2f}%")

    assert set(uplift) == {"DRP", "rDRP"}
    assert all(len(series) == N_DAYS for series in uplift.values())
    # both model arms should beat the random control on average
    assert np.mean(uplift["DRP"]) > -1.0
    assert np.mean(uplift["rDRP"]) > -1.0

    _SETTINGS[setting] = {arm: float(np.mean(series)) for arm, series in uplift.items()}
    if len(_SETTINGS) == len(SETTING_NAMES):
        _record_trajectory(smoke)

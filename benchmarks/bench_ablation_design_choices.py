"""Ablations of this reproduction's own design choices (DESIGN.md §1).

1. ``roi*`` granularity — Algorithm 2 read globally (one pooled binary
   search) vs binned (per-quantile-bin searches).  The binned reading
   gives heterogeneous surrogate labels; the bench reports how the
   conformal quantile and coverage react.
2. Isotonic recalibration (the paper's future-work item 3, implemented
   in :mod:`repro.core.extensions`) vs the raw DRP estimate and the
   heuristic-form rDRP.
"""

from __future__ import annotations

import numpy as np

from _harness import MC_SAMPLES, evaluate, get_rdrp, get_setting, print_header, record_result
from repro.core.conformal import ConformalCalibrator, empirical_coverage
from repro.core.extensions import IsotonicRoiRecalibration
from repro.core.roi_star import RoiStarEstimator

#: results stashed by the granularity test, recorded together with the
#: recalibration test's (both ablations are one DESIGN.md section)
_RESULTS: dict[str, dict] = {}


def _record_trajectory(smoke: bool) -> None:
    gran, iso = _RESULTS["granularity"], _RESULTS["isotonic"]
    record_result(
        "ablation_design_choices",
        {
            # coverages and AUCC levels are seed-pinned: gate them
            "coverage_global": {
                "value": gran["global"]["coverage"],
                "direction": "higher",
                "gated": True,
            },
            "coverage_binned": {
                "value": gran["binned"]["coverage"],
                "direction": "higher",
                "gated": True,
            },
            "aucc_drp_raw": {
                "value": iso["DRP (raw)"],
                "direction": "higher",
                "gated": True,
            },
            "aucc_rdrp_heuristic": {
                "value": iso["rDRP (heuristic forms)"],
                "direction": "higher",
                "gated": True,
            },
            "aucc_isotonic": {
                "value": iso["DRP + isotonic roi* recalibration"],
                "direction": "higher",
                "gated": True,
            },
            # the binned label spread is the ablation's existence proof
            # (global is constant by construction) — context only
            "binned_label_spread": {
                "value": gran["binned"]["label_spread"],
                "direction": "higher",
            },
        },
        smoke=smoke,
    )
    _RESULTS.clear()


def test_roi_star_granularity(benchmark, smoke) -> None:
    def run() -> dict[str, dict[str, float]]:
        data = get_setting("criteo", "InNo")
        model = get_rdrp("criteo", "InNo")
        ca, te = data.calibration, data.test
        roi_hat_ca, r_ca = model.drp.predict_roi_mc(ca.x, n_samples=MC_SAMPLES)
        roi_hat_te, r_te = model.drp.predict_roi_mc(te.x, n_samples=MC_SAMPLES)

        out: dict[str, dict[str, float]] = {}
        for mode in ("global", "binned"):
            estimator = RoiStarEstimator(mode=mode, n_bins=20)
            star_ca = estimator.estimate(roi_hat_ca, ca.t, ca.y_r, ca.y_c)
            star_te = estimator.estimate(roi_hat_te, te.t, te.y_r, te.y_c)
            calibrator = ConformalCalibrator(alpha=0.1)
            calibrator.calibrate(star_ca, roi_hat_ca, r_ca)
            lower, upper = calibrator.interval(roi_hat_te, r_te)
            out[mode] = {
                "q_hat": calibrator.q_hat,
                "coverage": empirical_coverage(star_te, lower, upper),
                "label_spread": float(np.std(star_ca)),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Design ablation — roi* granularity (criteo InNo, alpha=0.1)")
    for mode, stats in results.items():
        print(
            f"  {mode:<8s} q_hat={stats['q_hat']:.2f}  "
            f"coverage={stats['coverage']:.3f}  "
            f"label std={stats['label_spread']:.3f}"
        )
    # the global label is constant; the binned one must vary
    assert results["global"]["label_spread"] < 1e-9
    assert results["binned"]["label_spread"] > 0
    # both modes must keep the Eq. 4 coverage promise (with slack)
    for stats in results.values():
        assert stats["coverage"] >= 0.9 - 0.12
    _RESULTS["granularity"] = results


def test_isotonic_recalibration_extension(benchmark, smoke) -> None:
    def run() -> dict[str, float]:
        data = get_setting("criteo", "InCo")
        model = get_rdrp("criteo", "InCo")
        ca, te = data.calibration, data.test
        roi_hat_ca = model.drp.predict_roi(ca.x)
        roi_hat_te = model.drp.predict_roi(te.x)

        recalibration = IsotonicRoiRecalibration(n_bins=12)
        recalibration.fit(roi_hat_ca, ca.t, ca.y_r, ca.y_c)

        return {
            "DRP (raw)": evaluate(roi_hat_te, data),
            "rDRP (heuristic forms)": evaluate(model.predict_roi(te.x), data),
            "DRP + isotonic roi* recalibration": evaluate(
                recalibration.transform(roi_hat_te), data
            ),
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Design ablation — isotonic recalibration (criteo InCo, AUCC)")
    for name, score in scores.items():
        print(f"  {name:<36s} {score:.4f}")
    assert all(0.0 <= s <= 1.0 for s in scores.values())

    _RESULTS["isotonic"] = scores
    if "granularity" in _RESULTS:
        _record_trajectory(smoke)

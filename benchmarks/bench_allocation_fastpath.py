"""Micro-benchmark: the cumsum fast path of Algorithm 1.

``greedy_allocation`` resolves the common case — the budget-fitting
prefix of the sorted order leaves no room for any later individual —
with one vectorised cumulative sum instead of a per-item Python scan.
This bench verifies the fast path is *hit* on sorted-fitting inputs
(uniform costs, any budget) and measures its speedup over an input
constructed to force the skip-and-continue fallback.
"""

from __future__ import annotations

import time

import numpy as np

from _harness import print_header, record_result
from repro.core.allocation import greedy_allocation

N = 200_000
REPEATS = 5

SMOKE_N = 20_000
SMOKE_REPEATS = 2


def test_fast_path_hit_and_speedup(benchmark, smoke) -> None:
    """Sorted-fitting inputs take the cumsum path and run ~vectorised."""
    n = SMOKE_N if smoke else N
    repeats = SMOKE_REPEATS if smoke else REPEATS

    def run() -> dict[str, float]:
        rng = np.random.default_rng(0)
        scores = rng.random(n)
        uniform_costs = np.full(n, 0.25)  # no skip can ever pay -> fast path
        # costly head + cheap tail: the prefix nearly exhausts the budget
        # while cheaper affordable items remain -> scan fallback
        skewed_costs = np.where(scores > 0.5, 5.0, 0.01)
        budget = 0.3 * float(np.sum(uniform_costs)) + 0.05

        start = time.perf_counter()
        fast_paths = [
            greedy_allocation(scores, uniform_costs, budget).path
            for _ in range(repeats)
        ]
        fast_seconds = (time.perf_counter() - start) / repeats

        start = time.perf_counter()
        scan_paths = [
            greedy_allocation(scores, skewed_costs, budget).path
            for _ in range(repeats)
        ]
        scan_seconds = (time.perf_counter() - start) / repeats

        assert fast_paths == ["fast_path"] * repeats
        assert scan_paths == ["scan_fallback"] * repeats
        return {"fast": fast_seconds, "scan": scan_seconds}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header(f"Algorithm 1 fast path — {n:,} individuals")
    print(f"  cumsum fast path   {timings['fast'] * 1000:8.1f} ms")
    print(f"  scan fallback      {timings['scan'] * 1000:8.1f} ms")
    print(f"  speedup            {timings['scan'] / max(timings['fast'], 1e-12):8.1f}x")
    # the fallback pays a per-item Python loop; the fast path must win
    if not smoke:
        assert timings["fast"] < timings["scan"]

    # path-hit counts are deterministic (gate them tightly); absolute
    # timings and their ratio vary by machine, so they ride ungated
    record_result(
        "allocation_fastpath",
        {
            "fast_path_runs": {
                "value": float(repeats),
                "unit": "runs",
                "direction": "higher",
                "gated": True,
                "tolerance": 0.01,
            },
            "scan_fallback_runs": {
                "value": float(repeats),
                "unit": "runs",
                "direction": "higher",
                "gated": True,
                "tolerance": 0.01,
            },
            "fast_path_ms": {
                "value": 1000 * timings["fast"],
                "unit": "ms",
                "direction": "lower",
            },
            "scan_fallback_ms": {
                "value": 1000 * timings["scan"],
                "unit": "ms",
                "direction": "lower",
            },
            "scan_over_fast_speedup": {
                "value": timings["scan"] / max(timings["fast"], 1e-12),
                "unit": "x",
                "direction": "higher",
            },
        },
        smoke=smoke,
    )

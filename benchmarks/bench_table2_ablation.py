"""Table II: ablation of the MC and CP components.

Per (dataset, setting) cell: DR, DR w/ MC, DRP, DRP w/ MC, and
DRP w/ MC w/ CP (= rDRP).  Paper shape: adding MC improves DR and DRP;
adding CP improves DRP w/ MC further; gains grow from Su* to In*.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import (
    DATASETS,
    SETTING_NAMES,
    print_header,
    record_result,
    run_dr,
    run_dr_mc,
    run_drp,
    run_drp_mc,
    run_drp_mc_cp,
)

ABLATION_ARMS = (
    ("DR", run_dr),
    ("DR w/ MC", run_dr_mc),
    ("DRP", run_drp),
    ("DRP w/ MC", run_drp_mc),
    ("DRP w/ MC w/ CP", run_drp_mc_cp),
)

#: trajectory metric key per ablation arm
_ARM_KEYS = {
    "DR": "aucc_dr_mean",
    "DR w/ MC": "aucc_dr_mc_mean",
    "DRP": "aucc_drp_mean",
    "DRP w/ MC": "aucc_drp_mc_mean",
    "DRP w/ MC w/ CP": "aucc_drp_mc_cp_mean",
}

_CELLS: dict[tuple[str, str], dict[str, float]] = {}


def _record_trajectory(smoke: bool) -> None:
    metrics: dict[str, dict] = {
        "cells": {
            "value": float(len(_CELLS)),
            "unit": "cells",
            "gated": True,
            "tolerance": 0.01,
        },
    }
    for arm, key in _ARM_KEYS.items():
        metrics[key] = {
            "value": float(np.mean([cell[arm] for cell in _CELLS.values()])),
            "direction": "higher",
            "gated": True,
        }
    record_result("table2_ablation", metrics, smoke=smoke)
    _CELLS.clear()


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("setting", SETTING_NAMES)
def test_table2_cell(benchmark, smoke, dataset: str, setting: str) -> None:
    def run_cell() -> dict[str, float]:
        return {name: runner(dataset, setting) for name, runner in ABLATION_ARMS}

    scores = benchmark.pedantic(run_cell, rounds=1, iterations=1)

    print_header(f"Table II cell — dataset={dataset}, setting={setting} (AUCC)")
    for name, score in scores.items():
        print(f"  {name:<18s} {score:.4f}")

    assert all(0.0 <= s <= 1.0 for s in scores.values())
    # the full method must not regress materially against plain DRP
    assert scores["DRP w/ MC w/ CP"] >= scores["DRP"] - 0.05

    _CELLS[(dataset, setting)] = scores
    if len(_CELLS) == len(DATASETS) * len(SETTING_NAMES):
        _record_trajectory(smoke)

"""Table I: offline AUCC of 10 methods x 3 datasets x 4 settings.

Each benchmark regenerates one (dataset, setting) cell: it trains the
seven TPM baselines, DR, DRP and rDRP on the cell's training split and
prints the AUCC column the paper reports.  Expected shape (paper):
rDRP >= DRP, both above DR and the TPM baselines, with the rDRP-DRP
gap largest under insufficient data + covariate shift.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import (
    DATASETS,
    SETTING_NAMES,
    TABLE1_METHODS,
    print_header,
    record_result,
    run_table1_method,
)

#: AUCC per completed (dataset, setting) cell; the cell that completes
#: the full matrix records the run to the BENCH_table1_aucc.json
#: trajectory (partial runs, e.g. under -k, record nothing)
_CELLS: dict[tuple[str, str], dict[str, float]] = {}


def _record_trajectory(smoke: bool) -> None:
    means = {
        method: float(np.mean([cell[method] for cell in _CELLS.values()]))
        for method in ("DR", "DRP", "rDRP")
    }
    record_result(
        "table1_aucc",
        {
            # matrix completeness is deterministic: gate it tightly
            "cells": {
                "value": float(len(_CELLS)),
                "unit": "cells",
                "gated": True,
                "tolerance": 0.01,
            },
            # headline AUCC levels are seed-pinned and stable: gate at
            # the default relative band
            "aucc_dr_mean": {"value": means["DR"], "direction": "higher", "gated": True},
            "aucc_drp_mean": {"value": means["DRP"], "direction": "higher", "gated": True},
            "aucc_rdrp_mean": {"value": means["rDRP"], "direction": "higher", "gated": True},
            # the robustness delta straddles zero cell-by-cell, so a
            # relative band cannot gate it — context only
            "rdrp_minus_drp_mean": {
                "value": means["rDRP"] - means["DRP"],
                "direction": "higher",
            },
        },
        smoke=smoke,
    )
    _CELLS.clear()


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("setting", SETTING_NAMES)
def test_table1_cell(benchmark, smoke, dataset: str, setting: str) -> None:
    def run_cell() -> dict[str, float]:
        return {
            method: run_table1_method(method, dataset, setting)
            for method in TABLE1_METHODS
        }

    scores = benchmark.pedantic(run_cell, rounds=1, iterations=1)

    print_header(f"Table I cell — dataset={dataset}, setting={setting} (AUCC)")
    for method, score in scores.items():
        print(f"  {method:<16s} {score:.4f}")
    best = max(scores, key=scores.get)
    print(f"  -> best: {best}")

    # sanity: every score is a valid AUCC
    assert all(0.0 <= s <= 1.0 for s in scores.values())
    # the paper's headline ordering, with noise slack for single-seed cells:
    # rDRP must not fall behind DRP by more than metric noise
    assert scores["rDRP"] >= scores["DRP"] - 0.05

    _CELLS[(dataset, setting)] = scores
    if len(_CELLS) == len(DATASETS) * len(SETTING_NAMES):
        _record_trajectory(smoke)

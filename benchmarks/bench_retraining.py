"""Streaming retraining: refit cost, warm-start payoff, drift recovery.

Three numbers quantify what closing the loop costs and buys:

* **Warm vs cold ridge refit** — a retraining loop that refits on a
  handful of fresh outcomes should not pay for the whole window again.
  :meth:`~repro.linear.RidgeRegression.partial_fit` folds one batch of
  sufficient statistics and re-solves a d×d system (O(k·d²)), a cold
  :meth:`fit` re-reduces every accumulated row (O(N·d²)).  Asserted:
  warm ≥ 3x faster at equal coefficients (atol 1e-8) — the speedup is
  the point, the coefficient pin is what makes it a *refit* rather
  than an approximation.
* **Refit throughput** — end-to-end :class:`~repro.serving.Retrainer`
  cycles (window stack → clone → fit → stage) per second on the
  serving template model.
* **Time-to-recovered-revenue** — under day-2 concept drift, how many
  days the closed loop needs before its daily incremental revenue
  beats the frozen champion's on CRN-paired traffic (and the total
  revenue delta over the campaign).
"""

from __future__ import annotations

import time

import numpy as np

from _harness import print_header, record_result
from repro.ab.platform import Platform
from repro.causal.base import TrainableModel
from repro.linear import RidgeRegression
from repro.runtime import ManualClock
from repro.serving import AutoPromoter, Retrainer
from repro.serving.engine import ScoringEngine
from repro.serving.registry import ModelRegistry
from repro.serving.simulator import TrafficReplay

N_ROWS = 200_000
N_BATCH = 2_000
D = 32
N_USERS = 1500
N_DAYS = 6
SMOKE_N_ROWS = 20_000
SMOKE_N_BATCH = 500
SMOKE_N_USERS = 400
SMOKE_N_DAYS = 3

#: metrics stashed by earlier tests, recorded to BENCH_retraining.json
#: by the last test in the file (one run per bench invocation)
_TRAJECTORY: dict[str, dict] = {}


class _TreatedNetRidge(TrainableModel):
    """The example/test serving template: ridge on treated rows' net."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self._ridge = None

    def fit(self, x, y, t):
        mask = np.asarray(t) == 1
        self._ridge = RidgeRegression(alpha=self.alpha).fit(
            np.asarray(x)[mask], np.asarray(y)[mask]
        )
        return self

    def predict_roi(self, x):
        return self._ridge.predict(x)


def test_warm_vs_cold_ridge_refit(benchmark, smoke) -> None:
    """Warm partial_fit must beat a cold full-window fit ≥ 3x, exactly."""
    n_rows = SMOKE_N_ROWS if smoke else N_ROWS
    n_batch = SMOKE_N_BATCH if smoke else N_BATCH

    def run() -> dict:
        gen = np.random.default_rng(0)
        x_hist = gen.normal(size=(n_rows, D))
        y_hist = x_hist @ gen.normal(size=D) + 0.1 * gen.normal(size=n_rows)
        x_new = gen.normal(size=(n_batch, D))
        y_new = x_new @ gen.normal(size=D) + 0.1 * gen.normal(size=n_batch)

        warm = RidgeRegression(alpha=1.0)
        warm.partial_fit(x_hist, y_hist)  # history already folded in

        def warm_refit() -> float:
            start = time.perf_counter()
            warm.partial_fit(x_new, y_new)
            return time.perf_counter() - start

        def cold_refit() -> float:
            cold = RidgeRegression(alpha=1.0)
            x_all = np.vstack([x_hist, x_new])
            y_all = np.concatenate([y_hist, y_new])
            start = time.perf_counter()
            cold.fit(x_all, y_all)
            return time.perf_counter() - start, cold

        # one warm timing only: partial_fit mutates the accumulator, so
        # the *first* fold is the comparable one; cold gets best-of-3
        warm_s = warm_refit()
        cold_runs = [cold_refit() for _ in range(3)]
        cold_s = min(t for t, _ in cold_runs)
        cold_model = cold_runs[0][1]
        coef_gap = float(
            np.max(np.abs(warm.coef_ - cold_model.coef_))
        )
        return {
            "warm_s": warm_s,
            "cold_s": cold_s,
            "speedup": cold_s / warm_s,
            "coef_gap": coef_gap,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Warm vs cold ridge refit")
    print(f"cold fit ({N_ROWS if not smoke else SMOKE_N_ROWS} rows): "
          f"{out['cold_s'] * 1e3:>9.2f} ms")
    print(f"warm partial_fit batch:   {out['warm_s'] * 1e3:>9.2f} ms")
    print(f"speedup:                  {out['speedup']:>9.1f}x")
    print(f"max coefficient gap:      {out['coef_gap']:>9.2e}")
    # equal coefficients is what makes the speedup meaningful: the warm
    # path solves the *same* problem, it is not an approximation
    assert out["coef_gap"] < 1e-8
    if not smoke:
        assert out["speedup"] >= 3.0

    _TRAJECTORY.update(
        {
            "warm_refit_speedup": {
                "value": out["speedup"],
                "unit": "x",
                "direction": "higher",
            },
            "warm_cold_coef_gap": {"value": out["coef_gap"], "direction": "lower"},
        }
    )


def test_refit_cycle_throughput(benchmark, smoke) -> None:
    """Full Retrainer cycles (stack → clone → fit → stage) per second."""
    n_cycles = 5 if smoke else 20
    window = 1_000

    def run() -> dict:
        registry = ModelRegistry(random_state=0)
        gen = np.random.default_rng(0)
        x0 = gen.normal(size=(200, 12))
        registry.register(
            _TreatedNetRidge().fit(x0, x0[:, 0], gen.integers(0, 2, 200)),
            name="champion",
            promote=True,
        )
        retrainer = Retrainer(
            registry, every_outcomes=window, window=window, min_outcomes=64
        )
        start = time.perf_counter()
        for _ in range(n_cycles):
            for _ in range(window):
                row = gen.normal(size=12)
                retrainer.observe(row, bool(gen.random() < 0.5), float(row[0]), 0.1)
            registry.demote()  # free the slot so every cycle stages
        elapsed = time.perf_counter() - start
        assert retrainer.n_refits == n_cycles
        return {
            "cycles_per_s": n_cycles / elapsed,
            "observe_rate": n_cycles * window / elapsed,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Retrainer cycle throughput")
    print(f"refit cycles/s (window {window}): {out['cycles_per_s']:>8.1f}")
    print(f"observe() throughput:            {out['observe_rate']:>8,.0f} obs/s")

    _TRAJECTORY.update(
        {
            "refit_cycles_per_s": {
                "value": out["cycles_per_s"],
                "unit": "cycles/s",
                "direction": "higher",
            }
        }
    )


def test_time_to_recovered_revenue(benchmark, smoke) -> None:
    """Days until the closed loop out-earns the frozen champion again."""
    n_users = SMOKE_N_USERS if smoke else N_USERS
    n_days = SMOKE_N_DAYS if smoke else N_DAYS

    def campaign(retrain: bool):
        seed = 0
        platform = Platform(
            dataset="criteo", random_state=seed, drift_day=2,
            drift_strength=3.0, day_effect=0.0,
        )
        probe = Platform(dataset="criteo", random_state=seed + 100).daily_cohort(
            3000, day=1
        )
        gen = np.random.default_rng(seed + 7)
        t = gen.integers(0, 2, probe.n)
        u = gen.random((probe.n, 2))
        champion = _TreatedNetRidge(alpha=1.0).fit(
            probe.x, (u[:, 0] < probe.tau_r) * t - (u[:, 1] < probe.tau_c) * t, t
        )
        clock = ManualClock()
        registry = ModelRegistry(random_state=seed)
        registry.register(champion, name="champion", promote=True)
        engine = ScoringEngine(
            registry, batch_size=32, max_latency_ms=50.0, clock=clock
        )
        promoter = AutoPromoter(
            registry, clock=clock, ramp=(0.2, 0.6), step_every_s=300.0,
            min_decided=80, check_every=25, hold_decided=80,
        )
        retrainer = (
            Retrainer(
                registry, clock=clock, window=n_users, min_outcomes=min(500, n_users),
                every_outcomes=n_users,
            )
            if retrain
            else None
        )
        replay = TrafficReplay(
            platform, engine, feedback=False, interarrival_s=1.0,
            promoter=promoter, retrainer=retrainer, paired_outcomes=True,
            random_state=seed + 1,
        )
        start = time.perf_counter()
        result = replay.replay_days(n_days, n_users, budget_fraction=0.3)
        return result, time.perf_counter() - start

    def run() -> dict:
        frozen, frozen_s = campaign(retrain=False)
        looped, looped_s = campaign(retrain=True)
        rev_f = [d.incremental_revenue for d in frozen.days]
        rev_g = [d.incremental_revenue for d in looped.days]
        recovery_day = next(
            (i for i in range(2, len(rev_g)) if rev_g[i] > rev_f[i]),
            None,
        )
        return {
            "revenue_frozen": sum(rev_f),
            "revenue_loop": sum(rev_g),
            "recovery_day": None if recovery_day is None else recovery_day + 1,
            "loop_overhead": looped_s / frozen_s - 1.0,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Time-to-recovered-revenue under day-2 drift")
    print(f"frozen champion revenue:  {out['revenue_frozen']:>9.1f}")
    print(f"closed-loop revenue:      {out['revenue_loop']:>9.1f}")
    print(f"first day loop > frozen:  {out['recovery_day']}")
    print(f"loop wall-time overhead:  {out['loop_overhead']:>9.1%}")
    if not smoke:
        # the E2E acceptance pin, re-asserted at bench scale
        assert out["revenue_loop"] > out["revenue_frozen"]
        assert out["recovery_day"] is not None

    metrics = dict(_TRAJECTORY)
    metrics.update(
        {
            "revenue_delta": {
                "value": out["revenue_loop"] - out["revenue_frozen"],
                "unit": "incremental revenue",
                "direction": "higher",
                "gated": not smoke,  # deterministic seeds: loop must stay ahead
                "tolerance": 0.5,
            },
        }
    )
    if out["recovery_day"] is not None:
        metrics["recovery_day"] = {
            "value": float(out["recovery_day"]),
            "unit": "day",
            "direction": "lower",
        }
    record_result("retraining", metrics, smoke=smoke)
    _TRAJECTORY.clear()

"""Serving-layer throughput: micro-batching and cache leverage.

Measures the :class:`~repro.serving.engine.ScoringEngine` request rate
at micro-batch sizes 1 / 32 / 256 with the LRU cache off and on.  The
numbers quantify the two serving levers the subsystem exists for:

* batching — one vectorised DRP forward pass per flush amortises the
  Python dispatch overhead, so requests/sec must grow sharply with the
  batch size (the ISSUE acceptance bar: >= 10x from batch 1 to 256);
* caching — repeat feature rows (retargeted users) skip the model
  entirely, stacking on top of the batching gain;
* observability — a live :class:`~repro.obs.MetricsRegistry` must cost
  under 5% of scoring throughput (the engine's counters are the same
  objects either way; only span/export bookkeeping differs).

Recorded to the ``BENCH_serving.json`` trajectory when
``REPRO_BENCH_DIR`` / ``REPRO_BENCH_RECORD`` is set (see
``_harness.record_result``).
"""

from __future__ import annotations

import os
import time

import numpy as np

from _harness import get_rdrp, get_setting, print_header, record_result
from repro.obs import MetricsRegistry
from repro.runtime import ProcessBackend
from repro.serving.engine import ScoringEngine
from repro.serving.sharding import ShardedScoringEngine

BATCH_SIZES = (1, 32, 256)
N_REQUESTS = 2048
N_UNIQUE = 256  # unique rows in the cache-on stream (87.5% hit rate)
OVERHEAD_ROUNDS = 5  # best-of rounds for the null-vs-live comparison
N_BULK = 1 << 19  # submit_batch rows (the >= 2M scores/s target)
N_SCALAR_REF = 1 << 15  # per-row reference stream for the bulk ratio

SMOKE_N_REQUESTS = 256
SMOKE_N_UNIQUE = 64
SMOKE_N_BULK = 4096

# areas that several tests contribute to accumulate here; the *last*
# contributing test in file order records the merged dict as ONE
# trajectory run (two appends per session would make the diff's
# latest-run comparison see the first test's gated metrics as dropped)
_SERVING_METRICS: dict[str, dict] = {}
_SHARDED_METRICS: dict[str, dict] = {}


class BulkLinear:
    """Picklable constant-time scorer: isolates engine/transport cost."""

    def __init__(self, w):
        self.w = np.asarray(w, dtype=float)

    def predict_roi(self, x):
        return np.atleast_2d(np.asarray(x, dtype=float)) @ self.w


def _requests_per_second(
    model, rows, batch_size, cache_size, n_unique, metrics=None
) -> tuple[float, float]:
    engine = ScoringEngine(
        model, batch_size=batch_size, cache_size=cache_size, metrics=metrics
    )
    if cache_size:  # warm the cache with the unique rows
        for row in rows[:n_unique]:
            engine.submit(row)
        engine.flush()
    start = time.perf_counter()
    for row in rows:
        engine.submit(row)
    engine.flush()
    elapsed = time.perf_counter() - start
    return len(rows) / elapsed, engine.cache_hit_rate


def test_throughput_batch_and_cache(benchmark, smoke) -> None:
    """requests/sec over the batch-size x cache grid."""
    n_requests = SMOKE_N_REQUESTS if smoke else N_REQUESTS
    n_unique = SMOKE_N_UNIQUE if smoke else N_UNIQUE

    def run() -> dict[tuple[int, str], tuple[float, float]]:
        data = get_setting("criteo", "SuNo")
        model = get_rdrp("criteo", "SuNo").drp  # single-pass DRP scorer
        unique = data.test.x[:n_unique]
        repeated = np.tile(unique, (n_requests // n_unique, 1))
        distinct = data.test.x[:n_requests]
        out = {}
        for batch in BATCH_SIZES:
            out[(batch, "off")] = _requests_per_second(model, distinct, batch, 0, n_unique)
            out[(batch, "on")] = _requests_per_second(
                model, repeated, batch, 4 * n_unique, n_unique
            )
        return out

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header(f"serving throughput — requests/sec ({n_requests} requests)")
    print(f"  {'batch':>6s} {'cache':>6s} {'req/s':>12s} {'hit rate':>9s}")
    for (batch, cache), (rps, hit_rate) in sorted(grid.items()):
        print(f"  {batch:>6d} {cache:>6s} {rps:>12.0f} {hit_rate:>9.2f}")

    rps_1 = grid[(1, "off")][0]
    rps_256 = grid[(256, "off")][0]
    print(f"  batching leverage: {rps_256 / rps_1:.1f}x (bar: >= 10x)")
    # the stream really did hit the cache (smoke sizes land exactly on
    # 0.8: 256 hot requests over 64 warmed rows = 256/320 lookups hit)
    assert grid[(256, "on")][1] >= 0.8
    if not smoke:
        assert rps_256 >= 10.0 * rps_1
        # the cache path must not be slower than cold scoring at equal batch
        assert grid[(256, "on")][0] >= rps_256 * 0.5

    _SERVING_METRICS.update(
        {
            "batching_leverage": {
                "value": rps_256 / rps_1,
                "unit": "x",
                "direction": "higher",
                "gated": True,
                # a ratio of same-machine rates, but CI runners vary;
                # the band still catches batching breaking (~1x)
                "tolerance": 0.4,
            },
            "cache_hit_rate_256": {
                "value": grid[(256, "on")][1],
                "direction": "higher",
                "gated": True,
                "tolerance": 0.05,
            },
            "rps_batch_1": {"value": rps_1, "unit": "req/s"},
            "rps_batch_256": {"value": rps_256, "unit": "req/s"},
            "rps_batch_256_cached": {"value": grid[(256, "on")][0], "unit": "req/s"},
        }
    )


def test_submit_batch_throughput(benchmark, smoke) -> None:
    """Vectorised ingest: ``submit_batch`` + ``take_block`` scores/sec.

    A constant-time linear model isolates what this path is for —
    engine overhead per request.  The scalar reference pays a Python
    loop per row (route, id bookkeeping, buffer append); the bulk path
    amortises all of it into slab copies and O(1) range records, which
    is where the >= 2M scores/s batched target (asserted on >= 4-CPU
    full runs, recorded everywhere) comes from.
    """
    n_bulk = SMOKE_N_BULK if smoke else N_BULK
    n_scalar = min(n_bulk, N_SCALAR_REF)
    chunk = 8192

    def run() -> dict[str, float]:
        rng = np.random.default_rng(0)
        w = rng.normal(size=8)
        rows = rng.normal(size=(n_bulk, 8))
        engine = ScoringEngine(BulkLinear(w), batch_size=4096, cache_size=0)
        start = time.perf_counter()
        blocks = [
            engine.submit_batch(rows[i : i + chunk])
            for i in range(0, n_bulk, chunk)
        ]
        engine.flush()
        total = sum(engine.take_block(ids).size for ids in blocks)
        bulk_elapsed = time.perf_counter() - start
        assert total == n_bulk

        scalar = ScoringEngine(BulkLinear(w), batch_size=4096, cache_size=0)
        start = time.perf_counter()
        ids = [scalar.submit(row) for row in rows[:n_scalar]]
        scalar.flush()
        for rid in ids:
            scalar.take(rid)
        scalar_elapsed = time.perf_counter() - start
        return {
            "bulk_rps": n_bulk / bulk_elapsed,
            "scalar_rps": n_scalar / scalar_elapsed,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = out["bulk_rps"] / out["scalar_rps"]
    cpus = os.cpu_count() or 1
    print_header(f"submit_batch throughput — {n_bulk} rows, linear scorer")
    print(f"  per-row submit: {out['scalar_rps']:>14,.0f} scores/s")
    print(f"  submit_batch:   {out['bulk_rps']:>14,.0f} scores/s")
    print(f"  bulk leverage:  {ratio:.1f}x (target >= 2M scores/s batched)")
    if not smoke and cpus >= 4:
        assert out["bulk_rps"] >= 2e6

    _SERVING_METRICS.update(
        {
            # same-machine, same-process ratio: gates the fast path
            # existing at all (falling back per-row collapses it to ~1x)
            "bulk_over_scalar_speedup": {
                "value": ratio,
                "unit": "x",
                "direction": "higher",
                "gated": True,
                # the magnitude swings with interpreter/BLAS versions
                # (observed ~130x); the band only needs to catch the
                # fast path collapsing to the per-row loop (~1x)
                "tolerance": 0.9,
            },
            "submit_batch_rps": {"value": out["bulk_rps"], "unit": "scores/s"},
            "scalar_submit_rps": {"value": out["scalar_rps"], "unit": "scores/s"},
        }
    )
    record_result("serving", dict(_SERVING_METRICS), smoke=smoke)
    _SERVING_METRICS.clear()


def test_metrics_overhead(benchmark, smoke) -> None:
    """A live registry must cost < 5% of scoring throughput.

    The engine's counters and latency sketch are the *same objects*
    whether or not a registry collects them, so the only added work
    with observability on is the per-flush span and queue gauge.
    Best-of-``OVERHEAD_ROUNDS`` timing on each side squeezes out
    scheduler noise before the ratio is taken.
    """
    n_requests = SMOKE_N_REQUESTS if smoke else N_REQUESTS

    def run() -> tuple[float, float]:
        data = get_setting("criteo", "SuNo")
        model = get_rdrp("criteo", "SuNo").drp
        rows = data.test.x[:n_requests]
        best_null = best_live = 0.0
        for _ in range(OVERHEAD_ROUNDS):
            best_null = max(
                best_null, _requests_per_second(model, rows, 256, 0, 0)[0]
            )
            best_live = max(
                best_live,
                _requests_per_second(
                    model, rows, 256, 0, 0, metrics=MetricsRegistry()
                )[0],
            )
        return best_null, best_live

    best_null, best_live = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = best_live / best_null
    print_header(f"metrics overhead — live/null throughput ({n_requests} requests)")
    print(f"  null registry: {best_null:>10.0f} req/s")
    print(f"  live registry: {best_live:>10.0f} req/s")
    print(f"  ratio: {ratio:.3f} (bar: >= 0.95)")
    if not smoke:  # smoke sizes are too small for a stable ratio
        assert ratio >= 0.95

    record_result(
        "serving_overhead",
        {
            "live_over_null_throughput": {
                "value": ratio,
                "direction": "higher",
                "gated": not smoke,
                "tolerance": 0.05,
            },
            "rps_null_registry": {"value": best_null, "unit": "req/s"},
            "rps_live_registry": {"value": best_live, "unit": "req/s"},
        },
        smoke=smoke,
    )


def test_sharded_fleet_throughput(benchmark, smoke) -> None:
    """1-shard vs 4-shard fleet on a ProcessBackend: the scale-out lever.

    Both fleets pay the same transport tax (pickled dispatch batches on
    a process pool's affinity lanes), so the ratio isolates what
    sharding buys: four DRP forward passes running on four cores.  The
    >= 2.5x bar is asserted only where it is physically possible
    (>= 4 CPUs); everywhere else the speedup is still *recorded* as
    ungated trajectory context, and the accounting contract — every
    submitted request visible in the merged fleet stats — is asserted
    unconditionally.
    """
    n_requests = SMOKE_N_REQUESTS if smoke else N_REQUESTS
    n_shards = 4

    def fleet_rps(n: int, backend) -> tuple[float, dict]:
        model = get_rdrp("criteo", "SuNo").drp
        rows = get_setting("criteo", "SuNo").test.x[:n_requests]
        with ShardedScoringEngine(
            model, n_shards=n, batch_size=256, cache_size=0, backend=backend
        ) as fleet:
            fleet.score_batch(rows[:8])  # warm the lanes / fork the workers
            start = time.perf_counter()
            for i, row in enumerate(rows):
                fleet.submit(row, key=i)
            fleet.flush()
            elapsed = time.perf_counter() - start
            return len(rows) / elapsed, fleet.stats

    def run() -> dict:
        backend = ProcessBackend(n_workers=n_shards)
        try:
            rps_1, stats_1 = fleet_rps(1, backend)
            rps_n, stats_n = fleet_rps(n_shards, backend)
        finally:
            backend.shutdown()
        return {
            "rps_1": rps_1, "rps_n": rps_n,
            "requests_1": stats_1["requests"], "requests_n": stats_n["requests"],
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = out["rps_n"] / out["rps_1"]
    cpus = os.cpu_count() or 1

    print_header(f"sharded fleet throughput — {n_requests} requests, ProcessBackend")
    print(f"  1 shard:  {out['rps_1']:>12,.0f} req/s")
    print(f"  {n_shards} shards: {out['rps_n']:>12,.0f} req/s")
    print(f"  speedup:  {speedup:.2f}x on a {cpus}-CPU machine "
          f"(target >= 2.5x on >= {n_shards} CPUs)")

    # merged fleet accounting sees every request, at either shard count
    assert out["requests_1"] == n_requests + 8
    assert out["requests_n"] == n_requests + 8
    if not smoke and cpus >= n_shards:
        assert speedup >= 2.5

    _SHARDED_METRICS.update(
        {
            # absolute rates and the speedup are machine-bound: a 1-CPU
            # runner records ~1x honestly, so none of them can gate
            "sharded_speedup_4shard": {
                "value": speedup, "unit": "x", "direction": "higher",
            },
            "rps_1shard": {"value": out["rps_1"], "unit": "req/s"},
            "rps_4shard": {"value": out["rps_n"], "unit": "req/s"},
            # ...but the accounting ratio is exact everywhere
            "fleet_requests_accounted": {
                "value": out["requests_n"] / (n_requests + 8),
                "direction": "higher",
                "gated": True,
                "tolerance": 0.01,
            },
        }
    )


def test_zero_copy_dispatch(benchmark, smoke) -> None:
    """shm vs pickled transport on the same process fleet.

    Identical fleets, identical keyless ``submit_batch`` stream; the
    only difference is how dispatches travel — feature blocks staged
    into shared segments with scores returning through the result ring,
    versus pickling both ways.  A constant-time linear model keeps
    model math out of the ratio, so this measures the transport alone.
    The >= 1.3x bar asserts only where the fleet can actually overlap
    (>= 4 CPUs, full mode); the ratio is recorded everywhere, ungated —
    a 1-CPU runner honestly records ~1x.
    """
    n_requests = (SMOKE_N_REQUESTS if smoke else N_REQUESTS) * 4
    n_shards = 4
    chunk = 512

    def fleet_rps(transport: str, backend, rows) -> float:
        rng = np.random.default_rng(1)
        with ShardedScoringEngine(
            BulkLinear(rng.normal(size=rows.shape[1])),
            n_shards=n_shards,
            batch_size=256,
            cache_size=0,
            dispatch_size=64,
            backend=backend,
            transport=transport,
        ) as fleet:
            fleet.score_batch(rows[:8])  # warm the lanes / fork workers
            start = time.perf_counter()
            for i in range(0, len(rows), chunk):
                fleet.submit_batch(rows[i : i + chunk])
            fleet.flush()
            n_scored = len(fleet.drain())
            elapsed = time.perf_counter() - start
        assert n_scored == len(rows)
        return len(rows) / elapsed

    def run() -> dict[str, float]:
        rows = np.random.default_rng(2).normal(size=(n_requests, 32))
        backend = ProcessBackend(n_workers=n_shards)
        try:
            return {
                "rps_pickle": fleet_rps("pickle", backend, rows),
                "rps_shm": fleet_rps("shm", backend, rows),
            }
        finally:
            backend.shutdown()

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = out["rps_shm"] / out["rps_pickle"]
    cpus = os.cpu_count() or 1
    print_header(
        f"zero-copy dispatch — {n_requests} keyless rows, {n_shards}-shard fleet"
    )
    print(f"  pickled transport: {out['rps_pickle']:>12,.0f} req/s")
    print(f"  shm transport:     {out['rps_shm']:>12,.0f} req/s")
    print(f"  speedup: {speedup:.2f}x on a {cpus}-CPU machine "
          f"(target >= 1.3x on >= {n_shards} CPUs)")
    if not smoke and cpus >= n_shards:
        assert speedup >= 1.3

    _SHARDED_METRICS.update(
        {
            "zero_copy_dispatch_speedup": {
                "value": speedup, "unit": "x", "direction": "higher",
            },
            "rps_shm_transport": {"value": out["rps_shm"], "unit": "req/s"},
            "rps_pickle_transport": {"value": out["rps_pickle"], "unit": "req/s"},
        }
    )
    record_result("serving_sharded", dict(_SHARDED_METRICS), smoke=smoke)
    _SHARDED_METRICS.clear()

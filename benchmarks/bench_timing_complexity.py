"""Section IV-D: time-complexity profile of rDRP vs DRP.

The paper's claims, reproduced empirically:

* Training phase: identical (rDRP *is* DRP at train time).
* Calibration phase: rDRP-only, O(N_cali (k + log N_cali)) — the bench
  shows near-linear scaling in the calibration size.
* Inference phase: rDRP costs ~T MC passes per sample vs 1 for DRP
  (parallelisable in production).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _harness import MC_SAMPLES, get_rdrp, get_setting, print_header, record_result
from repro.core.rdrp import RobustDRP

# metrics accumulated across the three phase tests; the last test in
# file order records the lot as one trajectory run
_METRICS: dict[str, dict] = {}


def test_calibration_phase_scaling(benchmark) -> None:
    """Calibration wall-clock vs N_cali (paper: quasi-linear)."""

    def run() -> list[tuple[int, float]]:
        data = get_setting("criteo", "SuNo")
        base = get_rdrp("criteo", "SuNo")
        rows = []
        sizes = (300, 600, min(1200, data.calibration.n))
        for n_cali in sizes:
            ca = data.calibration.subset(np.arange(n_cali))
            model = RobustDRP(drp=base.drp, mc_samples=MC_SAMPLES)
            start = time.perf_counter()
            model.calibrate(ca.x, ca.t, ca.y_r, ca.y_c)
            rows.append((n_cali, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("§IV-D — calibration phase scaling")
    for n_cali, seconds in rows:
        print(f"  N_cali={n_cali:<6d} {seconds * 1000:8.1f} ms")
    # quasi-linear: 4x the data should cost well under ~10x the time
    assert rows[-1][1] < rows[0][1] * 10 + 0.5
    _METRICS["calibration_scaling_ratio"] = {
        "value": rows[-1][1] / max(rows[0][1], 1e-9),
        "unit": "x",
        "direction": "lower",
    }


def test_inference_phase_overhead(benchmark) -> None:
    """rDRP inference ~= T MC passes; DRP inference = 1 pass."""

    def run() -> dict[str, float]:
        data = get_setting("criteo", "SuNo")
        model = get_rdrp("criteo", "SuNo")
        x = data.test.x

        start = time.perf_counter()
        model.drp.predict_roi(x)
        drp_seconds = time.perf_counter() - start

        start = time.perf_counter()
        model.predict_roi(x)
        rdrp_seconds = time.perf_counter() - start
        return {"DRP": drp_seconds, "rDRP": rdrp_seconds}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("§IV-D — inference phase (seconds, full test split)")
    ratio = timings["rDRP"] / max(timings["DRP"], 1e-9)
    for name, seconds in timings.items():
        print(f"  {name:<6s} {seconds * 1000:8.1f} ms")
    print(f"  ratio rDRP/DRP = {ratio:.1f}x (T = {MC_SAMPLES} MC passes)")
    # the overhead should be on the order of T single passes (loose bound)
    assert ratio < MC_SAMPLES * 6
    _METRICS["inference_ratio_rdrp_drp"] = {
        "value": ratio,
        "unit": "x",
        "direction": "lower",
    }


def test_training_phase_identical(benchmark, smoke) -> None:
    """rDRP adds nothing at training time — it trains the same DRP."""

    def run() -> dict[str, float]:
        data = get_setting("criteo", "InNo")
        tr = data.train
        from repro.core.drp import DRPModel

        start = time.perf_counter()
        DRPModel(hidden=32, epochs=20, n_restarts=1, random_state=0).fit(
            tr.x, tr.t, tr.y_r, tr.y_c
        )
        drp_seconds = time.perf_counter() - start

        start = time.perf_counter()
        RobustDRP(hidden=32, epochs=20, n_restarts=1, random_state=0).fit(
            tr.x, tr.t, tr.y_r, tr.y_c
        )
        rdrp_seconds = time.perf_counter() - start
        return {"DRP": drp_seconds, "rDRP": rdrp_seconds}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("§IV-D — training phase (seconds, InNo split)")
    for name, seconds in timings.items():
        print(f"  {name:<6s} {seconds:8.3f} s")
    assert timings["rDRP"] == pytest.approx(timings["DRP"], rel=1.0)

    # the train-phase ratio is pinned near 1 by construction, so it is
    # machine-portable enough to gate (at the same loose band the
    # assertion above uses); wall-clock ratios from the earlier phase
    # tests ride along ungated
    _METRICS["training_ratio_rdrp_drp"] = {
        "value": timings["rDRP"] / max(timings["DRP"], 1e-9),
        "unit": "x",
        "direction": "lower",
        "gated": True,
        "tolerance": 1.0,
    }
    record_result("timing_complexity", dict(_METRICS), smoke=smoke)
    _METRICS.clear()

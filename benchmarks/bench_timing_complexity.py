"""Section IV-D: time-complexity profile of rDRP vs DRP.

The paper's claims, reproduced empirically:

* Training phase: identical (rDRP *is* DRP at train time).
* Calibration phase: rDRP-only, O(N_cali (k + log N_cali)) — the bench
  shows near-linear scaling in the calibration size.
* Inference phase: rDRP costs ~T MC passes per sample vs 1 for DRP
  (parallelisable in production).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _harness import MC_SAMPLES, get_rdrp, get_setting, print_header
from repro.core.rdrp import RobustDRP


def test_calibration_phase_scaling(benchmark) -> None:
    """Calibration wall-clock vs N_cali (paper: quasi-linear)."""

    def run() -> list[tuple[int, float]]:
        data = get_setting("criteo", "SuNo")
        base = get_rdrp("criteo", "SuNo")
        rows = []
        sizes = (300, 600, min(1200, data.calibration.n))
        for n_cali in sizes:
            ca = data.calibration.subset(np.arange(n_cali))
            model = RobustDRP(drp=base.drp, mc_samples=MC_SAMPLES)
            start = time.perf_counter()
            model.calibrate(ca.x, ca.t, ca.y_r, ca.y_c)
            rows.append((n_cali, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("§IV-D — calibration phase scaling")
    for n_cali, seconds in rows:
        print(f"  N_cali={n_cali:<6d} {seconds * 1000:8.1f} ms")
    # quasi-linear: 4x the data should cost well under ~10x the time
    assert rows[-1][1] < rows[0][1] * 10 + 0.5


def test_inference_phase_overhead(benchmark) -> None:
    """rDRP inference ~= T MC passes; DRP inference = 1 pass."""

    def run() -> dict[str, float]:
        data = get_setting("criteo", "SuNo")
        model = get_rdrp("criteo", "SuNo")
        x = data.test.x

        start = time.perf_counter()
        model.drp.predict_roi(x)
        drp_seconds = time.perf_counter() - start

        start = time.perf_counter()
        model.predict_roi(x)
        rdrp_seconds = time.perf_counter() - start
        return {"DRP": drp_seconds, "rDRP": rdrp_seconds}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("§IV-D — inference phase (seconds, full test split)")
    ratio = timings["rDRP"] / max(timings["DRP"], 1e-9)
    for name, seconds in timings.items():
        print(f"  {name:<6s} {seconds * 1000:8.1f} ms")
    print(f"  ratio rDRP/DRP = {ratio:.1f}x (T = {MC_SAMPLES} MC passes)")
    # the overhead should be on the order of T single passes (loose bound)
    assert ratio < MC_SAMPLES * 6


def test_training_phase_identical(benchmark) -> None:
    """rDRP adds nothing at training time — it trains the same DRP."""

    def run() -> dict[str, float]:
        data = get_setting("criteo", "InNo")
        tr = data.train
        from repro.core.drp import DRPModel

        start = time.perf_counter()
        DRPModel(hidden=32, epochs=20, n_restarts=1, random_state=0).fit(
            tr.x, tr.t, tr.y_r, tr.y_c
        )
        drp_seconds = time.perf_counter() - start

        start = time.perf_counter()
        RobustDRP(hidden=32, epochs=20, n_restarts=1, random_state=0).fit(
            tr.x, tr.t, tr.y_r, tr.y_c
        )
        rdrp_seconds = time.perf_counter() - start
        return {"DRP": drp_seconds, "rDRP": rdrp_seconds}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("§IV-D — training phase (seconds, InNo split)")
    for name, seconds in timings.items():
        print(f"  {name:<6s} {seconds:8.3f} s")
    assert timings["rDRP"] == pytest.approx(timings["DRP"], rel=1.0)

"""Fig. 1: the two DRP failure modes that motivate rDRP.

(a) Covariate shift: the same sufficiently-trained DRP model evaluated
    on an unshifted vs a shifted test set — the shifted cost curve
    should enclose less area.
(b) Insufficient data: DRP trained on the full vs the 0.15-subsampled
    training split, both evaluated on the same unshifted test set.

Both panels print the (area vs random-baseline) rows the figure plots.
"""

from __future__ import annotations

import numpy as np

from _harness import evaluate, get_rdrp, get_setting, print_header


def test_fig1a_covariate_shift(benchmark) -> None:
    def run_panel() -> dict[str, float]:
        no_shift = get_setting("criteo", "SuNo")
        with_shift = get_setting("criteo", "SuCo")
        model = get_rdrp("criteo", "SuNo").drp  # trained on unshifted data
        rng = np.random.default_rng(0)
        return {
            "DRP (no covariate shift)": evaluate(
                model.predict_roi(no_shift.test.x), no_shift
            ),
            "DRP (covariate shift)": evaluate(
                model.predict_roi(with_shift.test.x), with_shift
            ),
            "Random": float(
                np.mean(
                    [
                        evaluate(rng.random(no_shift.test.n), no_shift)
                        for _ in range(5)
                    ]
                )
            ),
        }

    areas = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    print_header("Fig. 1(a) — covariate shift degrades DRP (AUCC)")
    for name, area in areas.items():
        print(f"  {name:<28s} {area:.4f}")
    assert areas["DRP (no covariate shift)"] > areas["Random"] - 0.05


def test_fig1b_insufficient_data(benchmark) -> None:
    def run_panel() -> dict[str, float]:
        sufficient = get_setting("criteo", "SuNo")
        insufficient = get_setting("criteo", "InNo")
        model_su = get_rdrp("criteo", "SuNo").drp
        model_in = get_rdrp("criteo", "InNo").drp
        rng = np.random.default_rng(0)
        return {
            "DRP (sufficient data)": evaluate(
                model_su.predict_roi(sufficient.test.x), sufficient
            ),
            "DRP (insufficient data)": evaluate(
                model_in.predict_roi(insufficient.test.x), insufficient
            ),
            "Random": float(
                np.mean(
                    [
                        evaluate(rng.random(sufficient.test.n), sufficient)
                        for _ in range(5)
                    ]
                )
            ),
        }

    areas = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    print_header("Fig. 1(b) — insufficient data degrades DRP (AUCC)")
    for name, area in areas.items():
        print(f"  {name:<28s} {area:.4f}")
    assert areas["DRP (sufficient data)"] > areas["Random"] - 0.05

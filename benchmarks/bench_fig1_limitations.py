"""Fig. 1: the two DRP failure modes that motivate rDRP.

(a) Covariate shift: the same sufficiently-trained DRP model evaluated
    on an unshifted vs a shifted test set — the shifted cost curve
    should enclose less area.
(b) Insufficient data: DRP trained on the full vs the 0.15-subsampled
    training split, both evaluated on the same unshifted test set.

Both panels print the (area vs random-baseline) rows the figure plots.
"""

from __future__ import annotations

import numpy as np

from _harness import evaluate, get_rdrp, get_setting, print_header, record_result

#: panel results stashed by fig1a, recorded together with fig1b's (the
#: two panels are one figure, hence one trajectory entry per run)
_PANELS: dict[str, dict[str, float]] = {}


def _record_trajectory(smoke: bool) -> None:
    a, b = _PANELS["fig1a"], _PANELS["fig1b"]
    record_result(
        "fig1_limitations",
        {
            # the four DRP AUCC levels are seed-pinned: gate at the
            # default relative band
            "aucc_no_shift": {
                "value": a["DRP (no covariate shift)"],
                "direction": "higher",
                "gated": True,
            },
            "aucc_shift": {
                "value": a["DRP (covariate shift)"],
                "direction": "higher",
                "gated": True,
            },
            "aucc_sufficient": {
                "value": b["DRP (sufficient data)"],
                "direction": "higher",
                "gated": True,
            },
            "aucc_insufficient": {
                "value": b["DRP (insufficient data)"],
                "direction": "higher",
                "gated": True,
            },
            # the figure's message is the degradation deltas; both
            # straddle zero at this scale, so they ride ungated
            "shift_degradation": {
                "value": a["DRP (no covariate shift)"] - a["DRP (covariate shift)"],
                "direction": "higher",
            },
            "data_degradation": {
                "value": b["DRP (sufficient data)"] - b["DRP (insufficient data)"],
                "direction": "higher",
            },
        },
        smoke=smoke,
    )
    _PANELS.clear()


def test_fig1a_covariate_shift(benchmark, smoke) -> None:
    def run_panel() -> dict[str, float]:
        no_shift = get_setting("criteo", "SuNo")
        with_shift = get_setting("criteo", "SuCo")
        model = get_rdrp("criteo", "SuNo").drp  # trained on unshifted data
        rng = np.random.default_rng(0)
        return {
            "DRP (no covariate shift)": evaluate(
                model.predict_roi(no_shift.test.x), no_shift
            ),
            "DRP (covariate shift)": evaluate(
                model.predict_roi(with_shift.test.x), with_shift
            ),
            "Random": float(
                np.mean(
                    [
                        evaluate(rng.random(no_shift.test.n), no_shift)
                        for _ in range(5)
                    ]
                )
            ),
        }

    areas = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    print_header("Fig. 1(a) — covariate shift degrades DRP (AUCC)")
    for name, area in areas.items():
        print(f"  {name:<28s} {area:.4f}")
    assert areas["DRP (no covariate shift)"] > areas["Random"] - 0.05
    _PANELS["fig1a"] = areas


def test_fig1b_insufficient_data(benchmark, smoke) -> None:
    def run_panel() -> dict[str, float]:
        sufficient = get_setting("criteo", "SuNo")
        insufficient = get_setting("criteo", "InNo")
        model_su = get_rdrp("criteo", "SuNo").drp
        model_in = get_rdrp("criteo", "InNo").drp
        rng = np.random.default_rng(0)
        return {
            "DRP (sufficient data)": evaluate(
                model_su.predict_roi(sufficient.test.x), sufficient
            ),
            "DRP (insufficient data)": evaluate(
                model_in.predict_roi(insufficient.test.x), insufficient
            ),
            "Random": float(
                np.mean(
                    [
                        evaluate(rng.random(sufficient.test.n), sufficient)
                        for _ in range(5)
                    ]
                )
            ),
        }

    areas = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    print_header("Fig. 1(b) — insufficient data degrades DRP (AUCC)")
    for name, area in areas.items():
        print(f"  {name:<28s} {area:.4f}")
    assert areas["DRP (sufficient data)"] > areas["Random"] - 0.05

    _PANELS["fig1b"] = areas
    if "fig1a" in _PANELS:
        _record_trajectory(smoke)

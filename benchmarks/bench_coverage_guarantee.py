"""Eq. 4: the conformal coverage guarantee, swept over alpha.

Calibrates rDRP's conformal stage on the calibration split and checks
empirical coverage of the test-set surrogate labels ``roi*`` against
the promised ``1 - alpha``, for several alpha values.  This is the
paper's statistical backbone: the rest of rDRP only *uses* these
intervals.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import MC_SAMPLES, get_rdrp, get_setting, print_header, record_result
from repro.core.conformal import ConformalCalibrator, empirical_coverage

ALPHAS = (0.05, 0.1, 0.2, 0.4)
SETTINGS = ("SuNo", "InCo")

_ROWS: dict[str, list[tuple[float, float, float]]] = {}


def _record_trajectory(smoke: bool) -> None:
    rows = [row for sweep in _ROWS.values() for row in sweep]
    coverages = [coverage for _, coverage, _ in rows]
    # worst shortfall vs the promised 1 - alpha across every cell
    shortfall = max((1.0 - alpha) - coverage for alpha, coverage, _ in rows)
    record_result(
        "coverage_guarantee",
        {
            "sweeps": {
                "value": float(len(_ROWS)),
                "unit": "settings",
                "gated": True,
                "tolerance": 0.01,
            },
            # mean empirical coverage is seed-pinned and ~0.8: gate it
            "coverage_mean": {
                "value": float(np.mean(coverages)),
                "direction": "higher",
                "gated": True,
            },
            # the guarantee's slack hovers near zero — context only
            "coverage_shortfall_max": {
                "value": float(shortfall),
                "direction": "lower",
            },
            "interval_width_mean": {
                "value": float(np.mean([w for _, _, w in rows])),
                "direction": "lower",
            },
        },
        smoke=smoke,
    )
    _ROWS.clear()


@pytest.mark.parametrize("setting", SETTINGS)
def test_coverage_sweep(benchmark, smoke, setting: str) -> None:
    def run() -> list[tuple[float, float, float]]:
        data = get_setting("criteo", setting)
        model = get_rdrp("criteo", setting)
        ca, te = data.calibration, data.test

        roi_hat_ca, r_ca = model.drp.predict_roi_mc(ca.x, n_samples=MC_SAMPLES)
        roi_star_ca = model.roi_star_estimator.estimate(roi_hat_ca, ca.t, ca.y_r, ca.y_c)
        roi_hat_te, r_te = model.drp.predict_roi_mc(te.x, n_samples=MC_SAMPLES)
        roi_star_te = model.roi_star_estimator.estimate(roi_hat_te, te.t, te.y_r, te.y_c)

        rows = []
        for alpha in ALPHAS:
            calibrator = ConformalCalibrator(alpha=alpha)
            calibrator.calibrate(roi_star_ca, roi_hat_ca, r_ca)
            lower, upper = calibrator.interval(roi_hat_te, r_te)
            coverage = empirical_coverage(roi_star_te, lower, upper)
            width = float(np.mean(upper - lower))
            rows.append((alpha, coverage, width))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header(f"Eq. 4 — conformal coverage sweep, criteo {setting}")
    print(f"  {'alpha':<8s}{'target':<10s}{'coverage':<12s}{'mean width'}")
    for alpha, coverage, width in rows:
        print(f"  {alpha:<8.2f}{1 - alpha:<10.2f}{coverage:<12.3f}{width:.3f}")

    # coverage tracks 1 - alpha (slack: binned roi* labels + MC redraws)
    for alpha, coverage, _ in rows:
        assert coverage >= (1.0 - alpha) - 0.12
    # intervals must widen as alpha shrinks
    widths = [w for _, _, w in rows]
    assert widths == sorted(widths, reverse=True)

    _ROWS[setting] = rows
    if len(_ROWS) == len(SETTINGS):
        _record_trajectory(smoke)

"""Benchmark-suite configuration.

All benchmarks use ``benchmark.pedantic(..., rounds=1, iterations=1)``:
each cell is a full train/evaluate experiment, not a microbenchmark, so
re-running it for statistical timing would multiply the suite's wall
clock for no insight.
"""

import sys
from pathlib import Path

import pytest

# make the sibling _harness module importable regardless of rootdir
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def smoke(request) -> bool:
    """True when ``--smoke`` was passed: tiny sizes, no perf assertions."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture(autouse=True)
def _profile_bench(request):
    """With ``--profile``, run each ``benchmark.pedantic`` target under
    cProfile.

    The profiler must start and stop *inside* the plugin's timing
    window: pytest-benchmark's ``PauseInstrumentation`` snapshots
    ``sys.getprofile()`` around the run and cannot restore a live
    ``cProfile.Profile``, so wrapping the whole test would break it.
    Wrapping only the target keeps both happy.  One
    ``<test-id>.pstats`` + ``.txt`` pair per pedantic call lands in
    ``profiles/`` (or ``$REPRO_PROFILE_DIR``); CI's bench-smoke job
    uploads the directory as an artifact, so the hot-path evidence
    behind a perf number travels with the run that produced it.
    """
    if not request.config.getoption("--profile") or "benchmark" not in request.fixturenames:
        yield
        return
    from _harness import profile_to

    bench = request.getfixturevalue("benchmark")
    original = bench.pedantic
    safe = request.node.nodeid.replace("/", "_").replace("::", "-")
    calls = iter(range(1000))

    def pedantic(target, *args, **kwargs):
        i = next(calls)
        name = safe if i == 0 else f"{safe}-{i}"

        def wrapped(*targs, **tkwargs):
            with profile_to(name):
                return target(*targs, **tkwargs)

        return original(wrapped, *args, **kwargs)

    bench.pedantic = pedantic
    yield

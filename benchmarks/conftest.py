"""Benchmark-suite configuration.

All benchmarks use ``benchmark.pedantic(..., rounds=1, iterations=1)``:
each cell is a full train/evaluate experiment, not a microbenchmark, so
re-running it for statistical timing would multiply the suite's wall
clock for no insight.
"""

import sys
from pathlib import Path

import pytest

# make the sibling _harness module importable regardless of rootdir
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def smoke(request) -> bool:
    """True when ``--smoke`` was passed: tiny sizes, no perf assertions."""
    return bool(request.config.getoption("--smoke"))

"""Observability demo: a fully instrumented serving day.

One :class:`~repro.obs.MetricsRegistry` collects every layer of a
replayed campaign — the micro-batching :class:`ScoringEngine`'s
counters and latency sketch, the :class:`BudgetPacer`'s threshold and
spend gauges, and the clock-aware flush spans — then the report shows
the three things the ``repro.obs`` layer exists for:

* per-day **metric deltas** (what each day did, not lifetime totals);
* latency **quantiles from the log-bucket sketch** (~1% error, sees
  every request even after the raw log's size cap evicts entries);
* the **Prometheus text rendering** a scrape endpoint would serve.

Run:
    python examples/serving_metrics.py [--users 5000] [--days 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.ab import Platform
from repro.obs import MetricsRegistry, to_prometheus
from repro.runtime import ManualClock
from repro.serving import BudgetPacer, ScoringEngine, TrafficReplay


class LinearROI:
    """Cheap deterministic scorer so the demo runs in seconds."""

    def __init__(self, w: np.ndarray) -> None:
        self.w = np.asarray(w, dtype=float)

    def predict_roi(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.clip(x @ self.w, 1e-6, 1.0 - 1e-6)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=5_000, help="arrivals per day")
    parser.add_argument("--days", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    metrics = MetricsRegistry()
    platform = Platform(dataset="criteo", random_state=args.seed)
    clock = ManualClock()
    rng = np.random.default_rng(args.seed)
    engine = ScoringEngine(
        LinearROI(rng.normal(size=12) * 0.1),
        batch_size=64,
        cache_size=512,
        max_latency_ms=20.0,
        clock=clock,
        metrics=metrics,
        latency_log_size=1_000,
    )
    replay = TrafficReplay(platform, engine, interarrival_s=0.001)

    print(f"== Replaying {args.days} instrumented days of {args.users} users ==")
    for day in range(1, args.days + 1):
        pacer = BudgetPacer(0.3 * args.users * 0.05, args.users, metrics=metrics)
        result = replay.replay_day(args.users, day=day, pacer=pacer)
        delta = result.metrics_delta
        print(f"\nday {day}: {result.summary()}")
        print("  per-day metric deltas (counters only):")
        for name, m in sorted(delta.items()):
            if m["kind"] == "counter" and m["value"]:
                print(f"    {name:32s} {m['value']:>10.0f}")
        p50, p95, p99 = (result.latency_quantile(q) for q in (0.5, 0.95, 0.99))
        print(
            f"  submit→score latency (sketch): p50={1000*p50:.2f}ms "
            f"p95={1000*p95:.2f}ms p99={1000*p99:.2f}ms "
            f"(raw log kept {len(result.latencies)}, "
            f"evicted {result.latencies_dropped})"
        )

    print("\n== Campaign totals (what a Prometheus scrape would see) ==")
    text = to_prometheus(metrics.snapshot())
    for line in text.splitlines():
        # histograms render dozens of bucket lines; elide them here
        if "_bucket{" not in line:
            print(f"  {line}")
    n_buckets = sum("_bucket{" in line for line in text.splitlines())
    print(f"  ... plus {n_buckets} histogram bucket samples")


if __name__ == "__main__":
    main()

"""Online serving demo: fit → register → replay a day of traffic.

The offline pipeline (see ``quickstart.py``) decides the whole cohort
at once.  This demo runs the same fitted rDRP model the way the
paper's platform actually deploys it: users arrive one at a time, a
micro-batching :class:`ScoringEngine` serves scores, and a streaming
:class:`BudgetPacer` admits users so the daily budget lasts until the
last arrival.  The report compares the online policy against the
offline greedy oracle (Algorithm 1 with the whole day visible) and
prints the pacing curve.

Run:
    python examples/online_serving.py [--users 10000] [--batch 256]
"""

from __future__ import annotations

import argparse


import repro
from repro.serving import ConformalGatedPolicy, GreedyROIPolicy


def print_pacing_curve(result, n_buckets: int = 10) -> None:
    """Render cumulative spend vs the uniform target, hour by hour."""
    traj = result.spend_trajectory
    print(f"\n  {'progress':>9s} {'spent':>9s} {'target':>9s}  pacing")
    for b in range(1, n_buckets + 1):
        frac = b / n_buckets
        spent = traj[int(frac * len(traj)) - 1]
        target = result.budget * frac
        bar = "#" * int(round(30 * spent / max(result.budget, 1e-9)))
        print(f"  {frac:9.0%} {spent:9.1f} {target:9.1f}  {bar}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=10_000, help="arrivals per day")
    parser.add_argument("--batch", type=int, default=256, help="engine micro-batch size")
    parser.add_argument("--n", type=int, default=9000, help="training corpus size")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("== Fit and calibrate rDRP (the offline phases) ==")
    data = repro.make_setting("criteo", "SuNo", n_sufficient=args.n, random_state=args.seed)
    model = repro.RobustDRP(random_state=args.seed, hidden=48, epochs=60, mc_samples=15)
    model.fit(data.train.x, data.train.t, data.train.y_r, data.train.y_c)
    model.calibrate(
        data.calibration.x, data.calibration.t, data.calibration.y_r, data.calibration.y_c
    )
    print(f"selected calibration form: {model.selected_form}, q_hat={model.q_hat:.3f}")

    print("\n== Register: rDRP champion, raw DRP challenger at a 10% split ==")
    registry = repro.ModelRegistry(traffic_split=0.1, random_state=args.seed)
    v1 = registry.register(model, name="rdrp", promote=True)
    v2 = registry.register(model.drp, name="drp-raw")
    print(f"champion=v{v1} challenger=v{v2} split={registry.traffic_split:.0%}")

    print(f"\n== Replay one day of {args.users} arrivals (batch={args.batch}) ==")
    platform = repro.Platform(dataset="criteo", random_state=args.seed)
    engine = repro.ScoringEngine(
        registry, policy=GreedyROIPolicy(), batch_size=args.batch, cache_size=8192
    )
    replay = repro.TrafficReplay(platform, engine)
    result = replay.replay_day(args.users, day=1, budget_fraction=0.3)

    s = result.summary()
    print(f"throughput:       {s['events_per_second']:>10.0f} events/s")
    print(f"treated:          {result.n_treated} / {result.n_events}")
    print(f"spend:            {result.spend:.1f} / budget {result.budget:.1f}  "
          f"(never overspends: {result.spend <= result.budget})")
    print(f"online revenue:   {result.incremental_revenue:.1f}")
    print(f"oracle revenue:   {result.oracle_revenue:.1f}  "
          f"(offline greedy, whole day visible)")
    print(f"revenue ratio:    {result.revenue_ratio:.1%}  (price of streaming)")
    print(f"engine stats:     {result.engine_stats}")
    print_pacing_curve(result)

    print("\n== Same day through the conformal-gated robust policy ==")
    gated_engine = repro.ScoringEngine(
        registry, policy=ConformalGatedPolicy(), batch_size=args.batch, cache_size=8192
    )
    gated = repro.TrafficReplay(
        repro.Platform(dataset="criteo", random_state=args.seed), gated_engine
    ).replay_day(args.users, day=1, budget_fraction=0.3)
    print(f"gated revenue ratio: {gated.revenue_ratio:.1%} "
          f"(treats only users whose conformal lower bound clears the threshold)")

    print("\n== Challenger promotion ==")
    registry.promote()
    print(f"champion is now: {registry.champion.name} "
          f"(requests served per version, model-scored + cache: "
          f"{ {f'v{v.version}': v.served for v in registry.versions()} })")


if __name__ == "__main__":
    main()

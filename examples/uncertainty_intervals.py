"""Conformal ROI intervals: validity, widths, and what they flag.

Demonstrates the statistical core of rDRP (Eq. 3 / Algorithm 3 / Eq. 4):

1. calibrate conformal intervals at several error rates alpha and check
   the empirical coverage of the test-set surrogate labels roi*;
2. show that intervals widen as alpha shrinks;
3. list the test individuals with the widest intervals — the ones whose
   DRP point estimates the model itself flags as least reliable, which
   is the signal rDRP's heuristic calibration consumes.

Run:
    python examples/uncertainty_intervals.py [--n 10000]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.core.conformal import ConformalCalibrator, empirical_coverage


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=10000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    data = repro.make_setting("criteo", "InNo", n_sufficient=args.n, random_state=args.seed)
    model = repro.RobustDRP(random_state=args.seed, hidden=48, epochs=80, mc_samples=30)
    model.fit(data.train.x, data.train.t, data.train.y_r, data.train.y_c)

    ca, te = data.calibration, data.test
    roi_hat_ca, r_ca = model.drp.predict_roi_mc(ca.x, n_samples=30)
    roi_star_ca = model.roi_star_estimator.estimate(roi_hat_ca, ca.t, ca.y_r, ca.y_c)
    roi_hat_te, r_te = model.drp.predict_roi_mc(te.x, n_samples=30)
    roi_star_te = model.roi_star_estimator.estimate(roi_hat_te, te.t, te.y_r, te.y_c)

    print("== Eq. 4 coverage sweep (target vs empirical) ==")
    print(f"{'alpha':<8s}{'target':<10s}{'coverage':<12s}{'mean width'}")
    for alpha in (0.05, 0.1, 0.2, 0.4):
        calibrator = ConformalCalibrator(alpha=alpha)
        calibrator.calibrate(roi_star_ca, roi_hat_ca, r_ca)
        lower, upper = calibrator.interval(roi_hat_te, r_te)
        coverage = empirical_coverage(roi_star_te, lower, upper)
        print(f"{alpha:<8.2f}{1 - alpha:<10.2f}{coverage:<12.3f}{np.mean(upper - lower):.3f}")

    print("\n== The ten least-reliable point estimates (widest intervals) ==")
    calibrator = ConformalCalibrator(alpha=0.1)
    calibrator.calibrate(roi_star_ca, roi_hat_ca, r_ca)
    lower, upper = calibrator.interval(roi_hat_te, r_te)
    width = upper - lower
    worst = np.argsort(-width)[:10]
    print(f"{'rank':<6s}{'roi_hat':<10s}{'interval':<20s}{'true roi'}")
    for rank, i in enumerate(worst, start=1):
        interval = f"[{lower[i]:.3f}, {upper[i]:.3f}]"
        print(f"{rank:<6d}{roi_hat_te[i]:<10.3f}{interval:<20s}{te.roi[i]:.3f}")

    narrow = width < np.median(width)
    err_narrow = float(np.mean(np.abs(roi_hat_te[narrow] - te.roi[narrow])))
    err_wide = float(np.mean(np.abs(roi_hat_te[~narrow] - te.roi[~narrow])))
    print(f"\nmean |error| with narrow intervals: {err_narrow:.3f}")
    print(f"mean |error| with wide   intervals: {err_wide:.3f}")
    print(
        "(On the authors' production stack wide intervals predicted larger "
        "errors; with a laptop-scale numpy MLP the MC-dropout std is a much "
        "weaker error signal — see EXPERIMENTS.md for the discussion.)"
    )


if __name__ == "__main__":
    main()

"""Multi-day serving demo: deadline flushing + cross-day budget pacing.

Two runtime-layer features in one campaign, on simulated time:

1. **Deadline flush** — the :class:`ScoringEngine` runs with
   ``max_latency_ms`` on a :class:`ManualClock` the replay advances by
   the inter-arrival gap, so a half-empty micro-batch is flushed the
   moment its oldest request hits the deadline.  The latency report
   (p50/p95/max) proves no request ever waits longer than the bound.
2. **Cross-day carryover** — :meth:`TrafficReplay.replay_days` chains
   the days through a :class:`MultiDayPacer`: whatever day *d* leaves
   unspent (the strict boundary and threshold conservatism always
   strand a little) funds day *d+1*'s pacing curve, so the campaign
   converges on its cumulative plan instead of leaking every midnight.

The scorer is a cheap least-squares probe of the true ROI (good enough
to rank users; this demo is about the serving runtime, not the model).

Run:
    python examples/multi_day_serving.py [--days 3] [--users 6000]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.runtime import ManualClock


class ProbeROI:
    """Least-squares ROI probe: one lstsq fit on a labelled sample."""

    def __init__(self, n: int = 4000, seed: int = 5) -> None:
        probe = repro.criteo_uplift_v2(n, random_state=seed)
        self.w = np.linalg.lstsq(probe.x, probe.roi, rcond=None)[0]

    def predict_roi(self, x: np.ndarray) -> np.ndarray:
        return np.atleast_2d(np.asarray(x, dtype=float)) @ self.w


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=3, help="campaign length")
    parser.add_argument("--users", type=int, default=6000, help="arrivals per day")
    parser.add_argument("--batch", type=int, default=256, help="engine micro-batch size")
    parser.add_argument("--latency-ms", type=float, default=5.0, help="flush deadline")
    parser.add_argument("--interarrival-ms", type=float, default=0.25,
                        help="simulated gap between arrivals")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"== {args.days}-day campaign, {args.users} arrivals/day ==")
    print(f"engine: batch={args.batch}, deadline={args.latency_ms}ms, "
          f"arrivals every {args.interarrival_ms}ms (simulated)")

    platform = repro.Platform(dataset="criteo", random_state=args.seed)
    engine = repro.ScoringEngine(
        ProbeROI(),
        batch_size=args.batch,
        cache_size=0,
        max_latency_ms=args.latency_ms,
        clock=ManualClock(),
    )
    replay = repro.TrafficReplay(
        platform, engine, interarrival_s=args.interarrival_ms / 1000.0
    )
    result = replay.replay_days(args.days, args.users, budget_fraction=0.3)

    print("\n-- cross-day pacing (carry funds the next day's curve) --")
    print(f"  {'day':>4s} {'base':>9s} {'budget':>9s} {'spent':>9s} "
          f"{'carry out':>9s} {'revenue':>9s}")
    for d, (day, (base, budget, spent, carry)) in enumerate(
        zip(result.days, result.ledger), start=1
    ):
        print(f"  {d:>4d} {base:>9.1f} {budget:>9.1f} {spent:>9.1f} "
              f"{carry:>9.1f} {day.incremental_revenue:>9.1f}")
    print(f"  campaign: spent {result.total_spend:.1f} of planned "
          f"{result.total_base_budget:.1f} "
          f"(strictly under: {result.total_spend < result.total_base_budget})")

    print("\n-- deadline flushing (simulated clock) --")
    stats = result.days[-1].engine_stats
    print(f"  flushes: {stats['flush_deadline']} deadline, "
          f"{stats['flush_batch_full']} batch-full, {stats['flush_manual']} manual")
    all_latencies = np.concatenate([day.latencies for day in result.days])
    for label, q in (("p50", 0.5), ("p95", 0.95), ("max", 1.0)):
        print(f"  {label} submit→score latency: {1000 * np.quantile(all_latencies, q):.2f}ms "
              f"(bound: {args.latency_ms}ms)")
    assert all_latencies.max() <= args.latency_ms / 1000.0 + 1e-9

    print("\n-- price of streaming, per day --")
    for d, day in enumerate(result.days, start=1):
        print(f"  day {d}: online/oracle revenue = {day.revenue_ratio:.1%}")


if __name__ == "__main__":
    main()

"""Sharded serving demo: a 1M-user day on a 4-shard process fleet.

The single :class:`ScoringEngine` is one Python process: batching and
caching buy throughput, but every forward pass still runs on one core.
This demo replays the same day twice —

* **baseline** — one engine + one :class:`BudgetPacer`;
* **fleet** — a :class:`ShardedScoringEngine` over a 4-worker
  :class:`ProcessBackend` (sticky ``blake2b(user) % 4`` routing, one
  engine replica per process) paced by a :class:`ShardedBudgetPacer`
  (four budget slices, headroom rebalanced while the day runs)

— and then shows the accounting story: the fleet's ``stats`` and
latency quantiles are *derived* by folding per-shard snapshots with
``Snapshot.merge``, and one :func:`to_prometheus` call renders the
whole fleet for a single scrape endpoint.  Spend stays strictly under
budget on both paths; revenue lands within noise of the baseline.

On a >= 4-core machine the fleet also finishes the day faster (see
``benchmarks/bench_serving_throughput.py::test_sharded_fleet_throughput``
for the measured ratio); on fewer cores the demo is still exact, just
not faster.

Run:
    python examples/sharded_serving.py [--users 1000000] [--shards 4]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.ab import Platform
from repro.data import criteo_uplift_v2
from repro.obs import to_prometheus
from repro.runtime import ProcessBackend
from repro.serving import (
    BudgetPacer,
    ScoringEngine,
    ShardedBudgetPacer,
    ShardedScoringEngine,
    TrafficReplay,
)


class LinearROI:
    """Picklable deterministic scorer (replicas ship through pickle)."""

    def __init__(self, w: np.ndarray) -> None:
        self.w = np.asarray(w, dtype=float)

    def predict_roi(self, x: np.ndarray) -> np.ndarray:
        return np.atleast_2d(np.asarray(x, dtype=float)) @ self.w


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=1_000_000, help="arrivals in the day")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--budget-fraction", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # a cheap least-squares probe stands in for the fitted DRP model so
    # the demo runs in seconds; swap in any fitted predict_roi model
    probe = criteo_uplift_v2(4_000, random_state=5)
    weights = np.linalg.lstsq(probe.x, probe.roi, rcond=None)[0]
    budget = args.budget_fraction * args.users * float(np.mean(probe.tau_c))
    pacer_params = dict(use_roi_floor=False)

    print(f"day: {args.users:,} users, budget {budget:,.0f}")

    # ---- baseline: one engine, one pacer ------------------------------
    engine = ScoringEngine(LinearROI(weights), batch_size=256, cache_size=0)
    pacer = BudgetPacer(budget, args.users, **pacer_params)
    replay = TrafficReplay(Platform(dataset="criteo", random_state=args.seed), engine)
    t0 = time.perf_counter()
    single = replay.replay_day(args.users, pacer=pacer)
    t_single = time.perf_counter() - t0

    # ---- fleet: N process shards, N budget slices ---------------------
    backend = ProcessBackend(n_workers=args.shards)
    fleet = ShardedScoringEngine(
        LinearROI(weights),
        n_shards=args.shards,
        batch_size=256,
        cache_size=0,
        backend=backend,
    )
    # slices rebalance twice a second while the replay runs: offers poll
    # the pacer's deadline loop, so no background thread is needed
    fleet_pacer = ShardedBudgetPacer(
        budget, args.users, args.shards, rebalance_every=0.5, **pacer_params
    )
    replay = TrafficReplay(
        Platform(dataset="criteo", random_state=args.seed), fleet
    )
    t0 = time.perf_counter()
    sharded = replay.replay_day(args.users, pacer=fleet_pacer)
    t_fleet = time.perf_counter() - t0

    # ---- comparison ---------------------------------------------------
    print()
    print(f"{'':>24s} {'baseline':>14s} {'fleet':>14s}")
    print(f"{'wall time':>24s} {t_single:>13.1f}s {t_fleet:>13.1f}s")
    print(f"{'users/s':>24s} {args.users / t_single:>14,.0f} {args.users / t_fleet:>14,.0f}")
    print(f"{'spend':>24s} {single.spend:>14,.1f} {sharded.spend:>14,.1f}")
    print(f"{'revenue ratio':>24s} {single.revenue_ratio:>14.3f} {sharded.revenue_ratio:>14.3f}")
    print(f"{'requests scored':>24s} {single.engine_stats['requests']:>14,} "
          f"{sharded.engine_stats['requests']:>14,}")
    assert single.spend < budget and sharded.spend < budget  # strict on both paths

    print()
    print(f"budget slices after {fleet_pacer.rebalances} rebalances "
          f"(sum == {sum(fleet_pacer.slice_budgets):,.0f}):")
    for i, (b, shard) in enumerate(zip(fleet_pacer.slice_budgets, fleet_pacer.shards)):
        print(f"  slice {i}: budget {b:>12,.1f}  spent {shard.spent:>12,.1f} "
              f"admitted {shard.n_admitted:,}/{shard.n_seen:,}")

    # ---- merged fleet accounting --------------------------------------
    # every number below is folded out of per-shard snapshots with
    # Snapshot.merge — there is no separate fleet-side bookkeeping
    print()
    print("per-shard -> merged accounting:")
    for i, (snap, _versions) in enumerate(fleet.shard_snapshots()):
        print(f"  shard {i}: {int(snap['engine.requests'].value):>9,} requests, "
              f"{int(snap['engine.model_calls'].value):>6,} model calls")
    stats = fleet.stats
    print(f"  fleet:   {stats['requests']:>9,} requests, "
          f"{stats['model_calls']:>6,} model calls")

    print()
    print("merged Prometheus exposition (one scrape endpoint for the fleet):")
    exposition = to_prometheus(fleet.fleet_snapshot())
    for line in exposition.splitlines()[:12]:
        print(f"  {line}")
    print(f"  ... ({len(exposition.splitlines())} lines total)")

    fleet.close()
    backend.shutdown()


if __name__ == "__main__":
    main()

"""Challenger auto-promotion demo: the registry operating itself.

A freshly calibrated model must *earn* champion on live traffic.  This
demo runs two multi-day campaigns through the full serving stack
(:class:`ScoringEngine` → :class:`BudgetPacer` → realised outcomes)
with an :class:`AutoPromoter` driving the
:class:`~repro.serving.registry.ModelRegistry` lifecycle on simulated
time:

1. **Dominant challenger** — the incumbent champion scores users with
   an *inverted* ROI probe (it systematically treats the wrong users);
   the challenger uses the proper probe.  The promoter ramps the
   challenger's traffic split on a :class:`~repro.runtime.DeadlineLoop`
   schedule, a Welch significance gate compares the two per-version
   outcome ledgers, and the challenger is auto-promoted once its
   uplift delta clears the configured level — then confirmed after a
   clean post-promotion hold window.
2. **Identical clone** — the same model registered twice.  The ramp
   runs its full course and nothing ever promotes: no significant
   delta exists, so the gate stays shut.

Run:
    python examples/auto_promotion.py [--days 4] [--users 2500]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.runtime import ManualClock
from repro.serving import AutoPromoter


class ProbeROI:
    """Least-squares ROI probe; ``invert=True`` ranks users backwards."""

    def __init__(self, n: int = 4000, seed: int = 5, invert: bool = False) -> None:
        probe = repro.criteo_uplift_v2(n, random_state=seed)
        self.w = np.linalg.lstsq(probe.x, probe.roi, rcond=None)[0]
        if invert:
            self.w = -self.w

    def predict_roi(self, x: np.ndarray) -> np.ndarray:
        return np.atleast_2d(np.asarray(x, dtype=float)) @ self.w


def run_campaign(
    name: str, champion: ProbeROI, challenger: ProbeROI, args: argparse.Namespace
) -> None:
    print(f"\n== campaign: {name} ==")
    registry = repro.ModelRegistry(random_state=args.seed)
    registry.register(champion, name="champion")
    registry.register(challenger, name="challenger")
    clock = ManualClock()
    engine = repro.ScoringEngine(
        registry, batch_size=args.batch, cache_size=0, clock=clock
    )
    day_seconds = args.users * args.interarrival_ms / 1000.0
    promoter = AutoPromoter(
        registry,
        clock=clock,
        ramp=(0.05, 0.25, 0.95),
        step_every_s=day_seconds / 2.0,  # two ramp steps per simulated day
        level=args.level,
        min_decided=300,
        check_every=200,
        hold_decided=1500,
    )
    platform = repro.Platform(dataset="criteo", random_state=args.seed)
    replay = repro.TrafficReplay(
        platform,
        engine,
        interarrival_s=args.interarrival_ms / 1000.0,
        promoter=promoter,
        random_state=args.seed + 1,
    )
    result = replay.replay_days(args.days, args.users, budget_fraction=0.3)

    print(f"  ramp: 5% -> 25% -> 95% (champion holdback), one step every {day_seconds / 2.0:.2f}s "
          f"(simulated); gate: Welch level={args.level}")
    print("\n  lifecycle events:")
    for e in promoter.events:
        detail = ""
        if e.ci is not None:
            detail = f"  delta=[{e.ci.lo:+.4f}, {e.ci.hi:+.4f}] over n={e.ci.n}"
        print(f"    t={e.at:8.2f}s  {e.kind:8s} v{e.version}  "
              f"split={e.traffic_split:6.1%}{detail}")

    print("\n  per-version outcome ledgers (realised, attributed by version):")
    for v in registry.versions():
        led = v.ledger
        mean, _var, n = led.moments("net")
        print(f"    v{v.version} {v.name:11s} [{v.stage:10s}] "
              f"decided={n:6d} treated={led.n_treated:5d} "
              f"spend={led.spend:8.1f} revenue={led.revenue:8.1f} "
              f"net/request={mean:+.4f}")
    print(f"\n  champion after campaign: {registry.champion.name} "
          f"(v{registry.champion.version}); campaign revenue "
          f"{result.total_incremental_revenue:.1f} on spend {result.total_spend:.1f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=4, help="campaign length")
    parser.add_argument("--users", type=int, default=2500, help="arrivals per day")
    parser.add_argument("--batch", type=int, default=64, help="engine micro-batch size")
    parser.add_argument("--interarrival-ms", type=float, default=1.0,
                        help="simulated gap between arrivals")
    parser.add_argument("--level", type=float, default=0.99,
                        help="significance level of the promotion gate")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"== auto-promotion on simulated time: {args.days} days x "
          f"{args.users} arrivals ==")
    good = ProbeROI(seed=5)
    bad = ProbeROI(seed=5, invert=True)
    run_campaign("dominant challenger vs inverted champion", bad, good, args)
    run_campaign("identical clone (must never promote)", good, ProbeROI(seed=5), args)


if __name__ == "__main__":
    main()

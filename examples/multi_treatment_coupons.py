"""Multiple coupon face values via Divide-and-Conquer rDRP (paper §VI).

The binary rDRP cannot pick *which* of several coupon denominations a
user should get.  The paper's Discussion prescribes Divide and Conquer:
one binary rDRP per denomination (control vs that denomination), then
allocate over (user, denomination) pairs.  This example runs it on a
three-level synthetic coupon RCT with a concave dose response (bigger
coupons cost proportionally more but convert less per unit).

Run:
    python examples/multi_treatment_coupons.py [--n 9000]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.data.multi import MultiTreatmentRCT


def split_multi(data: MultiTreatmentRCT, fractions=(0.6, 0.2, 0.2), seed=0):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(data.n)
    out = []
    start = 0
    for fraction in fractions:
        size = int(round(fraction * data.n))
        idx = perm[start : start + size]
        out.append(
            MultiTreatmentRCT(
                x=data.x[idx],
                t=data.t[idx],
                y_r=data.y_r[idx],
                y_c=data.y_c[idx],
                tau_r=data.tau_r[idx],
                tau_c=data.tau_c[idx],
                roi=data.roi[idx],
                name=data.name,
                feature_names=list(data.feature_names),
            )
        )
        start += size
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=9000)
    parser.add_argument("--levels", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    data = repro.multi_treatment_rct(
        n=args.n, n_levels=args.levels, d=8, random_state=args.seed
    )
    train, calib, test = split_multi(data, seed=args.seed)
    print(
        f"{args.levels}-level coupon RCT: {train.n} train / {calib.n} calibration "
        f"/ {test.n} test rows"
    )
    print("mean true ROI per level:", np.round(data.roi.mean(axis=0), 3))

    model = repro.DivideAndConquerRDRP(
        n_levels=args.levels,
        random_state=args.seed,
        hidden=32,
        epochs=50,
        mc_samples=15,
    )
    model.fit(train)
    model.calibrate(calib)
    print(
        "selected calibration form per level:",
        [m.selected_form for m in model.models],
    )

    budget = 0.2 * float(test.tau_c[:, 0].sum())
    result = model.allocate(test.x, test.tau_c, budget)
    counts = np.bincount(result.assignment, minlength=args.levels + 1)
    print(f"\nbudget {budget:.1f}: treated {result.n_treated}/{test.n} users")
    for level in range(args.levels + 1):
        label = "untreated" if level == 0 else f"level {level}"
        print(f"  {label:<10s} {counts[level]:>5d} users")

    model_reward = float(
        np.sum(
            test.tau_r[
                np.nonzero(result.assignment > 0)[0],
                result.assignment[result.assignment > 0] - 1,
            ]
        )
    )

    # random baseline: same budget, random (user, level) assignment
    rng = np.random.default_rng(args.seed)
    random_rewards = []
    for _ in range(5):
        assignment = np.zeros(test.n, dtype=np.int64)
        remaining = budget
        for user in rng.permutation(test.n):
            level = int(rng.integers(0, args.levels))
            cost = float(test.tau_c[user, level])
            if cost <= remaining:
                assignment[user] = level + 1
                remaining -= cost
        treated = assignment > 0
        random_rewards.append(
            float(np.sum(test.tau_r[np.nonzero(treated)[0], assignment[treated] - 1]))
        )
    random_reward = float(np.mean(random_rewards))

    print(f"\nexpected incremental conversions — D&C rDRP: {model_reward:.1f}")
    print(f"expected incremental conversions — random:   {random_reward:.1f}")
    print(f"-> lift over random: {model_reward / max(random_reward, 1e-9) - 1:+.1%}")


if __name__ == "__main__":
    main()

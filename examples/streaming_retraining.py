"""Streaming retraining demo: the serving stack repairing itself.

Day 2 of this campaign injects concept drift
(:class:`~repro.ab.platform.Platform` with ``drift_day=2``): the same
users respond differently, so the champion fitted on day-1 behaviour
now ranks the wrong users.  Two runs stream the identical CRN-paired
traffic:

1. **frozen** — the champion serves unchanged for the whole campaign;
2. **closed loop** — a :class:`~repro.serving.Retrainer` drains every
   decided request's realised outcome into a rolling window, refits a
   :meth:`~repro.causal.base.TrainableModel.clone_unfit` of the
   champion every ``--refit-every`` outcomes, and stages the refit as
   a challenger.  The ordinary :class:`~repro.serving.AutoPromoter`
   gate ramps it and promotes it only if it beats the incumbent with
   significance — no manual ``registry.register`` calls after launch.

Because outcome draws are CRN-paired (``paired_outcomes=True``), the
revenue difference between the runs is the causal effect of closing
the loop.

Run:
    python examples/streaming_retraining.py [--days 6] [--users 1500]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.causal.base import TrainableModel
from repro.linear import RidgeRegression
from repro.runtime import ManualClock
from repro.serving import AutoPromoter, Retrainer


class TreatedNetRidge(TrainableModel):
    """Ridge on treated rows' realised net — refittable from the stream."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self._ridge = None

    def fit(self, x, y, t):
        mask = np.asarray(t) == 1
        self._ridge = RidgeRegression(alpha=self.alpha).fit(
            np.asarray(x)[mask], np.asarray(y)[mask]
        )
        return self

    def predict_roi(self, x):
        return self._ridge.predict(x)


def fit_champion(seed: int) -> TreatedNetRidge:
    """Fit on a pre-drift probe RCT (what launch-day training data sees)."""
    probe = repro.criteo_uplift_v2(3000, random_state=seed + 100)
    rng = np.random.default_rng(seed + 7)
    t = rng.integers(0, 2, probe.n)
    u = rng.random((probe.n, 2))
    y_r = (u[:, 0] < probe.tau_r) * t
    y_c = (u[:, 1] < probe.tau_c) * t
    return TreatedNetRidge(alpha=1.0).fit(probe.x, y_r - y_c, t)


def run_campaign(args: argparse.Namespace, retrain: bool):
    platform = repro.Platform(
        dataset="criteo",
        random_state=args.seed,
        drift_day=2,
        drift_strength=3.0,
        day_effect=0.0,
    )
    clock = ManualClock()
    registry = repro.ModelRegistry(random_state=args.seed)
    registry.register(fit_champion(args.seed), name="champion", promote=True)
    engine = repro.ScoringEngine(
        registry, batch_size=32, max_latency_ms=50.0, clock=clock
    )
    promoter = AutoPromoter(
        registry,
        clock=clock,
        ramp=(0.2, 0.6),
        step_every_s=300.0,
        min_decided=80,
        check_every=25,
        hold_decided=80,
    )
    retrainer = (
        Retrainer(
            registry,
            clock=clock,
            window=args.refit_every,
            min_outcomes=min(500, args.refit_every),
            every_outcomes=args.refit_every,
        )
        if retrain
        else None
    )
    replay = repro.TrafficReplay(
        platform,
        engine,
        feedback=False,
        interarrival_s=1.0,
        promoter=promoter,
        retrainer=retrainer,
        paired_outcomes=True,
        random_state=args.seed + 1,
    )
    result = replay.replay_days(
        n_days=args.days, n_users=args.users, budget_fraction=args.budget
    )
    return result, promoter, retrainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--days", type=int, default=6)
    parser.add_argument("--users", type=int, default=1500)
    parser.add_argument("--budget", type=float, default=0.3)
    parser.add_argument("--refit-every", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    frozen, _, _ = run_campaign(args, retrain=False)
    looped, promoter, retrainer = run_campaign(args, retrain=True)

    print(f"{'day':>4} {'frozen rev':>12} {'closed loop':>12} {'delta':>9}")
    for i, (f, g) in enumerate(zip(frozen.days, looped.days), start=1):
        marker = "  << drift" if i == 2 else ""
        print(
            f"{i:>4} {f.incremental_revenue:>12.1f} "
            f"{g.incremental_revenue:>12.1f} "
            f"{g.incremental_revenue - f.incremental_revenue:>+9.1f}{marker}"
        )
    total_f = sum(d.incremental_revenue for d in frozen.days)
    total_g = sum(d.incremental_revenue for d in looped.days)
    print(f"{'sum':>4} {total_f:>12.1f} {total_g:>12.1f} {total_g - total_f:>+9.1f}")

    print(f"\nrefits: {retrainer.n_refits}  staged: {retrainer.n_staged}")
    print("retrainer events:")
    for e in retrainer.events:
        extra = f" -> v{e.version}" if e.version is not None else ""
        print(f"  t={e.at:>9.0f}s {e.kind:<8} {e.reason}{extra}")
    print("promoter events:")
    for e in promoter.events:
        print(f"  t={e.at:>9.0f}s {e.kind:<8} v{e.version}")


if __name__ == "__main__":
    main()

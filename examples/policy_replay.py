"""Cross-policy cohort replay with common random numbers.

Compares three allocation policies on *identical* simulated traffic:
every day, one cohort is generated, one partition splits it into
model + control arms, and one per-user cost/reward uniform tensor
realises the outcomes for every policy set.  Deltas between policies
are therefore paired — a user realises the same cost and reward under
every policy that treats them — so far fewer days separate good from
bad policies than with independent A/B runs, and the whole comparison
costs about one run's cohort generation instead of three.

Run:
    python examples/policy_replay.py [--days 5] [--cohort 6000] [--parallel]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=5)
    parser.add_argument("--cohort", type=int, default=6000, help="daily users")
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="generate chunked cohorts on a worker pool (bit-identical output)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # a 'semi-oracle' scoring direction: project features onto the true
    # ROI of a probe sample (stands in for a trained DRP/rDRP scorer)
    probe = repro.criteo_uplift_v2(4000, random_state=args.seed + 5)
    weights = np.linalg.lstsq(probe.x, probe.roi, rcond=None)[0]

    policy_sets = {
        "semi-oracle": {"model": lambda x: x @ weights},
        "anti-oracle": {"model": lambda x: -(x @ weights)},
        "constant": {"model": lambda x: np.ones(x.shape[0])},
    }

    print(f"== Replaying {args.days} days x {args.cohort} users through 3 policy sets ==")
    # one shared pool serves every day's cohort generation (the legacy
    # parallel=True kwarg is deprecated in favour of backend=)
    backend = repro.ProcessBackend() if args.parallel else None
    replay = repro.PolicyReplay(
        repro.Platform(dataset="criteo", random_state=args.seed),
        policy_sets,
        budget_fraction=0.3,
        random_state=args.seed,
        backend=backend,
    )
    try:
        result = replay.run(n_days=args.days, cohort_size=args.cohort)
    finally:
        if backend is not None:
            backend.shutdown()

    print("\nper-day uplift vs the shared random control (%):")
    for name in result.set_names:
        series = result.results[name].uplift_vs_random["model"]
        days = "  ".join(f"{u:+6.2f}" for u in series)
        print(f"  {name:>12s}: {days}")

    print("\npaired deltas (same users, same outcome draws):")
    for other in ("anti-oracle", "constant"):
        deltas = result.uplift_delta("semi-oracle", other, "model")
        print(
            f"  semi-oracle - {other:>11s}: mean {np.mean(deltas):+6.2f}  "
            f"sd {np.std(deltas):5.2f}"
        )

    mean = result.mean_uplift()
    best = max(mean, key=lambda name: mean[name]["model"])
    print(f"\nbest set on paired evidence: {best!r} ({mean[best]['model']:+.2f}% mean uplift)")


if __name__ == "__main__":
    main()

"""Coupon marketing on the Meituan-LIFT analog: method shoot-out.

The paper's motivating workload: a food-delivery platform decides which
users receive a smart coupon (click = incremental cost, conversion =
incremental revenue).  This example trains the Two-Phase baselines the
paper benchmarks, plus DR/DRP/rDRP, and prints a miniature Table-I
column followed by a budget sweep showing the reward each method
captures as the coupon budget grows.

Run:
    python examples/coupon_marketing.py [--n 10000]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro


def ascii_bar(value: float, scale: float = 60.0) -> str:
    return "#" * max(1, int(round(value * scale)))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=10000, help="sufficient corpus size")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    data = repro.make_setting("meituan", "SuNo", n_sufficient=args.n, random_state=args.seed)
    tr, te = data.train, data.test
    print(f"meituan analog: {tr.n} train rows, {te.n} test rows, {tr.n_features} features")

    scores: dict[str, np.ndarray] = {}

    for variant in ("SL", "XL", "CF"):
        tpm = repro.make_tpm(variant, random_state=args.seed, fast=True)
        tpm.fit(tr.x, tr.y_r, tr.y_c, tr.t)
        scores[f"TPM-{variant}"] = tpm.predict_roi(te.x)

    dr = repro.DirectRank(hidden=48, epochs=60, random_state=args.seed)
    dr.fit(tr.x, tr.t, tr.y_r, tr.y_c)
    scores["DR"] = dr.predict_roi(te.x)

    rdrp = repro.RobustDRP(random_state=args.seed, hidden=48, epochs=80, mc_samples=20)
    rdrp.fit(tr.x, tr.t, tr.y_r, tr.y_c)
    rdrp.calibrate(
        data.calibration.x, data.calibration.t, data.calibration.y_r, data.calibration.y_c
    )
    scores["DRP"] = rdrp.drp.predict_roi(te.x)
    scores["rDRP"] = rdrp.predict_roi(te.x)

    print("\n-- AUCC on the test split (larger = better coupon targeting) --")
    for name, pred in scores.items():
        value = repro.aucc(pred, te.t, te.y_r, te.y_c)
        print(f"  {name:<8s} {value:.4f}  {ascii_bar(value)}")

    print("\n-- Budget sweep: expected incremental conversions captured --")
    full_cost = float(np.sum(te.tau_c))
    fractions = (0.1, 0.2, 0.3, 0.5)
    header = "  budget   " + "  ".join(f"{name:>8s}" for name in scores)
    print(header)
    for fraction in fractions:
        budget = fraction * full_cost
        row = [f"  {fraction:>5.0%}  "]
        for name, pred in scores.items():
            allocation = repro.greedy_allocation(pred, te.tau_c, budget, rewards=te.tau_r)
            row.append(f"{allocation.total_reward:8.1f}")
        print("  ".join(row))
    oracle_row = []
    for fraction in fractions:
        allocation = repro.greedy_allocation(
            te.roi, te.tau_c, fraction * full_cost, rewards=te.tau_r
        )
        oracle_row.append(f"{allocation.total_reward:8.1f}")
    print("  oracle  " + "  ".join(oracle_row))


if __name__ == "__main__":
    main()

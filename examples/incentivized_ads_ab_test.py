"""Incentivized-advertising A/B test (the paper's §V-C online study).

Simulates five days of rewarded-ads traffic on a short-video platform:
each day's viewers are split across three arms — DRP, rDRP and a random
control — every arm gets the same coin budget, and the platform
realises ad revenue from the ground-truth effects.  Prints the Fig.-6
series (incremental revenue % over the random arm per day) for a
workday-trained model deployed into a holiday (covariate-shifted)
traffic mix.

Run:
    python examples/incentivized_ads_ab_test.py [--days 5] [--cohort 6000]
"""

from __future__ import annotations

import argparse


import repro


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=5)
    parser.add_argument("--cohort", type=int, default=6000, help="daily viewers")
    parser.add_argument("--n", type=int, default=10000, help="training corpus size")
    parser.add_argument(
        "--shifted",
        action="store_true",
        default=True,
        help="deploy into holiday (covariate-shifted) traffic",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    setting = "InCo" if args.shifted else "InNo"
    print(f"== Training DRP/rDRP on workday data ({setting} scenario) ==")
    data = repro.make_setting("criteo", setting, n_sufficient=args.n, random_state=args.seed)
    model = repro.RobustDRP(random_state=args.seed, hidden=48, epochs=80, mc_samples=20)
    model.fit(data.train.x, data.train.t, data.train.y_r, data.train.y_c)
    model.calibrate(
        data.calibration.x, data.calibration.t, data.calibration.y_r, data.calibration.y_c
    )
    print(f"selected calibration form: {model.selected_form}")

    print(f"\n== Running the {args.days}-day A/B test ==")
    platform = repro.Platform(
        dataset="criteo", shifted=args.shifted, random_state=args.seed + 7
    )
    ab = repro.ABTest(
        platform,
        {"DRP": model.drp.predict_roi, "rDRP": model.predict_roi},
        budget_fraction=0.3,
        random_state=args.seed,
    )
    result = ab.run(n_days=args.days, cohort_size=args.cohort)

    print("\nday  " + "  ".join(f"{arm:>8s}" for arm in ("DRP", "rDRP")))
    uplift = result.uplift_vs_random
    for day in range(args.days):
        print(
            f"{day + 1:>3d}  "
            + "  ".join(f"{uplift[arm][day]:+7.2f}%" for arm in ("DRP", "rDRP"))
        )
    means = result.mean_uplift()
    print("mean " + "  ".join(f"{means[arm]:+7.2f}%" for arm in ("DRP", "rDRP")))

    print("\nper-day spend and treated counts (arm budgets are equal):")
    for day_result in result.days:
        treated = ", ".join(f"{arm}={n}" for arm, n in sorted(day_result.n_treated.items()))
        print(f"  day {day_result.day}: {treated}")


if __name__ == "__main__":
    main()

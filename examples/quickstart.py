"""Quickstart: train rDRP, compare with DRP, and solve C-BTAP.

Walks the full Algorithm-4 pipeline on the CRITEO-UPLIFT v2 analog in
the hardest setting the paper studies (insufficient training data plus
covariate shift between training and deployment) and then spends a
budget with the greedy allocator (Algorithm 1).

Run:
    python examples/quickstart.py [--n 12000] [--setting InCo]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=12000, help="sufficient corpus size")
    parser.add_argument(
        "--setting",
        choices=("SuNo", "SuCo", "InNo", "InCo"),
        default="InCo",
        help="experimental setting (paper §V-A)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"== Building the criteo analog, setting {args.setting} ==")
    data = repro.make_setting(
        "criteo", args.setting, n_sufficient=args.n, random_state=args.seed
    )
    print(f"train: {data.train.n} rows | calibration: {data.calibration.n} | test: {data.test.n}")
    print(f"covariate shift: {data.has_shift} | sufficient: {data.is_sufficient}")

    print("\n== Phase 1: train DRP (Algorithm 4 line 2) ==")
    model = repro.RobustDRP(random_state=args.seed, hidden=48, epochs=80, mc_samples=20)
    model.fit(data.train.x, data.train.t, data.train.y_r, data.train.y_c)
    print(f"trained {len(model.drp.networks_)} restart networks")

    print("\n== Phase 2: calibrate on the fresh RCT (Algorithm 4 lines 4-8) ==")
    model.calibrate(
        data.calibration.x, data.calibration.t, data.calibration.y_r, data.calibration.y_c
    )
    print(f"conformal quantile q_hat = {model.q_hat:.3f}")
    print(f"selected calibration form: {model.selected_form}")

    print("\n== Phase 3: predict on deployment traffic ==")
    te = data.test
    froi = model.predict_roi(te.x)
    roi_drp = model.drp.predict_roi(te.x)
    lower, upper = model.predict_interval(te.x)
    print(f"mean interval width at alpha=0.1: {np.mean(upper - lower):.3f}")

    aucc_rdrp = repro.aucc(froi, te.t, te.y_r, te.y_c)
    aucc_drp = repro.aucc(roi_drp, te.t, te.y_r, te.y_c)
    aucc_oracle = repro.aucc(te.roi, te.t, te.y_r, te.y_c)
    print(f"AUCC  DRP:    {aucc_drp:.4f}")
    print(f"AUCC  rDRP:   {aucc_rdrp:.4f}")
    print(f"AUCC  oracle: {aucc_oracle:.4f}  (ground-truth ranking, upper bound)")

    print("\n== Solve C-BTAP with Algorithm 1 ==")
    budget = 0.3 * float(np.sum(te.tau_c))
    allocation = repro.greedy_allocation(froi, te.tau_c, budget, rewards=te.tau_r)
    random_allocation = repro.greedy_allocation(
        np.random.default_rng(args.seed).random(te.n), te.tau_c, budget, rewards=te.tau_r
    )
    print(f"budget: {budget:.1f} (30% of full-treatment cost)")
    print(
        f"rDRP allocation:   treat {allocation.n_selected} users, "
        f"expected incremental revenue {allocation.total_reward:.1f}"
    )
    print(
        f"random allocation: treat {random_allocation.n_selected} users, "
        f"expected incremental revenue {random_allocation.total_reward:.1f}"
    )
    lift = allocation.total_reward / max(random_allocation.total_reward, 1e-9) - 1.0
    print(f"-> rDRP captures {lift:+.1%} more reward than random at the same budget")


if __name__ == "__main__":
    main()

"""Repo-level pytest configuration.

Defines the ``--smoke`` option here (the rootdir conftest) so it is
registered whether pytest is invoked on the whole repo, ``tests/``, or
a single ``benchmarks/bench_*.py`` file.  Benchmarks read it through
the ``smoke`` fixture in ``benchmarks/conftest.py``: smoke mode shrinks
sizes to seconds and skips wall-clock assertions, so CI can execute
every perf script on every push without timing flakiness — the scripts
can't silently rot even when their full-size numbers are only checked
locally.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run benchmarks at tiny sizes (correctness only, no perf assertions)",
    )

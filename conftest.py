"""Repo-level pytest configuration.

Defines the ``--smoke`` and ``--profile`` options here (the rootdir
conftest) so they are registered whether pytest is invoked on the whole
repo, ``tests/``, or a single ``benchmarks/bench_*.py`` file.
Benchmarks read them through the ``smoke`` / profiling fixtures in
``benchmarks/conftest.py``: smoke mode shrinks sizes to seconds and
skips wall-clock assertions, so CI can execute every perf script on
every push without timing flakiness — the scripts can't silently rot
even when their full-size numbers are only checked locally.
``--profile`` wraps each benchmark test in :mod:`cProfile` and writes a
``pstats`` dump plus a cumulative-time text summary per test (see
``benchmarks/_harness.py:profile_to``), which CI uploads as artifacts.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run benchmarks at tiny sizes (correctness only, no perf assertions)",
    )
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="profile each benchmark test with cProfile, writing pstats dumps "
        "to profiles/ (or $REPRO_PROFILE_DIR)",
    )

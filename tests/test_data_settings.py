"""Tests for the four experimental settings (SuNo/SuCo/InNo/InCo)."""

import numpy as np
import pytest

from repro.data.settings import (
    DATASET_NAMES,
    INSUFFICIENT_RATE,
    SETTING_NAMES,
    iter_dataset_chunks,
    load_dataset,
    make_setting,
)
from repro.data.shift import shift_direction


class TestIterDatasetChunks:
    def test_chunks_bounded_and_total_covers_n(self):
        chunks = list(iter_dataset_chunks("criteo", 1000, chunk_size=300, random_state=0))
        assert all(c.n <= 300 for c in chunks)
        assert sum(c.n for c in chunks) >= 1000
        # criteo yields every requested row: exact coverage, no waste
        assert sum(c.n for c in chunks) == 1000

    def test_low_yield_generator_adapts(self):
        """meituan keeps ~40% of rows; the request size must adapt."""
        chunks = list(iter_dataset_chunks("meituan", 800, chunk_size=400, random_state=0))
        assert sum(c.n for c in chunks) >= 800
        assert all(c.n <= 400 for c in chunks)

    def test_tiny_tail_shortfall_on_low_yield_generator(self):
        """Regression: a few-row tail shortfall used to request fewer
        rows than meituan's 25-row generator minimum and crash."""
        for seed in range(8):
            chunks = list(
                iter_dataset_chunks("meituan", 5000, chunk_size=250, random_state=seed)
            )
            assert sum(c.n for c in chunks) >= 5000

    def test_consumer_can_stop_early(self):
        got = 0
        for chunk in iter_dataset_chunks("criteo", 10_000, chunk_size=200, random_state=0):
            got += chunk.n
            if got >= 500:
                break
        assert 500 <= got <= 700  # one chunk of overshoot at most

    def test_invalid_args(self):
        with pytest.raises(ValueError, match="n must be"):
            list(iter_dataset_chunks("criteo", 0))
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_dataset_chunks("criteo", 100, chunk_size=5))
        with pytest.raises(ValueError, match="Unknown dataset"):
            list(iter_dataset_chunks("nope", 100))
        with pytest.raises(ValueError, match="n_workers"):
            list(iter_dataset_chunks("criteo", 100, parallel=True, n_workers=0))

    def test_chunks_independent_of_consumption_order(self):
        """Chunk i is a pure function of its substream, not of i-1's rows."""
        first = list(iter_dataset_chunks("criteo", 900, chunk_size=300, random_state=3))
        again = list(iter_dataset_chunks("criteo", 900, chunk_size=300, random_state=3))
        for a, b in zip(first, again):
            np.testing.assert_array_equal(a.x, b.x)


def _assert_datasets_equal(a, b):
    assert a.n == b.n
    np.testing.assert_array_equal(a.x, b.x)
    np.testing.assert_array_equal(a.t, b.t)
    np.testing.assert_array_equal(a.y_r, b.y_r)
    np.testing.assert_array_equal(a.y_c, b.y_c)
    np.testing.assert_array_equal(a.tau_r, b.tau_r)
    np.testing.assert_array_equal(a.tau_c, b.tau_c)
    np.testing.assert_array_equal(a.roi, b.roi)


class TestParallelChunks:
    """The worker-pool path must be byte-for-byte the serial path."""

    @pytest.mark.parametrize("dataset", ["criteo", "meituan"])
    def test_parallel_bit_identical_to_serial(self, dataset):
        # meituan's ~40% yield exercises the adaptive-tail recompute
        # path (the speculated full-size request is wrong at the tail)
        serial = list(
            iter_dataset_chunks(dataset, 1200, chunk_size=300, random_state=7)
        )
        parallel = list(
            iter_dataset_chunks(
                dataset, 1200, chunk_size=300, random_state=7, parallel=True, n_workers=2
            )
        )
        assert [c.n for c in serial] == [c.n for c in parallel]
        for a, b in zip(serial, parallel):
            _assert_datasets_equal(a, b)

    def test_parallel_leaves_caller_stream_where_serial_does(self):
        """Speculative extra substream seeds must not consume extra
        draws from a shared caller generator (exactly one draw total)."""
        g_serial = np.random.default_rng(5)
        list(iter_dataset_chunks("criteo", 700, chunk_size=300, random_state=g_serial))
        g_parallel = np.random.default_rng(5)
        list(
            iter_dataset_chunks(
                "criteo", 700, chunk_size=300, random_state=g_parallel,
                parallel=True, n_workers=2,
            )
        )
        assert g_serial.random() == g_parallel.random()

    def test_parallel_single_chunk_falls_back_to_serial(self):
        """n <= chunk_size: nothing to fan out, identical output."""
        serial = list(iter_dataset_chunks("criteo", 200, chunk_size=300, random_state=1))
        parallel = list(
            iter_dataset_chunks(
                "criteo", 200, chunk_size=300, random_state=1, parallel=True, n_workers=2
            )
        )
        assert len(serial) == len(parallel) == 1
        _assert_datasets_equal(serial[0], parallel[0])


class TestLoadDataset:
    def test_all_names(self):
        for name in DATASET_NAMES:
            data = load_dataset(name, 600, random_state=0)
            assert data.n >= 200

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="Unknown dataset"):
            load_dataset("kaggle", 100)


class TestMakeSetting:
    def test_setting_names_complete(self):
        assert SETTING_NAMES == ("SuNo", "SuCo", "InNo", "InCo")

    def test_insufficient_is_015_subsample(self):
        su = make_setting("criteo", "SuNo", n_sufficient=4000, random_state=0)
        in_ = make_setting("criteo", "InNo", n_sufficient=4000, random_state=0)
        ratio = in_.train.n / su.train.n
        assert ratio == pytest.approx(INSUFFICIENT_RATE, abs=0.02)

    def test_calibration_and_test_same_size_across_shift(self):
        no = make_setting("criteo", "SuNo", n_sufficient=4000, random_state=0)
        co = make_setting("criteo", "SuCo", n_sufficient=4000, random_state=0)
        assert abs(no.calibration.n - co.calibration.n) <= 2
        assert abs(no.test.n - co.test.n) <= 2

    def test_shift_applied_to_calibration_and_test_only(self):
        data = make_setting("criteo", "SuCo", n_sufficient=6000, random_state=0)
        direction = shift_direction(data.train)
        train_proj = float((data.train.x @ direction).mean())
        calib_proj = float((data.calibration.x @ direction).mean())
        test_proj = float((data.test.x @ direction).mean())
        # calibration/test tilted upward; train stays near the origin
        assert calib_proj > train_proj + 0.2
        assert test_proj > train_proj + 0.2

    def test_no_shift_setting_unshifted(self):
        data = make_setting("criteo", "SuNo", n_sufficient=6000, random_state=0)
        direction = shift_direction(data.train)
        train_proj = float((data.train.x @ direction).mean())
        test_proj = float((data.test.x @ direction).mean())
        assert abs(test_proj - train_proj) < 0.2

    def test_calibration_matches_test_distribution(self):
        """Assumption 6: calibration and test share the (shifted) law."""
        data = make_setting("criteo", "InCo", n_sufficient=6000, random_state=0)
        direction = shift_direction(data.train)
        calib_proj = float((data.calibration.x @ direction).mean())
        test_proj = float((data.test.x @ direction).mean())
        assert calib_proj == pytest.approx(test_proj, abs=0.25)

    def test_flags(self):
        data = make_setting("criteo", "InCo", n_sufficient=3000, random_state=0)
        assert data.has_shift is True
        assert data.is_sufficient is False
        assert data.setting == "InCo"
        assert data.dataset == "criteo"

    def test_unknown_setting(self):
        with pytest.raises(ValueError, match="Unknown setting"):
            make_setting("criteo", "SuX")

    def test_invalid_fractions(self):
        with pytest.raises(ValueError, match="must be < 1"):
            make_setting("criteo", "SuNo", calibration_fraction=0.6, test_fraction=0.6)

    def test_splits_disjoint(self):
        data = make_setting("criteo", "SuNo", n_sufficient=3000, random_state=0)
        train_rows = {tuple(np.round(r, 9)) for r in data.train.x}
        test_rows = {tuple(np.round(r, 9)) for r in data.test.x}
        assert not (train_rows & test_rows)

    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    def test_all_datasets_all_settings_construct(self, dataset):
        for setting in SETTING_NAMES:
            data = make_setting(dataset, setting, n_sufficient=2500, random_state=0)
            assert data.train.n > 50
            assert data.calibration.n > 50
            assert data.test.n > 50

"""Tests for the four experimental settings (SuNo/SuCo/InNo/InCo)."""

import numpy as np
import pytest

from repro.data.settings import (
    DATASET_NAMES,
    INSUFFICIENT_RATE,
    SETTING_NAMES,
    load_dataset,
    make_setting,
)
from repro.data.shift import shift_direction


class TestLoadDataset:
    def test_all_names(self):
        for name in DATASET_NAMES:
            data = load_dataset(name, 600, random_state=0)
            assert data.n >= 200

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="Unknown dataset"):
            load_dataset("kaggle", 100)


class TestMakeSetting:
    def test_setting_names_complete(self):
        assert SETTING_NAMES == ("SuNo", "SuCo", "InNo", "InCo")

    def test_insufficient_is_015_subsample(self):
        su = make_setting("criteo", "SuNo", n_sufficient=4000, random_state=0)
        in_ = make_setting("criteo", "InNo", n_sufficient=4000, random_state=0)
        ratio = in_.train.n / su.train.n
        assert ratio == pytest.approx(INSUFFICIENT_RATE, abs=0.02)

    def test_calibration_and_test_same_size_across_shift(self):
        no = make_setting("criteo", "SuNo", n_sufficient=4000, random_state=0)
        co = make_setting("criteo", "SuCo", n_sufficient=4000, random_state=0)
        assert abs(no.calibration.n - co.calibration.n) <= 2
        assert abs(no.test.n - co.test.n) <= 2

    def test_shift_applied_to_calibration_and_test_only(self):
        data = make_setting("criteo", "SuCo", n_sufficient=6000, random_state=0)
        direction = shift_direction(data.train)
        train_proj = float((data.train.x @ direction).mean())
        calib_proj = float((data.calibration.x @ direction).mean())
        test_proj = float((data.test.x @ direction).mean())
        # calibration/test tilted upward; train stays near the origin
        assert calib_proj > train_proj + 0.2
        assert test_proj > train_proj + 0.2

    def test_no_shift_setting_unshifted(self):
        data = make_setting("criteo", "SuNo", n_sufficient=6000, random_state=0)
        direction = shift_direction(data.train)
        train_proj = float((data.train.x @ direction).mean())
        test_proj = float((data.test.x @ direction).mean())
        assert abs(test_proj - train_proj) < 0.2

    def test_calibration_matches_test_distribution(self):
        """Assumption 6: calibration and test share the (shifted) law."""
        data = make_setting("criteo", "InCo", n_sufficient=6000, random_state=0)
        direction = shift_direction(data.train)
        calib_proj = float((data.calibration.x @ direction).mean())
        test_proj = float((data.test.x @ direction).mean())
        assert calib_proj == pytest.approx(test_proj, abs=0.25)

    def test_flags(self):
        data = make_setting("criteo", "InCo", n_sufficient=3000, random_state=0)
        assert data.has_shift is True
        assert data.is_sufficient is False
        assert data.setting == "InCo"
        assert data.dataset == "criteo"

    def test_unknown_setting(self):
        with pytest.raises(ValueError, match="Unknown setting"):
            make_setting("criteo", "SuX")

    def test_invalid_fractions(self):
        with pytest.raises(ValueError, match="must be < 1"):
            make_setting("criteo", "SuNo", calibration_fraction=0.6, test_fraction=0.6)

    def test_splits_disjoint(self):
        data = make_setting("criteo", "SuNo", n_sufficient=3000, random_state=0)
        train_rows = {tuple(np.round(r, 9)) for r in data.train.x}
        test_rows = {tuple(np.round(r, 9)) for r in data.test.x}
        assert not (train_rows & test_rows)

    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    def test_all_datasets_all_settings_construct(self, dataset):
        for setting in SETTING_NAMES:
            data = make_setting(dataset, setting, n_sufficient=2500, random_state=0)
            assert data.train.n > 50
            assert data.calibration.n > 50
            assert data.test.n > 50

"""Tests for challenger auto-promotion (``repro.serving.promotion``).

Unit layer: the :class:`AutoPromoter` state machine driven directly
with synthetic outcome streams under a :class:`ManualClock` — ramp
schedule, significance verdicts (promote / kill / rollback / confirm),
false-promotion rate, invalidation.  End-to-end layer: full
:class:`TrafficReplay` campaigns where the lifecycle runs itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ab.platform import Platform
from repro.runtime import ManualClock
from repro.serving.engine import ScoringEngine
from repro.serving.promotion import AutoPromoter
from repro.serving.registry import ModelRegistry
from repro.serving.simulator import TrafficReplay


class LinearROI:
    """Deterministic stub scorer: clipped linear projection of x."""

    def __init__(self, w: np.ndarray) -> None:
        self.w = np.asarray(w, dtype=float)

    def predict_roi(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.clip(x @ self.w, 1e-6, 1.0 - 1e-6)


def make_pair(traffic_split: float = 0.0, seed: int = 0):
    """Registry with a champion (v1) and a staged challenger (v2)."""
    reg = ModelRegistry(traffic_split=traffic_split, random_state=seed)
    v1 = reg.register(LinearROI(np.zeros(4)), name="champion")
    v2 = reg.register(LinearROI(np.ones(4)), name="challenger")
    return reg, v1, v2


def feed(promoter, gen, version, n, p, cost=0.0):
    """n decided requests for one version: Bernoulli(p) revenue."""
    for _ in range(n):
        promoter.observe(version, True, float(gen.random() < p), cost)


# ---------------------------------------------------------------------------
# ramp schedule (exact under ManualClock)
# ---------------------------------------------------------------------------
class TestRampSchedule:
    def test_ramp_advances_on_the_deadline_loop_exactly(self):
        reg, _v1, v2 = make_pair()
        clock = ManualClock()
        promoter = AutoPromoter(
            reg, clock=clock, ramp=(0.01, 0.05, 0.25, 1.0), step_every_s=10.0,
            auto_start=False,
        )
        assert promoter.state == "idle"
        assert promoter.start()
        assert promoter.state == "ramping"
        assert promoter.watching == v2
        assert reg.traffic_split == 0.01
        assert promoter.next_deadline() == pytest.approx(10.0)

        clock.advance(9.999)
        promoter.poll()
        assert reg.traffic_split == 0.01  # one ms early: not yet
        clock.advance(0.001)
        promoter.poll()
        assert reg.traffic_split == 0.05  # fired exactly at t=10
        clock.advance(10.0)
        promoter.poll()
        assert reg.traffic_split == 0.25
        clock.advance(10.0)
        promoter.poll()
        assert reg.traffic_split == 1.0
        # parked at the final step: nothing further is scheduled
        assert promoter.next_deadline() is None
        assert [e.kind for e in promoter.events] == ["start", "ramp", "ramp", "ramp"]
        assert [e.traffic_split for e in promoter.events] == [0.01, 0.05, 0.25, 1.0]
        assert [e.at for e in promoter.events] == pytest.approx([0.0, 10.0, 20.0, 30.0])

    def test_late_polls_do_not_drift_the_schedule(self):
        """A poll arriving after a boundary fires that step late but
        must anchor the *next* step on the original boundary — sparse
        polling cannot compound into cumulative ramp drift."""
        reg, _v1, _v2 = make_pair()
        clock = ManualClock()
        promoter = AutoPromoter(
            reg, clock=clock, ramp=(0.01, 0.05, 0.25, 1.0), step_every_s=10.0,
            auto_start=False,
        )
        promoter.start()
        clock.advance(14.0)  # 4s late
        promoter.poll()
        assert reg.traffic_split == 0.05
        # the next boundary is still t=20, not t=24
        assert promoter.next_deadline() == pytest.approx(20.0)
        clock.advance(17.0)  # t=31: two boundaries (20, 30) overdue
        promoter.poll()  # the loop fires both, in order, in one poll
        assert reg.traffic_split == 1.0
        assert promoter.next_deadline() is None

    def test_observe_that_triggers_auto_start_is_counted(self):
        """The observation that opens the experiment must survive the
        ledger reset start() performs."""
        reg, v1, _v2 = make_pair()
        promoter = AutoPromoter(reg, clock=ManualClock(), ramp=(0.02, 1.0))
        promoter.observe(v1, True, 1.0, 0.5)
        assert promoter.state == "ramping"
        assert reg.get(v1).ledger.n == 1  # recorded after the reset

    def test_start_is_noop_without_challenger_or_while_running(self):
        reg = ModelRegistry(traffic_split=0.3)
        reg.register(LinearROI(np.zeros(4)))
        promoter = AutoPromoter(reg, clock=ManualClock(), auto_start=False)
        assert promoter.start() is False  # nothing staged
        reg.register(LinearROI(np.ones(4)))
        assert promoter.start()
        assert promoter.start() is False  # already ramping

    def test_auto_start_on_poll_and_observe(self):
        reg, _v1, _v2 = make_pair()
        promoter = AutoPromoter(reg, clock=ManualClock(), ramp=(0.02, 1.0))
        promoter.poll()
        assert promoter.state == "ramping"
        assert reg.traffic_split == 0.02

    def test_start_resets_both_ledgers(self):
        reg, v1, v2 = make_pair()
        reg.record_outcome(v1, True, 1.0, 0.5)
        reg.record_outcome(v2, True, 1.0, 0.5)
        promoter = AutoPromoter(reg, clock=ManualClock(), auto_start=False)
        promoter.start()
        assert reg.get(v1).ledger.n == 0  # concurrent windows only
        assert reg.get(v2).ledger.n == 0

    def test_invalid_params(self):
        reg, _v1, _v2 = make_pair()
        with pytest.raises(ValueError, match="ramp"):
            AutoPromoter(reg, ramp=())
        with pytest.raises(ValueError, match="ramp fractions"):
            AutoPromoter(reg, ramp=(0.0, 0.5))
        with pytest.raises(ValueError, match="increasing"):
            AutoPromoter(reg, ramp=(0.5, 0.1))
        with pytest.raises(ValueError, match="step_every_s"):
            AutoPromoter(reg, step_every_s=0.0)
        with pytest.raises(ValueError, match="level"):
            AutoPromoter(reg, level=1.0)
        with pytest.raises(ValueError, match="metric"):
            AutoPromoter(reg, metric="clicks")
        with pytest.raises(ValueError, match="min_decided"):
            AutoPromoter(reg, min_decided=1)
        with pytest.raises(ValueError, match="check_every"):
            AutoPromoter(reg, check_every=0)
        with pytest.raises(ValueError, match="hold_decided"):
            AutoPromoter(reg, hold_decided=1)
        with pytest.raises(ValueError, match="hold_decided must be >= min_decided"):
            AutoPromoter(reg, min_decided=500, hold_decided=100)


# ---------------------------------------------------------------------------
# the significance gate (synthetic outcome streams)
# ---------------------------------------------------------------------------
class TestSignificanceGate:
    def _promoter(self, reg, **kwargs):
        defaults = dict(
            clock=ManualClock(), ramp=(0.1, 1.0), step_every_s=1e9,
            level=0.99, min_decided=200, check_every=100, auto_start=False,
        )
        defaults.update(kwargs)
        return AutoPromoter(reg, **defaults)

    def test_no_verdict_before_min_decided_on_both_arms(self):
        reg, v1, v2 = make_pair()
        promoter = self._promoter(reg, min_decided=200)
        promoter.start()
        gen = np.random.default_rng(0)
        feed(promoter, gen, v2, 500, p=0.9)  # huge effect, but one-armed
        feed(promoter, gen, v1, 199, p=0.1)  # baseline one short
        assert promoter.evaluate() is None
        assert promoter.state == "ramping"  # no action possible yet
        assert [e.kind for e in promoter.events] == ["start"]

    def test_better_challenger_promotes(self):
        reg, v1, v2 = make_pair()
        promoter = self._promoter(reg)
        promoter.start()
        gen = np.random.default_rng(1)
        for _ in range(40):  # interleave arms like live traffic would
            feed(promoter, gen, v1, 25, p=0.30)
            feed(promoter, gen, v2, 25, p=0.50)
            if promoter.state != "ramping":
                break
        assert promoter.state == "holding"
        assert reg.champion.version == v2
        assert reg.challenger is None
        assert reg.get(v1).stage == "archived"
        assert reg.traffic_split == 0.0  # parked between experiments
        promote = [e for e in promoter.events if e.kind == "promote"]
        assert len(promote) == 1
        assert promote[0].version == v2
        assert promote[0].ci is not None and promote[0].ci.lo > 0.0
        assert promote[0].ci.level == 0.99
        # the new champion starts its hold window fresh
        assert reg.get(v2).ledger.n == 0

    def test_worse_challenger_is_killed(self):
        reg, v1, v2 = make_pair()
        promoter = self._promoter(reg)
        promoter.start()
        gen = np.random.default_rng(2)
        for _ in range(40):
            feed(promoter, gen, v1, 25, p=0.50)
            feed(promoter, gen, v2, 25, p=0.20)
            if promoter.state != "ramping":
                break
        assert promoter.state == "idle"
        assert reg.champion.version == v1  # champion untouched
        assert reg.challenger is None
        assert reg.get(v2).stage == "archived"
        assert reg.traffic_split == 0.0
        kill = [e for e in promoter.events if e.kind == "kill"]
        assert len(kill) == 1 and kill[0].ci.hi < 0.0
        assert not any(e.kind == "promote" for e in promoter.events)

    def test_degrading_promoted_challenger_rolls_back(self):
        """The full arc: a challenger earns promotion, then degrades in
        its post-promotion hold window — the promoter restores the
        displaced champion via registry.rollback()."""
        reg, v1, v2 = make_pair()
        promoter = self._promoter(reg)
        promoter.start()
        gen = np.random.default_rng(3)
        for _ in range(40):
            feed(promoter, gen, v1, 25, p=0.30)
            feed(promoter, gen, v2, 25, p=0.50)
            if promoter.state != "ramping":
                break
        assert promoter.state == "holding"
        assert reg.champion.version == v2
        # the promoted model degrades hard below the frozen baseline
        for _ in range(40):
            feed(promoter, gen, v2, 25, p=0.05)
            if promoter.state != "holding":
                break
        assert promoter.state == "idle"
        assert reg.champion.version == v1  # the old champion is back
        assert reg.get(v2).stage == "archived"
        rollback = [e for e in promoter.events if e.kind == "rollback"]
        assert len(rollback) == 1
        assert rollback[0].version == v2 and rollback[0].ci.hi < 0.0

    def test_healthy_promotion_confirms_after_hold(self):
        reg, v1, v2 = make_pair()
        promoter = self._promoter(reg, hold_decided=600)
        promoter.start()
        gen = np.random.default_rng(4)
        for _ in range(40):
            feed(promoter, gen, v1, 25, p=0.30)
            feed(promoter, gen, v2, 25, p=0.50)
            if promoter.state != "ramping":
                break
        assert promoter.state == "holding"
        feed(promoter, gen, v2, 700, p=0.50)  # keeps performing
        assert promoter.state == "idle"
        assert reg.champion.version == v2  # promotion stands
        assert promoter.events[-1].kind == "confirm"

    def test_identical_models_never_promote_single_run(self):
        reg, v1, v2 = make_pair()
        promoter = self._promoter(reg)
        promoter.start()
        gen = np.random.default_rng(5)
        for _ in range(40):
            feed(promoter, gen, v1, 25, p=0.40)
            feed(promoter, gen, v2, 25, p=0.40)
        assert promoter.state == "ramping"  # no verdict ever reached
        assert reg.champion.version == v1
        assert not any(
            e.kind in ("promote", "kill") for e in promoter.events
        )

    def test_false_promotion_rate_is_small(self):
        """Identical arms across many seeded campaigns: repeated
        peeking at level=0.99 must keep the realised false-promotion
        rate far below coin-flip territory.  Deterministic under the
        fixed seeds — this pins the gate's operating point."""
        promotions = 0
        trials = 20
        for seed in range(trials):
            reg, v1, v2 = make_pair()
            promoter = self._promoter(reg)
            promoter.start()
            gen = np.random.default_rng(seed)
            for _ in range(30):
                feed(promoter, gen, v1, 25, p=0.40)
                feed(promoter, gen, v2, 25, p=0.40)
                if promoter.state != "ramping":
                    break
            promotions += any(e.kind == "promote" for e in promoter.events)
        assert promotions <= 2  # <= 10% realised with ~30 peeks/campaign

    def test_hotfix_register_aborts_the_experiment(self):
        reg, _v1, v2 = make_pair()
        promoter = self._promoter(reg)
        promoter.start()
        reg.register(LinearROI(np.full(4, 0.5)), promote=True)  # surgery
        promoter.poll()
        assert promoter.state == "idle"
        assert promoter.events[-1].kind == "abort"
        assert promoter.events[-1].version == v2
        assert reg.challenger is None  # the registry archived it already

    def test_manual_rollback_during_hold_aborts(self):
        reg, v1, v2 = make_pair()
        promoter = self._promoter(reg)
        promoter.start()
        gen = np.random.default_rng(6)
        for _ in range(40):
            feed(promoter, gen, v1, 25, p=0.30)
            feed(promoter, gen, v2, 25, p=0.50)
            if promoter.state != "ramping":
                break
        assert promoter.state == "holding"
        reg.rollback()  # an operator pulls the cord by hand
        promoter.poll()
        assert promoter.state == "idle"
        assert promoter.events[-1].kind == "abort"
        assert reg.champion.version == v1


# ---------------------------------------------------------------------------
# end-to-end: TrafficReplay campaigns operating the lifecycle
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def probe_weights():
    from repro.data import criteo_uplift_v2

    probe = criteo_uplift_v2(4000, random_state=5)
    return np.linalg.lstsq(probe.x, probe.roi, rcond=None)[0]


class TestReplayLifecycle:
    def test_promoter_must_share_the_engines_registry(self, probe_weights):
        platform = Platform(dataset="criteo", random_state=0)
        engine = ScoringEngine(LinearROI(probe_weights), batch_size=8)
        other = ModelRegistry()
        other.register(LinearROI(probe_weights))
        with pytest.raises(ValueError, match="registry"):
            TrafficReplay(platform, engine, promoter=AutoPromoter(other))

    def test_simulated_time_requires_a_shared_clock(self, probe_weights):
        """A promoter on its own (system) clock under a simulated-time
        replay would silently run the ramp on wall time — rejected."""
        platform = Platform(dataset="criteo", random_state=0)
        reg = ModelRegistry(random_state=0)
        reg.register(LinearROI(probe_weights))
        reg.register(LinearROI(probe_weights))
        engine = ScoringEngine(reg, batch_size=8, clock=ManualClock())
        with pytest.raises(ValueError, match="clock"):
            TrafficReplay(
                platform, engine, interarrival_s=0.001,
                promoter=AutoPromoter(reg),  # defaults to SystemClock
            )
        # sharing the engine's clock is fine
        TrafficReplay(
            platform, engine, interarrival_s=0.001,
            promoter=AutoPromoter(reg, clock=engine.clock),
        )

    def test_ramp_schedule_is_exact_under_simulated_time(self, probe_weights):
        """ISSUE acceptance: traffic_split ramps on the DeadlineLoop
        schedule, exact under ManualClock — each step fires at
        precisely the first arrival on/after its boundary."""
        platform = Platform(dataset="criteo", random_state=0)
        reg = ModelRegistry(random_state=0)
        reg.register(LinearROI(probe_weights), name="champion")
        reg.register(LinearROI(probe_weights), name="clone")  # identical
        clock = ManualClock()
        engine = ScoringEngine(reg, batch_size=64, cache_size=0, clock=clock)
        promoter = AutoPromoter(
            reg, clock=clock, ramp=(0.01, 0.05, 0.25, 1.0), step_every_s=0.25,
            min_decided=10**9, hold_decided=10**9,  # no verdict can interrupt the ramp
        )
        replay = TrafficReplay(
            platform, engine, interarrival_s=0.001, promoter=promoter,
            random_state=11,
        )
        replay.replay_day(1200, budget_fraction=0.3)
        # the promoter auto-started at the first arrival (t=0.001) and
        # stepped every 0.25 simulated seconds from there
        starts = [e for e in promoter.events if e.kind == "start"]
        ramps = [e for e in promoter.events if e.kind == "ramp"]
        assert len(starts) == 1 and starts[0].at == pytest.approx(0.001)
        assert [e.traffic_split for e in ramps] == [0.05, 0.25, 1.0]
        assert [e.at for e in ramps] == pytest.approx([0.251, 0.501, 0.751])
        assert reg.traffic_split == 1.0

    @pytest.mark.slow
    def test_campaign_promotes_dominant_challenger(self, probe_weights):
        """ISSUE acceptance: a multi-day campaign where the
        challenger's true model dominates auto-promotes it."""
        platform = Platform(dataset="criteo", random_state=0)
        reg = ModelRegistry(random_state=0)
        reg.register(LinearROI(-probe_weights), name="bad-champion")
        challenger = reg.register(LinearROI(probe_weights), name="good")
        clock = ManualClock()
        engine = ScoringEngine(reg, batch_size=64, cache_size=0, clock=clock)
        promoter = AutoPromoter(
            reg, clock=clock, ramp=(0.05, 0.25, 1.0), step_every_s=0.5,
            level=0.99, min_decided=300, check_every=200, hold_decided=1500,
        )
        replay = TrafficReplay(
            platform, engine, interarrival_s=0.001, promoter=promoter,
            random_state=7,
        )
        result = replay.replay_days(4, 2500, budget_fraction=0.3)
        assert result.n_days == 4
        kinds = [e.kind for e in promoter.events]
        assert "promote" in kinds
        assert "kill" not in kinds and "rollback" not in kinds
        assert reg.champion.version == challenger
        # and the rollout was staged, not a blind swap: the promote
        # verdict came after at least the first ramp step
        assert kinds.index("promote") > kinds.index("start")
        promote = next(e for e in promoter.events if e.kind == "promote")
        assert promote.ci.lo > 0.0

    @pytest.mark.slow
    def test_equal_campaign_never_promotes(self, probe_weights):
        """ISSUE acceptance: an equal-model campaign never promotes at
        the configured significance level."""
        platform = Platform(dataset="criteo", random_state=1)
        reg = ModelRegistry(random_state=0)
        reg.register(LinearROI(probe_weights), name="champion")
        reg.register(LinearROI(probe_weights), name="clone")
        clock = ManualClock()
        engine = ScoringEngine(reg, batch_size=64, cache_size=0, clock=clock)
        promoter = AutoPromoter(
            reg, clock=clock, ramp=(0.05, 0.25, 1.0), step_every_s=0.5,
            level=0.99, min_decided=300, check_every=200,
        )
        replay = TrafficReplay(
            platform, engine, interarrival_s=0.001, promoter=promoter,
            random_state=13,
        )
        replay.replay_days(4, 2500, budget_fraction=0.3)
        kinds = [e.kind for e in promoter.events]
        assert "promote" not in kinds and "rollback" not in kinds
        assert reg.champion.version == 1  # the incumbent stays

    def test_outcomes_attribute_to_the_scoring_version(self, probe_weights):
        """Every decided arrival lands in exactly one version's ledger,
        and the two ledgers partition the cohort."""
        platform = Platform(dataset="criteo", random_state=2)
        reg = ModelRegistry(random_state=0)
        reg.register(LinearROI(probe_weights))
        reg.register(LinearROI(probe_weights * 0.5))
        engine = ScoringEngine(reg, batch_size=32, cache_size=0)
        promoter = AutoPromoter(
            reg, ramp=(0.5,), min_decided=10**9, hold_decided=10**9, auto_start=True,
        )
        replay = TrafficReplay(platform, engine, promoter=promoter, random_state=3)
        result = replay.replay_day(1000, budget_fraction=0.3)
        n1 = reg.get(1).ledger.n
        n2 = reg.get(2).ledger.n
        assert n1 + n2 == result.n_events
        assert n2 > 0  # the challenger really saw its slice
        # ledger spend tracks the pacer's realised spend structure:
        # only treated users realise cost draws
        assert reg.get(1).ledger.n_treated + reg.get(2).ledger.n_treated == int(
            np.sum(result.treated)
        )

"""Tests for conformal prediction (Eq. 3, Algorithm 3, Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conformal import (
    ConformalCalibrator,
    conformal_quantile,
    conformal_score,
    empirical_coverage,
    prediction_interval,
)


class TestConformalScore:
    def test_formula(self):
        score = conformal_score(
            np.array([0.5, 0.8]), np.array([0.4, 0.6]), np.array([0.1, 0.2])
        )
        np.testing.assert_allclose(score, [1.0, 1.0])

    def test_zero_std_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            conformal_score(np.array([0.5]), np.array([0.4]), np.array([0.0]))

    def test_symmetric_in_error_sign(self):
        a = conformal_score(np.array([0.6]), np.array([0.4]), np.array([0.1]))
        b = conformal_score(np.array([0.2]), np.array([0.4]), np.array([0.1]))
        np.testing.assert_allclose(a, b)


class TestConformalQuantile:
    def test_small_sample_takes_max(self):
        scores = np.array([1.0, 2.0, 3.0])
        # ceil(0.9 * 4) = 4 > 3 -> max
        assert conformal_quantile(scores, alpha=0.1) == 3.0

    def test_large_sample_formula(self):
        scores = np.arange(1.0, 100.0)  # 99 scores
        # rank = ceil(0.9*100) = 90 -> 90th smallest = 90
        assert conformal_quantile(scores, alpha=0.1) == 90.0

    def test_alpha_monotonicity(self):
        rng = np.random.default_rng(0)
        scores = rng.random(200)
        q_strict = conformal_quantile(scores, alpha=0.05)
        q_loose = conformal_quantile(scores, alpha=0.5)
        assert q_strict >= q_loose

    def test_alpha_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            conformal_quantile(np.ones(5), alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            conformal_quantile(np.ones(5), alpha=1.0)

    @given(st.integers(min_value=20, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_quantile_is_an_observed_score(self, n):
        rng = np.random.default_rng(n)
        scores = rng.random(n)
        q = conformal_quantile(scores, alpha=0.1)
        assert np.any(np.isclose(scores, q))


class TestPredictionInterval:
    def test_symmetric_around_point(self):
        lower, upper = prediction_interval(np.array([0.5]), np.array([0.1]), q_hat=2.0)
        assert lower[0] == pytest.approx(0.3)
        assert upper[0] == pytest.approx(0.7)

    def test_negative_q_rejected(self):
        with pytest.raises(ValueError, match="q_hat"):
            prediction_interval(np.array([0.5]), np.array([0.1]), q_hat=-1.0)

    def test_zero_q_degenerate(self):
        lower, upper = prediction_interval(np.array([0.5]), np.array([0.1]), q_hat=0.0)
        np.testing.assert_allclose(lower, upper)


class TestCoverageGuarantee:
    """Monte-Carlo verification of Eq. 4 on exchangeable data."""

    @pytest.mark.parametrize("alpha", [0.1, 0.2])
    def test_marginal_coverage_at_least_one_minus_alpha(self, alpha):
        rng = np.random.default_rng(42)
        coverages = []
        for _ in range(60):
            n_cal, n_test = 200, 200
            # exchangeable synthetic: target = pred + noise*std
            std_cal = 0.05 + rng.random(n_cal) * 0.1
            std_test = 0.05 + rng.random(n_test) * 0.1
            pred_cal = rng.random(n_cal)
            pred_test = rng.random(n_test)
            target_cal = pred_cal + std_cal * rng.normal(size=n_cal)
            target_test = pred_test + std_test * rng.normal(size=n_test)

            calibrator = ConformalCalibrator(alpha=alpha)
            calibrator.calibrate(target_cal, pred_cal, std_cal)
            lower, upper = calibrator.interval(pred_test, std_test)
            coverages.append(empirical_coverage(target_test, lower, upper))
        mean_coverage = float(np.mean(coverages))
        # Eq. 4: P(target in C) >= 1 - alpha (allow MC slack)
        assert mean_coverage >= 1.0 - alpha - 0.02

    def test_coverage_not_wildly_conservative(self):
        """With a well-specified score the coverage is near 1 - alpha."""
        rng = np.random.default_rng(7)
        coverages = []
        for _ in range(40):
            n = 300
            std = np.full(n, 0.1)
            pred = rng.random(n)
            target = pred + std * rng.normal(size=n)
            pred_t = rng.random(n)
            target_t = pred_t + std * rng.normal(size=n)
            cal = ConformalCalibrator(alpha=0.2).calibrate(target, pred, std)
            lower, upper = cal.interval(pred_t, std)
            coverages.append(empirical_coverage(target_t, lower, upper))
        assert 0.75 <= float(np.mean(coverages)) <= 0.9


class TestConformalCalibrator:
    def test_interval_before_calibrate_raises(self):
        with pytest.raises(RuntimeError, match="not calibrated"):
            ConformalCalibrator().interval(np.array([0.5]), np.array([0.1]))

    def test_q_hat_property(self):
        cal = ConformalCalibrator(alpha=0.1)
        with pytest.raises(RuntimeError):
            _ = cal.q_hat
        cal.calibrate(np.array([0.5] * 30), np.array([0.4] * 30), np.array([0.1] * 30))
        assert cal.q_hat == pytest.approx(1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            ConformalCalibrator(alpha=1.5)


class TestEmpiricalCoverage:
    def test_all_covered(self):
        assert empirical_coverage(np.array([0.5]), np.array([0.0]), np.array([1.0])) == 1.0

    def test_none_covered(self):
        assert empirical_coverage(np.array([2.0]), np.array([0.0]), np.array([1.0])) == 0.0

    def test_boundary_inclusive(self):
        assert empirical_coverage(np.array([1.0]), np.array([0.0]), np.array([1.0])) == 1.0

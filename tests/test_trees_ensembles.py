"""Tests for repro.trees.forest and repro.trees.boosting."""

import numpy as np
import pytest

from repro.trees.boosting import GradientBoostingRegressor
from repro.trees.forest import RandomForestRegressor

# every test here fits an ensemble; PR CI skips them (-m "not slow")
pytestmark = pytest.mark.slow


def smooth_problem(n=600, seed=0, noise=0.1):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 3))
    y = np.sin(x[:, 0]) + 0.5 * x[:, 1] ** 2 + noise * rng.normal(size=n)
    return x, y


class TestRandomForest:
    def test_improves_over_single_tree_out_of_sample(self):
        # high label noise is where bagging's variance reduction wins
        x, y = smooth_problem(noise=0.8)
        x_te, y_te = smooth_problem(seed=1, noise=0.8)
        from repro.trees.tree import DecisionTreeRegressor

        tree = DecisionTreeRegressor(max_depth=8, random_state=0).fit(x, y)
        forest = RandomForestRegressor(
            n_estimators=30, max_depth=8, max_features=None, random_state=0
        ).fit(x, y)
        mse_tree = float(np.mean((tree.predict(x_te) - y_te) ** 2))
        mse_forest = float(np.mean((forest.predict(x_te) - y_te) ** 2))
        assert mse_forest < mse_tree

    def test_predict_std_shape_and_sign(self):
        x, y = smooth_problem(n=200)
        forest = RandomForestRegressor(n_estimators=10, random_state=0).fit(x, y)
        std = forest.predict_std(x)
        assert std.shape == (200,)
        assert np.all(std >= 0)
        assert std.mean() > 0

    def test_reproducible(self):
        x, y = smooth_problem(n=200)
        a = RandomForestRegressor(n_estimators=5, random_state=7).fit(x, y).predict(x)
        b = RandomForestRegressor(n_estimators=5, random_state=7).fit(x, y).predict(x)
        np.testing.assert_allclose(a, b)

    def test_no_bootstrap_mode(self):
        x, y = smooth_problem(n=150)
        forest = RandomForestRegressor(n_estimators=3, bootstrap=False, random_state=0)
        forest.fit(x, y)
        assert forest.predict(x).shape == (150,)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RandomForestRegressor().predict(np.ones((1, 2)))

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)


class TestGradientBoosting:
    def test_train_score_decreases(self):
        x, y = smooth_problem(n=300)
        gbm = GradientBoostingRegressor(n_estimators=30, random_state=0).fit(x, y)
        assert gbm.train_score_[-1] < gbm.train_score_[0]

    def test_fits_nonlinear_function(self):
        x, y = smooth_problem()
        gbm = GradientBoostingRegressor(n_estimators=80, learning_rate=0.2, random_state=0)
        gbm.fit(x, y)
        mse = float(np.mean((gbm.predict(x) - y) ** 2))
        assert mse < 0.15 * float(np.var(y))

    def test_learning_rate_zero_stages_equals_mean(self):
        x, y = smooth_problem(n=100)
        gbm = GradientBoostingRegressor(n_estimators=1, learning_rate=1e-9, random_state=0)
        gbm.fit(x, y)
        np.testing.assert_allclose(gbm.predict(x), np.full(100, y.mean()), atol=1e-6)

    def test_subsample_mode(self):
        x, y = smooth_problem(n=300)
        gbm = GradientBoostingRegressor(n_estimators=20, subsample=0.5, random_state=0)
        gbm.fit(x, y)
        assert gbm.predict(x).shape == (300,)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GradientBoostingRegressor().predict(np.ones((1, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)

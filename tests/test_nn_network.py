"""Tests for repro.nn.network (Sequential container + training loop)."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.losses import MeanSquaredError
from repro.nn.network import Network, mlp
from repro.nn.optimizers import Adam


def make_regression(n=500, d=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = x @ w + 0.1 * rng.normal(size=n)
    return x, y.reshape(-1, 1)


def mse_adapter(pred, target):
    return MeanSquaredError()(pred, target)


class TestForwardBackward:
    def test_forward_1d_input_reshaped(self):
        net = Network([Dense(1, 1, rng=0)])
        out = net.forward(np.array([1.0, 2.0, 3.0]))
        assert out.shape == (3, 1)

    def test_parameters_counts(self):
        net = mlp(4, [8, 8], output_dim=2, rng=0)
        # (4*8+8) + (8*8+8) + (8*2+2) = 40+72+18
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 8 + 8 + 8 * 2 + 2

    def test_get_set_weights_roundtrip(self):
        net = mlp(3, [5], rng=0)
        weights = net.get_weights()
        x = np.ones((2, 3))
        before = net.predict(x)
        for p in net.parameters():
            p += 1.0
        assert not np.allclose(net.predict(x), before)
        net.set_weights(weights)
        np.testing.assert_allclose(net.predict(x), before)

    def test_set_weights_shape_mismatch(self):
        net = mlp(3, [5], rng=0)
        bad = [np.zeros((1, 1))] * len(net.parameters())
        with pytest.raises(ValueError, match="Shape mismatch"):
            net.set_weights(bad)

    def test_set_weights_count_mismatch(self):
        net = mlp(3, [5], rng=0)
        with pytest.raises(ValueError, match="weight arrays"):
            net.set_weights([np.zeros((3, 5))])

    def test_forward_stochastic_varies_with_dropout(self):
        net = mlp(3, [16], dropout=0.5, rng=0)
        x = np.ones((4, 3))
        a = net.forward_stochastic(x)
        b = net.forward_stochastic(x)
        assert not np.allclose(a, b)

    def test_forward_stochastic_deterministic_without_dropout(self):
        net = mlp(3, [16], dropout=0.0, rng=0)
        x = np.ones((4, 3))
        np.testing.assert_allclose(net.forward_stochastic(x), net.forward_stochastic(x))


class TestFit:
    def test_loss_decreases_on_regression(self):
        x, y = make_regression()
        net = mlp(4, [16], activation="tanh", rng=0)
        history = net.fit(x, y, loss=mse_adapter, optimizer=Adam(3e-3), epochs=40, rng=0)
        assert history.train_loss[-1] < history.train_loss[0] * 0.5

    def test_learns_linear_function_well(self):
        x, y = make_regression(n=800)
        net = mlp(4, [16], activation="tanh", rng=0)
        net.fit(x, y, loss=mse_adapter, optimizer=Adam(3e-3), epochs=60, rng=0)
        pred = net.predict(x)
        residual_var = float(np.var(pred - y))
        assert residual_var < 0.25 * float(np.var(y))

    def test_early_stopping_restores_best(self):
        x, y = make_regression(n=300)
        x_val, y_val = make_regression(n=100, seed=1)
        net = mlp(4, [8], activation="tanh", rng=0)
        history = net.fit(
            x,
            y,
            loss=mse_adapter,
            epochs=100,
            rng=0,
            validation_data=(x_val, y_val),
            patience=5,
        )
        assert history.best_epoch is not None
        if history.stopped_epoch is not None:
            assert history.stopped_epoch >= history.best_epoch

    def test_dict_target_sliced_per_batch(self):
        x, y = make_regression(n=128)

        def dict_loss(pred, batch):
            return MeanSquaredError()(pred, batch["y"])

        net = mlp(4, [8], rng=0)
        history = net.fit(x, {"y": y}, loss=dict_loss, epochs=3, batch_size=32, rng=0)
        assert history.n_epochs == 3

    def test_invalid_epochs(self):
        net = mlp(2, [4], rng=0)
        with pytest.raises(ValueError, match="epochs"):
            net.fit(np.ones((4, 2)), np.ones((4, 1)), loss=mse_adapter, epochs=0)

    def test_invalid_batch_size(self):
        net = mlp(2, [4], rng=0)
        with pytest.raises(ValueError, match="batch_size"):
            net.fit(np.ones((4, 2)), np.ones((4, 1)), loss=mse_adapter, batch_size=0)

    def test_gradient_clipping_keeps_training_stable(self):
        x, y = make_regression(n=200)
        y = y * 1000.0  # huge targets -> huge gradients
        net = mlp(4, [8], rng=0)
        history = net.fit(x, y, loss=mse_adapter, epochs=5, clip_norm=1.0, rng=0)
        assert np.all(np.isfinite(history.train_loss))
        assert all(np.all(np.isfinite(p)) for p in net.parameters())

    def test_reproducible_with_seed(self):
        x, y = make_regression(n=200)
        net_a = mlp(4, [8], rng=3)
        net_a.fit(x, y, loss=mse_adapter, epochs=5, rng=11)
        net_b = mlp(4, [8], rng=3)
        net_b.fit(x, y, loss=mse_adapter, epochs=5, rng=11)
        np.testing.assert_allclose(net_a.predict(x), net_b.predict(x))


class TestMlpFactory:
    def test_structure_with_dropout(self):
        net = mlp(4, [8], dropout=0.2, rng=0)
        kinds = [type(layer).__name__ for layer in net.layers]
        assert kinds == ["Dense", "Activation", "Dropout", "Dense"]

    def test_output_activation(self):
        net = mlp(4, [8], output_activation="sigmoid", rng=0)
        out = net.predict(np.random.default_rng(0).normal(size=(10, 4)))
        assert np.all((out > 0) & (out < 1))

    def test_invalid_input_dim(self):
        with pytest.raises(ValueError, match="input_dim"):
            mlp(0, [4])

    def test_no_hidden_layers(self):
        net = mlp(3, [], output_dim=2, rng=0)
        assert len(net.layers) == 1
        assert net.predict(np.ones((2, 3))).shape == (2, 2)

"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import SeedStream, as_generator, spawn_generators


class TestAsGenerator:
    def test_none_returns_generator(self):
        gen = as_generator(None)
        assert isinstance(gen, np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_generator(gen) is gen

    def test_numpy_integer_accepted(self):
        seed = np.int64(13)
        gen = as_generator(seed)
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="random_state"):
            as_generator("not-a-seed")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            as_generator(3.14)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_children_are_independent_streams(self):
        gens = spawn_generators(0, 2)
        a = gens[0].random(10)
        b = gens[1].random(10)
        assert not np.allclose(a, b)

    def test_reproducible_from_seed(self):
        a = [g.random(3) for g in spawn_generators(5, 3)]
        b = [g.random(3) for g in spawn_generators(5, 3)]
        for ai, bi in zip(a, b):
            np.testing.assert_array_equal(ai, bi)

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_generators(0, -1)

    def test_parent_stream_not_shared(self):
        parent = np.random.default_rng(3)
        gens = spawn_generators(parent, 2)
        assert all(g is not parent for g in gens)


class TestSeedStream:
    def test_reproducible_from_seed(self):
        a = SeedStream(9)
        b = SeedStream(9)
        assert [a.seed(i) for i in range(5)] == [b.seed(i) for i in range(5)]

    def test_access_order_irrelevant(self):
        """seed(i) is a pure function of (root, i) — the property that
        makes work items relocatable across worker processes."""
        forward = SeedStream(4)
        backward = SeedStream(4)
        idx = [0, 7, 130, 2]
        want = {i: forward.seed(i) for i in idx}
        for i in reversed(idx):
            assert backward.seed(i) == want[i]

    def test_extension_keeps_earlier_seeds_stable(self):
        stream = SeedStream(1)
        early = stream.seed(3)
        stream.seed(500)  # forces several block extensions
        assert stream.seed(3) == early

    def test_consumes_exactly_one_parent_draw(self):
        used = np.random.default_rng(11)
        SeedStream(used)
        SeedStream(used)  # a second family: still one draw each
        reference = np.random.default_rng(11)
        reference.integers(0, np.iinfo(np.int64).max, size=2)
        assert used.random() == reference.random()

    def test_generator_streams_differ(self):
        stream = SeedStream(0)
        a = stream.generator(0).random(8)
        b = stream.generator(1).random(8)
        assert not np.allclose(a, b)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            SeedStream(0).seed(-1)

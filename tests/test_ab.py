"""Tests for the A/B-test platform simulator and harness."""

import numpy as np
import pytest

from repro.ab.experiment import RANDOM_ARM, ABTest
from repro.ab.platform import Platform


@pytest.fixture
def platform():
    return Platform(dataset="criteo", random_state=0)


class TestPlatform:
    def test_daily_cohort_shape(self, platform):
        cohort = platform.daily_cohort(500, day=1)
        assert cohort.n == 500
        assert cohort.n_features == 12

    def test_day_effect_modulates_effects(self):
        p = Platform(dataset="criteo", day_effect=0.3, random_state=0)
        day2 = p.daily_cohort(4000, day=2)  # sin(4pi/7) > 0 -> boosted
        day5 = p.daily_cohort(4000, day=5)  # sin(10pi/7) < 0 -> damped
        assert day2.tau_r.mean() > day5.tau_r.mean()

    def test_shifted_platform_tilts_cohorts(self):
        from repro.data.shift import shift_direction

        base = Platform(dataset="criteo", shifted=False, random_state=0)
        shifted = Platform(dataset="criteo", shifted=True, random_state=0)
        c_base = base.daily_cohort(4000, day=1)
        c_shift = shifted.daily_cohort(4000, day=1)
        d = shift_direction(c_base)
        assert float((c_shift.x @ d).mean()) > float((c_base.x @ d).mean()) + 0.2

    def test_realize_arm_budget(self, platform):
        cohort = platform.daily_cohort(400, day=1)
        order = np.arange(400)
        outcome = platform.realize_arm(cohort, order, budget=10.0)
        assert outcome["spend"] <= 10.0 + 1e-9
        assert outcome["n_treated"] >= 1
        assert outcome["revenue"] >= outcome["baseline_revenue"]

    def test_realize_arm_bad_order(self, platform):
        cohort = platform.daily_cohort(50, day=1)
        with pytest.raises(ValueError, match="permutation"):
            platform.realize_arm(cohort, np.zeros(50, dtype=int), budget=1.0)

    def test_realize_arm_negative_budget(self, platform):
        cohort = platform.daily_cohort(50, day=1)
        with pytest.raises(ValueError, match="budget"):
            platform.realize_arm(cohort, np.arange(50), budget=-1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="day_effect"):
            Platform(day_effect=1.5)
        with pytest.raises(ValueError, match="base_revenue_rate"):
            Platform(base_revenue_rate=0.0)

    def test_daily_cohort_retries_with_larger_oversample(self, monkeypatch):
        """An under-producing draw doubles the oversample and retries."""
        from repro.ab import platform as platform_module

        real = platform_module.load_dataset
        requested = []

        def flaky(name, n, random_state=None):
            requested.append(n)
            if len(requested) == 1:
                return real(name, 50, random_state=random_state)
            return real(name, n, random_state=random_state)

        monkeypatch.setattr(platform_module, "load_dataset", flaky)
        cohort = Platform(dataset="criteo", random_state=0).daily_cohort(200, day=1)
        assert cohort.n == 200
        assert len(requested) == 2
        assert requested[1] == 2 * requested[0]

    def test_shifted_cohort_retries_on_short_pool(self, monkeypatch):
        """A pool too small to tilt retries instead of raising ValueError."""
        from repro.ab import platform as platform_module

        real = platform_module.load_dataset
        requested = []

        def flaky(name, n, random_state=None):
            requested.append(n)
            if len(requested) == 1:
                return real(name, 50, random_state=random_state)  # < n: can't tilt
            return real(name, n, random_state=random_state)

        monkeypatch.setattr(platform_module, "load_dataset", flaky)
        p = Platform(dataset="criteo", shifted=True, random_state=0)
        cohort = p.daily_cohort(200, day=1)
        assert cohort.n == 200
        assert len(requested) == 2
        assert requested[1] == 2 * requested[0]

    def test_daily_cohort_gives_up_after_three_attempts(self, monkeypatch):
        from repro.ab import platform as platform_module

        real = platform_module.load_dataset
        requested = []

        def starved(name, n, random_state=None):
            requested.append(n)
            return real(name, 10, random_state=random_state)

        monkeypatch.setattr(platform_module, "load_dataset", starved)
        with pytest.raises(RuntimeError, match="oversample"):
            Platform(dataset="criteo", random_state=0).daily_cohort(200, day=1)
        assert len(requested) == 3

    def test_iter_events_streams_whole_cohort(self, platform):
        cohort = platform.daily_cohort(120, day=1)
        events = list(platform.iter_events(cohort, random_state=4))
        assert sorted(i for i, _x in events) == list(range(120))
        for i, x_row in events[:5]:
            np.testing.assert_array_equal(x_row, cohort.x[i])


class TestABTest:
    def _oracle_policy(self, platform):
        """Cheating policy: score by the true ROI (upper bound)."""
        truth = {}

        def policy(x):
            # the harness passes cohort subsets; recompute the truth from
            # the structural model by regenerating effects is impossible
            # here, so this test wires the oracle through a closure set
            # per cohort by the test body instead.
            raise RuntimeError("set per-cohort")

        return policy

    def test_runs_and_reports(self, platform):
        policies = {"constant": lambda x: np.ones(x.shape[0])}
        test = ABTest(platform, policies, budget_fraction=0.3, random_state=0)
        result = test.run(n_days=3, cohort_size=600)
        assert len(result.days) == 3
        assert set(result.days[0].revenue) == {"constant", RANDOM_ARM}
        uplift = result.uplift_vs_random
        assert list(uplift) == ["constant"]
        assert len(uplift["constant"]) == 3

    def test_good_policy_beats_random(self):
        """A policy ranking by a noisy view of the true ROI must win."""
        platform = Platform(dataset="criteo", random_state=1)
        # build a 'semi-oracle' policy: the first features drive the true
        # ROI in the analogs, so their projection correlates with it
        from repro.data import criteo_uplift_v2

        probe = criteo_uplift_v2(4000, random_state=5)
        weights = np.linalg.lstsq(probe.x, probe.roi, rcond=None)[0]

        policies = {"semi_oracle": lambda x: x @ weights}
        test = ABTest(platform, policies, budget_fraction=0.3, random_state=0)
        result = test.run(n_days=5, cohort_size=3000)
        mean_uplift = result.mean_uplift()["semi_oracle"]
        assert mean_uplift > 0.0

    def test_reserved_arm_name(self, platform):
        with pytest.raises(ValueError, match="reserved"):
            ABTest(platform, {RANDOM_ARM: lambda x: np.ones(len(x))})

    def test_empty_policies(self, platform):
        with pytest.raises(ValueError, match="At least one"):
            ABTest(platform, {})

    def test_cohort_too_small(self, platform):
        policies = {"a": lambda x: np.ones(x.shape[0])}
        test = ABTest(platform, policies)
        with pytest.raises(ValueError, match="too small"):
            test.run(n_days=1, cohort_size=15)

    def test_policy_returning_wrong_length_rejected(self, platform):
        policies = {"broken": lambda x: np.ones(3)}
        test = ABTest(platform, policies, random_state=0)
        with pytest.raises(ValueError, match="scores"):
            test.run(n_days=1, cohort_size=600)

    def test_invalid_budget_fraction(self, platform):
        with pytest.raises(ValueError, match="budget_fraction"):
            ABTest(platform, {"a": lambda x: np.ones(len(x))}, budget_fraction=0.0)
